//! Cross-crate integration: full workflows through every solution, with
//! data integrity, determinism, and paper-shape assertions.

use mdflow::calibration::Calibration;
use mdflow::prelude::*;
use mdflow::runner::run_once;

fn quick(wf: WorkflowConfig) -> StudyReport {
    let mut s = StudyConfig::paper(wf);
    s.repetitions = 2;
    s.calibration = Calibration::quiet();
    run_study(&s)
}

#[test]
fn every_solution_completes_and_validates_frames() {
    // Frame validation is built into the consumer (it asserts payload
    // integrity per frame), so completion == end-to-end bit-exactness.
    let split = Placement::Split { pairs_per_node: 8 };
    for (solution, placement) in [
        (Solution::Dyad, Placement::SingleNode),
        (Solution::Xfs, Placement::SingleNode),
        (Solution::Dyad, split),
        (Solution::Lustre, split),
        (Solution::DyadOnPfs, split),
    ] {
        let wf = WorkflowConfig::new(solution, 2, placement).with_frames(5);
        let m = run_once(&wf, &Calibration::quiet(), 11);
        assert_eq!(m.producers.len(), 2, "{solution}");
        assert_eq!(m.consumers.len(), 2, "{solution}");
        assert!(m.events > 0);
    }
}

#[test]
fn runs_are_deterministic_across_repetition() {
    let wf = WorkflowConfig::new(Solution::Lustre, 4, Placement::Split { pairs_per_node: 8 })
        .with_frames(4);
    let cal = Calibration::corona();
    let a = run_once(&wf, &cal, 99);
    let b = run_once(&wf, &cal, 99);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    // And different seeds genuinely differ (jitter + interference).
    let c = run_once(&wf, &cal, 100);
    assert_ne!(a.makespan, c.makespan);
}

#[test]
fn dyad_pipelines_while_manual_sync_serializes() {
    let frames = 8;
    let dyad =
        quick(WorkflowConfig::new(Solution::Dyad, 1, Placement::SingleNode).with_frames(frames));
    let xfs =
        quick(WorkflowConfig::new(Solution::Xfs, 1, Placement::SingleNode).with_frames(frames));
    // DYAD: ~1 period per frame. Coarse manual sync: ~2 periods.
    let period = 0.82;
    assert!(
        dyad.makespan.mean < frames as f64 * period * 1.6,
        "DYAD not pipelined: {}s",
        dyad.makespan.mean
    );
    assert!(
        xfs.makespan.mean > frames as f64 * period * 1.8,
        "XFS not serialized: {}s",
        xfs.makespan.mean
    );
}

#[test]
fn consumption_idle_equals_frame_period_for_manual_sync() {
    let xfs = quick(WorkflowConfig::new(Solution::Xfs, 1, Placement::SingleNode).with_frames(8));
    let idle = xfs.consumption_idle.mean;
    assert!(
        (0.7..1.0).contains(&idle),
        "manual-sync consumer idle should be ~the 0.82 s frame period, got {idle}"
    );
}

#[test]
fn dyad_warm_path_amortizes_cold_sync() {
    let r = quick(
        WorkflowConfig::new(Solution::Dyad, 1, Placement::Split { pairs_per_node: 8 })
            .with_frames(16),
    );
    // One partial-period cold wait over 16 frames: well under 100 ms.
    assert!(
        r.consumption_idle.mean < 0.1,
        "DYAD idle/frame {} — warm path broken",
        r.consumption_idle.mean
    );
}

#[test]
fn larger_models_move_more_slowly_but_sublinearly() {
    let split = Placement::Split { pairs_per_node: 8 };
    let jac = quick(
        WorkflowConfig::new(Solution::Dyad, 2, split)
            .with_model(Model::Jac)
            .with_frames(6),
    );
    let stmv = quick(
        WorkflowConfig::new(Solution::Dyad, 2, split)
            .with_model(Model::Stmv)
            .with_frames(6),
    );
    let time_ratio = stmv.consumption_movement.mean / jac.consumption_movement.mean;
    let data_ratio = Model::Stmv.frame_bytes() as f64 / Model::Jac.frame_bytes() as f64;
    assert!(
        time_ratio > 5.0,
        "bigger frames must cost more: {time_ratio}"
    );
    assert!(
        time_ratio < data_ratio,
        "movement should scale sublinearly (fixed overheads amortize): \
         time {time_ratio:.1}x vs data {data_ratio:.1}x"
    );
}

#[test]
fn study_report_statistics_are_consistent() {
    let r = quick(WorkflowConfig::new(Solution::Dyad, 2, Placement::SingleNode).with_frames(4));
    assert_eq!(r.runs.len(), 2);
    for run in &r.runs {
        assert!(run.production.movement > 0.0);
        assert!(run.consumption.total() > 0.0);
        assert!(run.makespan > 0.0);
    }
    // Mean of per-run values matches the reported mean.
    let mean_prod: f64 =
        r.runs.iter().map(|x| x.production.movement).sum::<f64>() / r.runs.len() as f64;
    assert!((mean_prod - r.production_movement.mean).abs() < 1e-12);
}

#[test]
fn traced_runs_produce_per_process_timelines() {
    use mdflow::runner::run_once_traced;
    let wf = WorkflowConfig::new(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 })
        .with_frames(4);
    let (metrics, tracer) = run_once_traced(&wf, &Calibration::quiet(), 3);
    assert_eq!(metrics.producers.len(), 2);
    assert!(!tracer.is_empty());
    let events = tracer.events();
    let tracks: std::collections::HashSet<&str> = events.iter().map(|e| e.track()).collect();
    for expected in [
        "producer-000",
        "producer-001",
        "consumer-000",
        "consumer-001",
    ] {
        assert!(tracks.contains(expected), "missing track {expected}");
    }
    // The Chrome export is structurally valid JSON.
    let json = tracer.to_chrome_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid trace JSON");
    assert!(parsed.as_array().unwrap().len() >= events.len());
}

#[test]
fn untraced_runs_pay_no_trace_cost() {
    use mdflow::runner::{run_once, run_once_traced};
    let wf = WorkflowConfig::new(Solution::Dyad, 1, Placement::SingleNode).with_frames(4);
    let plain = run_once(&wf, &Calibration::quiet(), 9);
    let (traced, _) = run_once_traced(&wf, &Calibration::quiet(), 9);
    // Tracing must not perturb the simulated timeline.
    assert_eq!(plain.makespan, traced.makespan);
    assert_eq!(plain.events, traced.events);
}
