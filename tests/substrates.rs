//! Cross-crate substrate integration: compose the cluster, transport,
//! KVS, filesystems and DYAD by hand (without the mdflow harness) and
//! verify their interactions.

use bytes::Bytes;
use cluster::{Cluster, ClusterSpec, NodeId};
use dyad::{DyadService, DyadSpec};
use instrument::Recorder;
use kvs::{KvsClient, KvsServer, KvsSpec};
use localfs::{LocalFs, LocalFsSpec};
use mdsim::{Frame, FrameTemplate, Model};
use pfs::{ParallelFs, PfsSpec};
use simcore::{Sim, SimDuration};
use thicket::{Ensemble, Query};
use transport::{Transport, TransportSpec};

struct Rig {
    sim: Sim,
    tp: Transport,
    cluster: Cluster,
}

fn rig(nodes: usize) -> Rig {
    let sim = Sim::new(7);
    let ctx = sim.ctx();
    let cluster = Cluster::build(&ctx, &ClusterSpec::corona(nodes));
    let tp = Transport::new(&ctx, cluster.fabric().clone(), TransportSpec::default());
    Rig { sim, tp, cluster }
}

#[test]
fn dyad_pipeline_profile_matches_figure9_structure() {
    let r = rig(3);
    let ctx = r.sim.ctx();
    let _kvs_srv = KvsServer::start(&ctx, &r.tp, NodeId(0), KvsSpec::default());
    let mk_svc = |node: u32| {
        let fs = LocalFs::new(
            &ctx,
            r.cluster.node(NodeId(node)).nvme.clone(),
            LocalFsSpec::default(),
        );
        let kc = KvsClient::new(&ctx, &r.tp, NodeId(node), NodeId(0), KvsSpec::default());
        DyadService::start(&ctx, &r.tp, NodeId(node), fs, kc, DyadSpec::default())
    };
    let prod = mk_svc(1);
    let cons = mk_svc(2);
    let ctx2 = ctx.clone();
    let h = r.sim.spawn(async move {
        let rec = Recorder::new(&ctx2);
        let template = FrameTemplate::generate(Model::Jac, 3);
        let mut session = cons.consumer();
        for i in 0..4u64 {
            prod.produce(&rec, &format!("t/{i}"), template.frame_segments(i))
                .await;
            let got = session.consume(&rec, &format!("t/{i}")).await;
            assert!(template.validate(&got, i));
        }
        rec.finish()
    });
    assert!(r.sim.run().is_clean());
    let profile = h.try_take().unwrap();
    // The Figure 9 tree: dyad_consume with fetch/get_data/store/read.
    let agg = Ensemble::from_profiles(vec![profile]).aggregate();
    for q in [
        "dyad_produce/dyad_prod_write",
        "dyad_produce/dyad_commit",
        "dyad_consume/dyad_fetch",
        "dyad_consume/dyad_get_data",
        "dyad_consume/dyad_cons_store",
        "dyad_consume/read_single_buf",
    ] {
        assert!(
            !agg.query(&Query::parse(q)).is_empty(),
            "missing call path {q}"
        );
    }
    // Movement dominated by storage/transfer, sync by the KVS region.
    let consume = agg.get(&["dyad_consume"]).unwrap().mean_inclusive;
    assert!(consume > 0.0);
}

#[test]
fn pfs_and_localfs_agree_on_content() {
    let r = rig(4);
    let ctx = r.sim.ctx();
    let pfs = ParallelFs::start(&ctx, &r.tp, NodeId(2), vec![NodeId(3)], PfsSpec::default());
    let local = LocalFs::new(
        &ctx,
        r.cluster.node(NodeId(0)).nvme.clone(),
        LocalFsSpec::default(),
    );
    let client = pfs.client(&ctx, NodeId(0));
    let template = FrameTemplate::generate(Model::ApoA1, 5);
    let payload = template.frame_segments(9);
    let expect = transport::flatten_payload(payload.clone());
    let expect2 = expect.clone();
    let h = r.sim.spawn(async move {
        // Write the same frame through both filesystems.
        let fd = local.create("/a").await.unwrap();
        for seg in payload.clone() {
            local.write_bytes(fd, seg).await.unwrap();
        }
        local.close(fd).await.unwrap();
        let fd = client.create("/a").await.unwrap();
        client.write_segments(fd, payload).await.unwrap();
        client.close(fd).await.unwrap();
        // Read back through both.
        let fd = local.open("/a").await.unwrap();
        let l = transport::flatten_payload(local.read_segments(fd).await.unwrap());
        local.close(fd).await.unwrap();
        let fd = client.open("/a").await.unwrap();
        let p = client.read_to_end(fd).await.unwrap();
        client.close(fd).await.unwrap();
        (l, p)
    });
    assert!(r.sim.run().is_clean());
    let (l, p) = h.try_take().unwrap();
    assert_eq!(l, expect2);
    assert_eq!(p, expect);
    // Both decode to the same frame.
    let f1 = Frame::decode(l).unwrap();
    let f2 = Frame::decode(p).unwrap();
    assert_eq!(f1, f2);
    assert_eq!(f1.step, 9);
}

#[test]
fn kvs_watch_synchronizes_across_transport() {
    let r = rig(3);
    let ctx = r.sim.ctx();
    let srv = KvsServer::start(&ctx, &r.tp, NodeId(0), KvsSpec::default());
    let producer = KvsClient::new(&ctx, &r.tp, NodeId(1), NodeId(0), KvsSpec::default());
    let consumer = KvsClient::new(&ctx, &r.tp, NodeId(2), NodeId(0), KvsSpec::default());
    let ctx2 = ctx.clone();
    let h = r.sim.spawn(async move {
        let v = consumer.wait_key("sync/point").await;
        (ctx2.now().as_secs_f64(), v.value)
    });
    let ctx3 = ctx.clone();
    r.sim.spawn(async move {
        ctx3.sleep(SimDuration::from_millis(77)).await;
        producer
            .commit("sync/point", Bytes::from_static(b"go"))
            .await;
    });
    assert!(r.sim.run().is_clean());
    let (t, v) = h.try_take().unwrap();
    assert!((0.077..0.078).contains(&t), "woke at {t}");
    assert_eq!(v, Bytes::from_static(b"go"));
    assert_eq!(srv.stats().waits_parked, 1);
}

#[test]
fn nvme_contention_visible_through_localfs() {
    // Two filesystems on the SAME device contend; on different devices
    // they do not.
    fn elapsed(shared_device: bool) -> f64 {
        let r = rig(2);
        let ctx = r.sim.ctx();
        let dev0 = r.cluster.node(NodeId(0)).nvme.clone();
        let dev1 = if shared_device {
            dev0.clone()
        } else {
            r.cluster.node(NodeId(1)).nvme.clone()
        };
        let fs_a = LocalFs::new(&ctx, dev0, LocalFsSpec::default());
        let fs_b = LocalFs::new(&ctx, dev1, LocalFsSpec::default());
        for fs in [fs_a, fs_b] {
            r.sim.spawn(async move {
                let fd = fs.create("/x").await.unwrap();
                fs.write_bytes(fd, Bytes::from(vec![0u8; 30_000_000]))
                    .await
                    .unwrap();
                fs.close(fd).await.unwrap();
            });
        }
        let report = r.sim.run();
        assert!(report.is_clean());
        report.end_time.as_secs_f64()
    }
    let shared = elapsed(true);
    let separate = elapsed(false);
    assert!(
        shared > separate * 1.8,
        "device contention missing: shared {shared}s vs separate {separate}s"
    );
}
