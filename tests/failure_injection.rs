//! Failure-injection and edge-case tests across the substrates: the
//! system must fail loudly and precisely, not corrupt data.

use bytes::Bytes;
use cluster::{Cluster, ClusterSpec, NodeId, NodeSpec, NvmeDevice};
use kvs::{KvsClient, KvsServer, KvsSpec};
use localfs::{FsError, LocalFs, LocalFsSpec};
use mdsim::{Frame, FrameError, FrameTemplate, Model};
use pfs::{ParallelFs, PfsError, PfsSpec};
use simcore::{Sim, SimDuration, SimTime};
use transport::{Transport, TransportSpec};

#[test]
fn localfs_enospc_mid_workflow_is_clean() {
    // A tiny volume fills up; later writes fail with NoSpace, earlier
    // files stay intact, and unlinking recovers the space.
    let sim = Sim::new(0);
    let ctx = sim.ctx();
    let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
    let spec = LocalFsSpec {
        capacity_bytes: 1 << 20, // 1 MiB volume
        ..LocalFsSpec::default()
    };
    let fs = LocalFs::new(&ctx, dev, spec);
    let h = sim.spawn(async move {
        let fd = fs.create("/a").await.unwrap();
        fs.write(fd, &vec![1u8; 600_000]).await.unwrap();
        fs.close(fd).await.unwrap();
        // Second file exceeds the remaining space.
        let fd = fs.create("/b").await.unwrap();
        let err = fs.write(fd, &vec![2u8; 600_000]).await.unwrap_err();
        assert_eq!(err, FsError::NoSpace);
        fs.close(fd).await.unwrap();
        // First file unharmed.
        let fd = fs.open("/a").await.unwrap();
        let data = fs.read_to_end(fd).await.unwrap();
        fs.close(fd).await.unwrap();
        assert_eq!(data.len(), 600_000);
        assert!(data.iter().all(|&b| b == 1));
        // Reclaim and retry.
        fs.unlink("/a").await.unwrap();
        let fd = fs.create("/c").await.unwrap();
        fs.write(fd, &vec![3u8; 600_000]).await.unwrap();
        fs.close(fd).await.unwrap();
        true
    });
    sim.run();
    assert!(h.try_take().unwrap());
}

#[test]
fn corrupted_frames_are_rejected_not_misread() {
    let t = FrameTemplate::generate(Model::Jac, 1);
    let wire = transport::flatten_payload(t.frame_segments(5));
    // Flip one byte in each header field region and confirm rejection
    // (or, for the step field, a wrong-step detection via validate).
    let mut magic = wire.to_vec();
    magic[3] ^= 0xFF;
    assert_eq!(
        Frame::decode(Bytes::from(magic)).unwrap_err(),
        FrameError::BadMagic
    );
    let mut version = wire.to_vec();
    version[9] ^= 0x01;
    assert_eq!(
        Frame::decode(Bytes::from(version)).unwrap_err(),
        FrameError::BadVersion
    );
    let mut step = wire.to_vec();
    step[16] ^= 0x01; // step is at offset 16
    let segs = vec![Bytes::from(step)];
    assert!(!t.validate(&segs, 5), "wrong step must fail validation");
}

#[test]
fn pfs_client_errors_on_unknown_paths_and_bad_fds() {
    let sim = Sim::new(0);
    let ctx = sim.ctx();
    let cl = Cluster::build(&ctx, &ClusterSpec::corona(3));
    let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
    let fs = ParallelFs::start(&ctx, &tp, NodeId(1), vec![NodeId(2)], PfsSpec::default());
    let c = fs.client(&ctx, NodeId(0));
    let h = sim.spawn(async move {
        assert_eq!(c.open("/missing").await.unwrap_err(), PfsError::NotFound);
        assert_eq!(c.unlink("/missing").await.unwrap_err(), PfsError::NotFound);
        let fd = c.create("/f").await.unwrap();
        c.close(fd).await.unwrap();
        // Double close: stale descriptor.
        assert_eq!(c.close(fd).await.unwrap_err(), PfsError::BadDescriptor);
        // Writing through a read-only descriptor.
        let fd = c.open("/f").await.unwrap();
        assert_eq!(
            c.write(fd, b"x").await.unwrap_err(),
            PfsError::BadDescriptor
        );
        true
    });
    sim.run();
    assert!(h.try_take().unwrap());
}

#[test]
fn kvs_waiter_for_never_published_key_deadlocks_visibly() {
    // A consumer waiting on a key nobody commits must surface as a
    // deadlocked task, not hang the harness (the simulator detects it).
    let sim = Sim::new(0);
    let ctx = sim.ctx();
    let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
    let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
    let _srv = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
    let c = KvsClient::new(&ctx, &tp, NodeId(1), NodeId(0), KvsSpec::default());
    sim.spawn(async move {
        let _ = c.wait_key("never").await;
    });
    let report = sim.run();
    assert_eq!(report.deadlocked_tasks, 1);
    assert!(!report.is_clean());
}

#[test]
fn slow_producer_forces_cold_fallbacks_but_no_data_loss() {
    // The consumer outpaces the producer: every frame falls back to the
    // blocking KVS wait, yet each frame arrives exactly once, in order.
    use dyad::{DyadService, DyadSpec};
    use instrument::Recorder;
    use localfs::LocalFs as LFs;

    let sim = Sim::new(0);
    let ctx = sim.ctx();
    let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
    let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
    let _srv = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
    let mk = |node: u32| {
        let fs = LFs::new(
            &ctx,
            cl.node(NodeId(node)).nvme.clone(),
            LocalFsSpec::default(),
        );
        let kc = KvsClient::new(&ctx, &tp, NodeId(node), NodeId(0), KvsSpec::default());
        DyadService::start(&ctx, &tp, NodeId(node), fs, kc, DyadSpec::default())
    };
    let prod = mk(0);
    let cons = mk(1);
    let prod2 = prod.clone();
    {
        let ctx = ctx.clone();
        sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let t = FrameTemplate::generate(Model::Jac, 9);
            for i in 0..5u64 {
                // Slow producer: 50 ms per frame.
                ctx.sleep(SimDuration::from_millis(50)).await;
                prod2
                    .produce(&rec, &format!("s/{i}"), t.frame_segments(i))
                    .await;
            }
        });
    }
    let cons2 = cons.clone();
    let ctx2 = ctx.clone();
    let h = sim.spawn(async move {
        let rec = Recorder::new(&ctx2);
        let t = FrameTemplate::generate(Model::Jac, 9);
        let mut session = cons2.consumer();
        // Eager consumer: no analytics pause at all.
        for i in 0..5u64 {
            let data = session.consume(&rec, &format!("s/{i}")).await;
            assert!(t.validate(&data, i), "frame {i} corrupted");
        }
        true
    });
    let report = sim.run_until(SimTime::from_nanos(2_000_000_000));
    assert!(report.is_clean());
    assert!(h.try_take().unwrap());
    let st = cons.stats();
    assert_eq!(st.consumes, 5);
    // First consume is cold; subsequent ones race ahead and fall back.
    assert!(st.cold_syncs >= 4, "expected cold fallbacks, got {st:?}");
}

#[test]
fn interleaved_producers_do_not_cross_wires() {
    // Two producers on the same node, one consumer each on another node;
    // heavy interleaving must never deliver pair A's frame to pair B.
    use dyad::{DyadService, DyadSpec};
    use instrument::Recorder;

    let sim = Sim::new(5);
    let ctx = sim.ctx();
    let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
    let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
    let _srv = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
    let mk = |node: u32| {
        let fs = LocalFs::new(
            &ctx,
            cl.node(NodeId(node)).nvme.clone(),
            LocalFsSpec::default(),
        );
        let kc = KvsClient::new(&ctx, &tp, NodeId(node), NodeId(0), KvsSpec::default());
        DyadService::start(&ctx, &tp, NodeId(node), fs, kc, DyadSpec::default())
    };
    let prod = mk(0);
    let cons = mk(1);
    let mut handles = Vec::new();
    for pair in 0..4u64 {
        let prod = prod.clone();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            let rec = Recorder::new(&ctx2);
            // Distinct template seed per pair -> distinct bodies.
            let t = FrameTemplate::generate(Model::Jac, 100 + pair);
            for i in 0..3u64 {
                ctx2.sleep(SimDuration::from_millis(7 + pair)).await;
                prod.produce(&rec, &format!("p{pair}/f{i}"), t.frame_segments(i))
                    .await;
            }
        });
        let cons = cons.clone();
        let ctx3 = ctx.clone();
        handles.push(sim.spawn(async move {
            let rec = Recorder::new(&ctx3);
            let t = FrameTemplate::generate(Model::Jac, 100 + pair);
            let mut session = cons.consumer();
            for i in 0..3u64 {
                let data = session.consume(&rec, &format!("p{pair}/f{i}")).await;
                // validate() checks the shared body bytes, so a frame
                // from another pair (different seed) would fail.
                assert!(t.validate(&data, i), "pair {pair} frame {i} cross-wired");
            }
            true
        }));
    }
    assert!(sim.run().is_clean());
    for h in handles {
        assert!(h.try_take().unwrap());
    }
}
