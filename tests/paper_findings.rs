//! The paper's five findings, checked end-to-end at reduced scale
//! (fewer frames/reps than the paper; the mechanisms that produce each
//! finding are scale-independent).

use mdflow::calibration::Calibration;
use mdflow::findings;
use mdflow::prelude::*;

fn study(wf: WorkflowConfig, frames: u64) -> StudyReport {
    let mut s = StudyConfig::paper(wf.with_frames(frames));
    s.repetitions = 2;
    s.calibration = Calibration::corona();
    run_study(&s)
}

#[test]
fn finding1_single_node_adaptive_sync_wins() {
    let dyad = study(
        WorkflowConfig::new(Solution::Dyad, 2, Placement::SingleNode),
        24,
    );
    let xfs = study(
        WorkflowConfig::new(Solution::Xfs, 2, Placement::SingleNode),
        24,
    );
    let check = findings::finding1(&dyad, &xfs);
    assert!(check.holds, "{}", check.evidence);
}

#[test]
fn finding2_two_node_network_movement_is_cheap_for_dyad() {
    let one = study(
        WorkflowConfig::new(Solution::Dyad, 2, Placement::SingleNode),
        16,
    );
    let two = study(
        WorkflowConfig::new(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 }),
        16,
    );
    let check = findings::finding2(&one, &two);
    assert!(check.holds, "{}", check.evidence);
}

#[test]
fn finding3_dyad_wins_at_scale() {
    // The >50x overall-consumption criterion needs the cold sync to
    // amortize over a realistic frame count, so this one runs 64 frames.
    let split = Placement::Split { pairs_per_node: 8 };
    let dyad = study(WorkflowConfig::new(Solution::Dyad, 16, split), 64);
    let lustre = study(WorkflowConfig::new(Solution::Lustre, 16, split), 64);
    let check = findings::finding3(&dyad, &lustre);
    assert!(check.holds, "{}", check.evidence);
}

#[test]
fn finding4_gap_grows_with_model_size() {
    let split = Placement::Split { pairs_per_node: 16 };
    let mut by_model = Vec::new();
    for model in [Model::Jac, Model::Stmv] {
        let dyad = study(
            WorkflowConfig::new(Solution::Dyad, 8, split).with_model(model),
            10,
        );
        let lustre = study(
            WorkflowConfig::new(Solution::Lustre, 8, split).with_model(model),
            10,
        );
        by_model.push((dyad, lustre));
    }
    let check = findings::finding4(&by_model);
    assert!(check.holds, "{}", check.evidence);
}

#[test]
fn finding5_sync_dominates_at_low_frequency() {
    let split = Placement::Split { pairs_per_node: 16 };
    let mut by_stride = Vec::new();
    for stride in [1u64, 50] {
        let dyad = study(
            WorkflowConfig::new(Solution::Dyad, 8, split).with_stride(stride),
            16,
        );
        let lustre = study(
            WorkflowConfig::new(Solution::Lustre, 8, split).with_stride(stride),
            16,
        );
        by_stride.push((dyad, lustre));
    }
    let check = findings::finding5(&by_stride);
    assert!(check.holds, "{}", check.evidence);
}
