//! In situ analytics on a *real* MD trajectory (Figure 1's right-hand
//! side): run the miniature Lennard-Jones engine, capture frames through
//! the Plumed-like stride hook, stream them through the frame codec, and
//! track the largest eigenvalue of a selection's contact matrix over
//! time — flagging sudden conformational events exactly as the paper's
//! helix-eigenvalue traces do.
//!
//! ```sh
//! cargo run --release --example insitu_analytics
//! ```

use analytics::Pipeline;
use mdsim::{CaptureHook, EngineConfig, Frame, MdEngine, Model};

fn main() {
    let cfg = EngineConfig {
        n_atoms: 500,
        density: 0.75,
        dt: 0.002,
        cutoff: 2.5,
        temperature: 0.9,
        thermostat_tau: 0.1,
        seed: 2024,
    };
    println!(
        "simulating {} Lennard-Jones atoms, capturing every 20 steps...",
        cfg.n_atoms
    );
    let mut engine = MdEngine::new(cfg);
    let mut hook = CaptureHook::new(Model::Jac, 20);

    // Producer side: capture + serialize (what the workflow would write).
    let mut wire_frames: Vec<bytes::Bytes> = Vec::new();
    hook.run(&mut engine, 600, &mut |f: Frame| {
        wire_frames.push(f.encode());
    });
    println!(
        "captured {} frames ({} B each)",
        wire_frames.len(),
        wire_frames[0].len()
    );

    // Consumer side: deserialize + analyze, frame by frame.
    let mut pipeline = Pipeline::new(60, 1.7);
    println!("\n step    λ_max   contacts      Rg    RMSD→first");
    for wire in &wire_frames {
        let frame = Frame::decode(wire.clone()).expect("valid frame");
        let a = pipeline.analyze(&frame);
        println!(
            "{:5}  {:7.3}  {:9}  {:6.3}  {:10.4}",
            a.step, a.largest_eigenvalue, a.contacts, a.radius_of_gyration, a.rmsd_to_first
        );
    }

    let events = pipeline.eigenvalue_events(0.75);
    if events.is_empty() {
        println!("\nno sudden eigenvalue events (|Δλ| > 0.75) in this window");
    } else {
        println!("\nsudden eigenvalue events at frame indices {events:?} — the kind of");
        println!("conformational change Figure 1's in situ analytics flags in real time.");
    }
    assert_eq!(pipeline.history().len(), 30);
}
