//! Fan-out workflows — the "more diverse set of workflows" the paper's
//! conclusion points to as future work. One MD producer publishes each
//! frame once through DYAD; N analytics consumers on different nodes
//! each fetch it independently (monitoring + reduction + visualization
//! pipelines of §II-B). DYAD needs no extra coordination: the KVS entry
//! is published once and every consumer synchronizes against it.
//!
//! ```sh
//! cargo run --release --example fanout_analytics
//! ```

use std::rc::Rc;

use cluster::{Cluster, ClusterSpec, NodeId};
use dyad::{DyadService, DyadSpec};
use instrument::Recorder;
use kvs::{KvsClient, KvsServer, KvsSpec};
use localfs::{LocalFs, LocalFsSpec};
use mdsim::{FrameTemplate, Model};
use simcore::{Sim, SimDuration};
use thicket::{Ensemble, Query};
use transport::Transport;

const CONSUMERS: u32 = 3;
const FRAMES: u64 = 16;

fn main() {
    let sim = Sim::new(42);
    let ctx = sim.ctx();
    let n_nodes = 1 + CONSUMERS as usize;
    let cluster = Cluster::build(&ctx, &ClusterSpec::corona(n_nodes));
    let tp = Transport::new(&ctx, cluster.fabric().clone(), Default::default());
    let _kvs = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
    let mk_svc = |node: u32| {
        let fs = LocalFs::new(
            &ctx,
            cluster.node(NodeId(node)).nvme.clone(),
            LocalFsSpec::default(),
        );
        let kc = KvsClient::new(&ctx, &tp, NodeId(node), NodeId(0), KvsSpec::default());
        DyadService::start(&ctx, &tp, NodeId(node), fs, kc, DyadSpec::default())
    };

    let template = Rc::new(FrameTemplate::generate(Model::ApoA1, 7));
    let period = SimDuration::from_millis(100);

    // The producer on node 0.
    let prod_svc = mk_svc(0);
    {
        let template = template.clone();
        let ctx2 = ctx.clone();
        let svc = prod_svc.clone();
        sim.spawn(async move {
            let rec = Recorder::new(&ctx2);
            for frame in 0..FRAMES {
                ctx2.sleep(period).await;
                svc.produce(
                    &rec,
                    &format!("traj/f{frame}"),
                    template.frame_segments(frame),
                )
                .await;
            }
        });
    }

    // N independent consumers, one per remaining node, each with its own
    // analytics cadence.
    let mut handles = Vec::new();
    let mut services = Vec::new();
    for c in 0..CONSUMERS {
        let svc = mk_svc(1 + c);
        services.push(svc.clone());
        let template = template.clone();
        let ctx2 = ctx.clone();
        handles.push(sim.spawn(async move {
            let rec = Recorder::new(&ctx2);
            let mut session = svc.consumer();
            // Different analytics costs per consumer kind.
            let analytics = SimDuration::from_millis(40 + 30 * c as u64);
            for frame in 0..FRAMES {
                let data = session.consume(&rec, &format!("traj/f{frame}")).await;
                assert!(template.validate(&data, frame), "consumer {c} corrupted");
                ctx2.sleep(analytics).await;
            }
            rec.finish()
        }));
    }

    let report = sim.run();
    assert!(report.is_clean());
    println!(
        "fan-out complete: 1 producer → {CONSUMERS} consumers × {FRAMES} frames \
         in {:.2} simulated s\n",
        report.end_time.as_secs_f64()
    );
    println!("per-consumer consumption profile (Thicket aggregate):");
    let mut ens = Ensemble::new();
    for (c, h) in handles.into_iter().enumerate() {
        let profile = h.try_take().expect("consumer finished");
        let consume = profile.inclusive(&["dyad_consume"]).as_millis_f64();
        let fetch = profile
            .inclusive(&["dyad_consume", "dyad_fetch"])
            .as_millis_f64();
        println!("  consumer {c}: dyad_consume {consume:8.3} ms total (sync {fetch:7.3} ms)");
        ens.push(profile);
    }
    let agg = ens.aggregate();
    let q = Query::parse("dyad_consume/dyad_get_data");
    println!(
        "\nmean RDMA fetch time across consumers: {:.3} ms/run",
        agg.query_time(&q) * 1e3 / CONSUMERS as f64
    );
    // The producer served every consumer's fetches from its node-local
    // copy — one publish, N reads, no producer-side re-sends.
    let st = prod_svc.stats();
    println!(
        "producer stats: {} produces, {} fetches served (expected {})",
        st.produces,
        st.fetches_served,
        CONSUMERS as u64 * FRAMES
    );
    assert_eq!(st.fetches_served, CONSUMERS as u64 * FRAMES);
}
