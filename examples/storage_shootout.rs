//! Storage shootout: one distributed STMV configuration through every
//! data-management solution, including the DYAD-sync-over-Lustre
//! ablation that separates DYAD's two advantages (synchronization
//! protocol vs node-local storage + RDMA).
//!
//! ```sh
//! cargo run --release --example storage_shootout
//! ```

use mdflow::prelude::*;

fn main() {
    let split = Placement::Split { pairs_per_node: 8 };
    let mk = |solution| {
        StudyConfig::paper(
            WorkflowConfig::new(solution, 8, split)
                .with_model(Model::Stmv)
                .with_frames(24),
        )
        .with_repetitions(2)
    };
    println!("storage shootout: STMV (28.5 MiB frames), 2 nodes, 8 pairs, 24 frames\n");
    let mut results = Vec::new();
    for solution in [Solution::Dyad, Solution::DyadOnPfs, Solution::Lustre] {
        println!("running {}...", solution.label());
        results.push((solution, run_study(&mk(solution))));
    }
    println!(
        "\n{:<10} {:>14} {:>14} {:>14} {:>12}",
        "solution", "prod/frame", "cons move", "cons idle", "makespan"
    );
    for (solution, r) in &results {
        println!(
            "{:<10} {:>11.2} ms {:>11.2} ms {:>11.2} ms {:>10.1} s",
            solution.label(),
            r.production_total() * 1e3,
            r.consumption_movement.mean * 1e3,
            r.consumption_idle.mean * 1e3,
            r.makespan.mean,
        );
    }
    let dyad = &results[0].1;
    let on_pfs = &results[1].1;
    let lustre = &results[2].1;
    println!(
        "\nsync protocol alone (DYAD/PFS vs Lustre): {:.0}x less idle",
        lustre.consumption_idle.mean / on_pfs.consumption_idle.mean.max(1e-12)
    );
    println!(
        "node-local + RDMA alone (DYAD vs DYAD/PFS): {:.1}x faster movement",
        on_pfs.consumption_movement.mean / dyad.consumption_movement.mean.max(1e-12)
    );
    println!("both together are the paper's DYAD result.");
}
