//! A miniature Figure-7 campaign: scale a distributed JAC ensemble from
//! 8 to 64 producer-consumer pairs (one process type per node, 8 per
//! node) and compare DYAD against Lustre at each size.
//!
//! ```sh
//! cargo run --release --example ensemble_campaign
//! ```

use mdflow::prelude::*;

fn main() {
    let split = Placement::Split { pairs_per_node: 8 };
    let frames = 32;
    let reps = 2;
    println!("ensemble scaling campaign: JAC, {frames} frames, {reps} reps\n");
    println!(
        "{:>6} {:>7}  {:>14} {:>14}  {:>16} {:>16}  {:>9}",
        "pairs", "nodes", "DYAD prod", "Lustre prod", "DYAD cons", "Lustre cons", "cons gap"
    );
    for pairs in [8u32, 16, 32, 64] {
        let mk = |solution| {
            StudyConfig::paper(WorkflowConfig::new(solution, pairs, split).with_frames(frames))
                .with_repetitions(reps)
        };
        let dyad = run_study(&mk(Solution::Dyad));
        let lustre = run_study(&mk(Solution::Lustre));
        println!(
            "{:>6} {:>7}  {:>11.0} µs {:>11.0} µs  {:>13.2} ms {:>13.1} ms  {:>8.1}x",
            pairs,
            pairs / 8 * 2,
            dyad.production_total() * 1e6,
            lustre.production_total() * 1e6,
            dyad.consumption_total() * 1e3,
            lustre.consumption_total() * 1e3,
            lustre.consumption_total() / dyad.consumption_total(),
        );
    }
    println!(
        "\nDYAD's production and consumption stay flat as the ensemble grows \
         (per-node NVMe scales with the nodes), while Lustre rides the shared \
         filesystem — the mechanism behind the paper's Finding 3."
    );
}
