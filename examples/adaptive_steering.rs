//! Adaptive steering (§II-B): in situ analytics terminate trajectories
//! that wander out of the region of interest, saving the simulated GPU
//! time the remaining strides would have burned — the "steer the
//! simulation" use case that motivates low-latency data movement.
//!
//! Two ensembles run back to back: one free-running, one steered by a
//! radius-of-gyration rule. Both use real Lennard-Jones MD inside the
//! simulated workflow.
//!
//! ```sh
//! cargo run --release --example adaptive_steering
//! ```

use mdflow::calibration::Calibration;
use mdflow::steering::{run_steering, SteeringConfig, SteeringRule};

fn main() {
    let cal = Calibration::quiet();
    let base = SteeringConfig {
        pairs: 4,
        max_frames: 20,
        stride: 10,
        atoms: 216,
        rule: SteeringRule::None,
        ..SteeringConfig::default()
    };

    println!(
        "running {} free trajectories ({} frames max)...",
        base.pairs, base.max_frames
    );
    let free = run_steering(&base, &cal, 11);

    // Pick a mid-distribution threshold from the free run so trajectories
    // trigger at different points in their lifetime.
    let mut rgs: Vec<f64> = free
        .iter()
        .flat_map(|o| o.history.iter().map(|a| a.radius_of_gyration))
        .collect();
    rgs.sort_by(f64::total_cmp);
    let threshold = rgs[rgs.len() * 6 / 10];
    println!(
        "Rg range {:.4}..{:.4}; steering rule: terminate when Rg > {threshold:.4}\n",
        rgs[0],
        rgs[rgs.len() - 1]
    );

    let steered_cfg = SteeringConfig {
        rule: SteeringRule::RadiusAbove(threshold),
        ..base.clone()
    };
    let steered = run_steering(&steered_cfg, &cal, 11);

    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "pair", "free frames", "steered", "trigger@"
    );
    let mut saved = 0u64;
    for (f, s) in free.iter().zip(&steered) {
        println!(
            "{:<6} {:>12} {:>12} {:>12}",
            f.pair,
            f.frames_produced,
            s.frames_produced,
            s.triggered_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        saved += f.frames_produced - s.frames_produced;
    }
    let total: u64 = free.iter().map(|o| o.frames_produced).sum();
    println!(
        "\nsteering saved {saved} of {total} frame computations ({:.0}%) across the ensemble —",
        100.0 * saved as f64 / total as f64
    );
    println!("the adaptive-simulation payoff that in situ analytics buys (paper §II-B).");
}
