//! Quickstart: run the paper's core comparison on your laptop in a few
//! seconds — a single-node MD workflow moving JAC frames through DYAD
//! and through XFS with manual synchronization, reproducing Finding 1.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mdflow::prelude::*;

fn main() {
    // 2 producer-consumer pairs on one node, 32 JAC frames, 3 reps.
    let scale = |solution| {
        StudyConfig::paper(WorkflowConfig::new(solution, 2, Placement::SingleNode).with_frames(32))
            .with_repetitions(3)
    };

    println!("running DYAD...");
    let dyad = run_study(&scale(Solution::Dyad));
    println!("running XFS with manual coarse-grained sync...");
    let xfs = run_study(&scale(Solution::Xfs));

    println!("\n== single node, JAC, 2 pairs, 32 frames ==");
    for (name, r) in [("DYAD", &dyad), ("XFS", &xfs)] {
        println!(
            "{name:>5}: production {:7.1} µs/frame | consumption {:8.3} ms/frame \
             (movement {:6.3} ms, idle {:8.3} ms)",
            r.production_total() * 1e6,
            r.consumption_total() * 1e3,
            r.consumption_movement.mean * 1e3,
            r.consumption_idle.mean * 1e3,
        );
    }
    println!(
        "\nDYAD produces {:.2}x slower (metadata management) but consumes {:.1}x faster\n\
         (adaptive synchronization) — the paper's Finding 1.",
        dyad.production_total() / xfs.production_total(),
        xfs.consumption_total() / dyad.consumption_total(),
    );
    let check = mdflow::findings::finding1(&dyad, &xfs);
    assert!(
        check.holds,
        "Finding 1 did not reproduce: {}",
        check.evidence
    );
    println!("Finding 1 reproduced ✓");
}
