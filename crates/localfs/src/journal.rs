//! A write-ahead metadata journal in the XFS mould.
//!
//! Metadata mutations (inode updates, directory entries, extent-map
//! changes) append fixed-size records to an in-memory log buffer;
//! `fsync`/`close` force the accumulated records to the device as one
//! sequential write. The journal never stores file *data* (XFS journals
//! metadata only; data is written in place).

use cluster::NvmeDevice;

/// Kinds of journaled metadata records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Inode created or updated (size, timestamps, extent count).
    InodeUpdate,
    /// Directory entry added or removed.
    DirEntry,
    /// Extent allocated or freed.
    ExtentMap,
    /// Transaction commit record.
    Commit,
}

/// Aggregate journal statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended.
    pub records: u64,
    /// Physical flushes to the device.
    pub flushes: u64,
    /// Bytes written to the log device.
    pub bytes_flushed: u64,
}

/// The in-memory journal front-end.
#[derive(Debug, Clone)]
pub struct Journal {
    record_bytes: u64,
    pending_bytes: u64,
    stats: JournalStats,
}

impl Journal {
    /// Create a journal whose records are `record_bytes` each on disk.
    pub fn new(record_bytes: u64) -> Self {
        Journal {
            record_bytes,
            pending_bytes: 0,
            stats: JournalStats::default(),
        }
    }

    /// Append a record to the log buffer (no device I/O yet).
    pub fn append(&mut self, _kind: RecordKind) {
        self.pending_bytes += self.record_bytes;
        self.stats.records += 1;
    }

    /// Bytes waiting to be flushed.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Force pending records to the device (one sequential write, plus a
    /// commit record). No-op if the buffer is empty.
    pub async fn flush(&mut self, dev: &NvmeDevice) {
        if self.pending_bytes == 0 {
            return;
        }
        let bytes = self.pending_bytes + self.record_bytes; // + commit record
        self.pending_bytes = 0;
        self.stats.flushes += 1;
        self.stats.bytes_flushed += bytes;
        dev.write_small(bytes).await;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::NodeSpec;
    use simcore::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn append_accumulates_and_flush_clears() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        let j = Rc::new(RefCell::new(Journal::new(512)));
        j.borrow_mut().append(RecordKind::InodeUpdate);
        j.borrow_mut().append(RecordKind::DirEntry);
        assert_eq!(j.borrow().pending_bytes(), 1024);
        let j2 = j.clone();
        sim.spawn(async move {
            // Take the journal out so no RefCell borrow spans the await.
            let mut jj = j2.borrow().clone();
            jj.flush(&dev).await;
            *j2.borrow_mut() = jj;
        });
        sim.run();
        let st = j.borrow().stats();
        assert_eq!(st.records, 2);
        assert_eq!(st.flushes, 1);
        assert_eq!(st.bytes_flushed, 1536); // 2 records + commit
        assert_eq!(j.borrow().pending_bytes(), 0);
    }

    #[test]
    fn empty_flush_is_noop() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        let j = Rc::new(RefCell::new(Journal::new(512)));
        let j2 = j.clone();
        let h = sim.spawn(async move {
            let mut jj = j2.borrow().clone();
            jj.flush(&dev).await;
            *j2.borrow_mut() = jj;
            ctx.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), simcore::SimTime::ZERO);
        assert_eq!(j.borrow().stats().flushes, 0);
    }
}
