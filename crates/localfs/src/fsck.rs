//! Filesystem consistency checking — the invariants a real `xfs_repair`
//! would verify, used by the property tests and available to embedders.

use std::collections::HashMap;

use crate::fs::LocalFs;

/// A consistency violation found by [`LocalFs::fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckIssue {
    /// Two files (or one file twice) claim the same block.
    OverlappingExtents {
        /// First block of the overlap.
        block: u64,
    },
    /// A file's extent capacity is smaller than its content size.
    SizeExceedsExtents {
        /// Inode number.
        ino: u64,
        /// Content bytes.
        size: u64,
        /// Bytes of allocated extent capacity.
        capacity: u64,
    },
    /// Allocator accounting disagrees with the sum of file extents.
    FreeSpaceMismatch {
        /// Blocks the allocator reports free.
        allocator_free: u64,
        /// Blocks implied free by the inode extents.
        implied_free: u64,
    },
    /// A directory references a missing inode.
    DanglingDirent {
        /// The missing inode number.
        ino: u64,
    },
    /// The superblock's running used-blocks counter disagrees with the
    /// sum of all inode extents (catches lost/double frees after
    /// unlink-heavy workloads such as staging eviction).
    UsageCounterMismatch {
        /// Blocks the superblock counter reports used.
        counter: u64,
        /// Blocks actually claimed by inode extents.
        extents: u64,
    },
}

/// Result of a consistency check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// All violations found (empty = consistent).
    pub issues: Vec<FsckIssue>,
    /// Files visited.
    pub files: usize,
    /// Directories visited.
    pub dirs: usize,
    /// Blocks in use by file extents.
    pub used_blocks: u64,
}

impl FsckReport {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl LocalFs {
    /// Check on-disk-structure invariants: no overlapping extents, sizes
    /// within allocated capacity, allocator free-space accounting, and
    /// no dangling directory entries. Zero simulated cost (a debugging
    /// facility, not an I/O operation).
    pub fn fsck(&self) -> FsckReport {
        let mut report = FsckReport::default();
        let (entries, total_blocks, allocator_free, block_size, used_counter) =
            self.fsck_snapshot();
        report.files = entries.iter().filter(|e| !e.is_dir).count();
        report.dirs = entries.iter().filter(|e| e.is_dir).count();

        // Extent overlap + per-file capacity.
        let mut claimed: HashMap<u64, u64> = HashMap::new();
        for e in &entries {
            let mut capacity = 0u64;
            for &(start, len) in &e.extents {
                capacity += len * block_size;
                for b in start..start + len {
                    if claimed.insert(b, e.ino).is_some() {
                        report
                            .issues
                            .push(FsckIssue::OverlappingExtents { block: b });
                    }
                }
            }
            report.used_blocks += e.extents.iter().map(|&(_, l)| l).sum::<u64>();
            if e.size > capacity {
                report.issues.push(FsckIssue::SizeExceedsExtents {
                    ino: e.ino,
                    size: e.size,
                    capacity,
                });
            }
            if e.dangling {
                report.issues.push(FsckIssue::DanglingDirent { ino: e.ino });
            }
        }

        // Allocator accounting.
        let implied_free = total_blocks - report.used_blocks;
        if implied_free != allocator_free {
            report.issues.push(FsckIssue::FreeSpaceMismatch {
                allocator_free,
                implied_free,
            });
        }
        // Superblock usage counter vs. the extents themselves.
        if used_counter != report.used_blocks {
            report.issues.push(FsckIssue::UsageCounterMismatch {
                counter: used_counter,
                extents: report.used_blocks,
            });
        }
        report
    }
}

/// Internal per-inode view for fsck (filled by `LocalFs::fsck_snapshot`).
pub(crate) struct FsckEntry {
    pub(crate) ino: u64,
    pub(crate) is_dir: bool,
    pub(crate) size: u64,
    pub(crate) extents: Vec<(u64, u64)>,
    pub(crate) dangling: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalFsSpec, OpenMode};
    use cluster::{NodeSpec, NvmeDevice};
    use simcore::Sim;

    fn fs(sim: &Sim) -> LocalFs {
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        LocalFs::new(&ctx, dev, LocalFsSpec::default())
    }

    #[test]
    fn fresh_fs_is_clean() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let r = f.fsck();
        assert!(r.is_clean(), "{:?}", r.issues);
        assert_eq!(r.files, 0);
        assert_eq!(r.dirs, 1); // root
    }

    #[test]
    fn busy_fs_stays_consistent() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let f2 = f.clone();
        sim.spawn(async move {
            f2.mkdir_p("/a/b").await.unwrap();
            for i in 0..10 {
                let path = format!("/a/b/f{i}");
                let fd = f2.create(&path).await.unwrap();
                f2.write(fd, &vec![i as u8; 10_000 * (i + 1)])
                    .await
                    .unwrap();
                f2.close(fd).await.unwrap();
            }
            // Churn: delete some, rewrite others, append to one.
            for i in (0..10).step_by(2) {
                f2.unlink(&format!("/a/b/f{i}")).await.unwrap();
            }
            for i in (1..10).step_by(2) {
                let path = format!("/a/b/f{i}");
                let fd = f2.create(&path).await.unwrap();
                f2.write(fd, &vec![0xFF; 5_000]).await.unwrap();
                f2.close(fd).await.unwrap();
            }
            let fd = f2.open_with("/a/b/f1", OpenMode::Append).await.unwrap();
            f2.write(fd, &[1, 2, 3]).await.unwrap();
            f2.close(fd).await.unwrap();
        });
        sim.run();
        let r = f.fsck();
        assert!(r.is_clean(), "{:?}", r.issues);
        assert_eq!(r.files, 5);
    }

    #[test]
    fn statvfs_tracks_usage_through_unlink_churn() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let f2 = f.clone();
        sim.spawn(async move {
            assert_eq!(f2.statvfs().used_bytes, 0);
            for i in 0..32 {
                let fd = f2.create(&format!("/x{i}")).await.unwrap();
                f2.write(fd, &vec![1u8; 100_000]).await.unwrap();
                f2.close(fd).await.unwrap();
            }
            let v = f2.statvfs();
            // 100 000 B rounds up to 25 blocks of 4 KiB.
            assert_eq!(v.used_bytes, 32 * 25 * 4096);
            assert_eq!(v.free_bytes + v.used_bytes, v.capacity_bytes);
            for i in 0..32 {
                f2.unlink(&format!("/x{i}")).await.unwrap();
            }
            assert_eq!(f2.statvfs().used_bytes, 0);
        });
        sim.run();
        assert!(f.fsck().is_clean());
    }

    #[test]
    fn unlink_with_open_fd_defers_extent_free_until_close() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let f2 = f.clone();
        sim.spawn(async move {
            let fd = f2.create("/victim").await.unwrap();
            f2.write(fd, &vec![3u8; 40_960]).await.unwrap();
            f2.close(fd).await.unwrap();
            let rd = f2.open("/victim").await.unwrap();
            // Evictor-style unlink while the reader holds a descriptor.
            f2.unlink("/victim").await.unwrap();
            assert!(!f2.exists("/victim"));
            // Blocks stay allocated and the data stays readable.
            assert_eq!(f2.statvfs().used_bytes, 40_960);
            assert!(f2.fsck().is_clean(), "{:?}", f2.fsck().issues);
            let data = f2.read_to_end(rd).await.unwrap();
            assert_eq!(data.len(), 40_960);
            f2.close(rd).await.unwrap();
            // Last close reaps the orphan.
            assert_eq!(f2.statvfs().used_bytes, 0);
        });
        sim.run();
        assert!(f.fsck().is_clean(), "{:?}", f.fsck().issues);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Create(u8, u16),
            Append(u8, u16),
            Unlink(u8),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (any::<u8>(), 1u16..5000).prop_map(|(f, n)| Op::Create(f % 8, n)),
                (any::<u8>(), 1u16..5000).prop_map(|(f, n)| Op::Append(f % 8, n)),
                any::<u8>().prop_map(|f| Op::Unlink(f % 8)),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn arbitrary_op_sequences_keep_fs_consistent(
                ops in proptest::collection::vec(arb_op(), 1..40)
            ) {
                let sim = Sim::new(0);
                let f = fs(&sim);
                let f2 = f.clone();
                sim.spawn(async move {
                    for op in ops {
                        match op {
                            Op::Create(file, n) => {
                                let fd = f2.create(&format!("/f{file}")).await.unwrap();
                                f2.write(fd, &vec![7u8; n as usize]).await.unwrap();
                                f2.close(fd).await.unwrap();
                            }
                            Op::Append(file, n) => {
                                let path = format!("/f{file}");
                                if f2.exists(&path) {
                                    let fd =
                                        f2.open_with(&path, OpenMode::Append).await.unwrap();
                                    f2.write(fd, &vec![9u8; n as usize]).await.unwrap();
                                    f2.close(fd).await.unwrap();
                                }
                            }
                            Op::Unlink(file) => {
                                let _ = f2.unlink(&format!("/f{file}")).await;
                            }
                        }
                    }
                });
                sim.run();
                let r = f.fsck();
                prop_assert!(r.is_clean(), "{:?}", r.issues);
            }
        }
    }
}
