//! Extent allocation in the XFS style: the volume is split into
//! allocation groups (AGs), each with its own free-extent B-tree, and new
//! allocations rotate across AGs so parallel writers rarely contend on
//! the same free-space structures.

use std::collections::BTreeMap;

use crate::error::{FsError, FsResult};

/// A contiguous run of blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First block of the run (volume-absolute).
    pub start: u64,
    /// Number of blocks.
    pub len: u64,
}

impl Extent {
    /// One past the last block.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Free-space structure of one allocation group: free extents keyed by
/// start block, coalesced on free.
#[derive(Debug, Clone)]
struct AllocGroup {
    /// start -> len of each free extent.
    free: BTreeMap<u64, u64>,
    free_blocks: u64,
}

impl AllocGroup {
    fn new(start: u64, len: u64) -> Self {
        let mut free = BTreeMap::new();
        free.insert(start, len);
        AllocGroup {
            free,
            free_blocks: len,
        }
    }

    /// First-fit allocation of up to `want` blocks; returns the extent
    /// carved out, which may be shorter than `want`.
    fn alloc(&mut self, want: u64) -> Option<Extent> {
        let (&start, &len) = self.free.iter().find(|(_, &len)| len > 0)?;
        let take = want.min(len);
        self.free.remove(&start);
        if take < len {
            self.free.insert(start + take, len - take);
        }
        self.free_blocks -= take;
        Some(Extent { start, len: take })
    }

    /// Return an extent, coalescing with neighbours.
    fn free_extent(&mut self, ext: Extent) {
        let mut start = ext.start;
        let mut len = ext.len;
        // Coalesce with predecessor.
        if let Some((&pstart, &plen)) = self.free.range(..start).next_back() {
            if pstart + plen == start {
                self.free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with successor.
        if let Some((&nstart, &nlen)) = self.free.range(start + len..).next() {
            if start + len == nstart {
                self.free.remove(&nstart);
                len += nlen;
            }
        }
        self.free.insert(start, len);
        self.free_blocks += ext.len;
    }
}

/// The volume-wide extent allocator.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    groups: Vec<AllocGroup>,
    ag_blocks: u64,
    next_ag: usize,
}

impl ExtentAllocator {
    /// Create an allocator over `total_blocks` split into `ag_count`
    /// allocation groups.
    pub fn new(total_blocks: u64, ag_count: usize) -> Self {
        assert!(ag_count >= 1 && total_blocks >= ag_count as u64);
        let ag_blocks = total_blocks / ag_count as u64;
        let groups = (0..ag_count)
            .map(|i| {
                let start = i as u64 * ag_blocks;
                let len = if i == ag_count - 1 {
                    total_blocks - start
                } else {
                    ag_blocks
                };
                AllocGroup::new(start, len)
            })
            .collect();
        ExtentAllocator {
            groups,
            ag_blocks,
            next_ag: 0,
        }
    }

    /// Total free blocks across all groups.
    pub fn free_blocks(&self) -> u64 {
        self.groups.iter().map(|g| g.free_blocks).sum()
    }

    /// Allocate `blocks` blocks, possibly as multiple extents. New
    /// allocations start in the next AG round-robin (XFS-style rotoring),
    /// spilling into other groups when one runs dry.
    pub fn alloc(&mut self, blocks: u64) -> FsResult<Vec<Extent>> {
        if blocks == 0 {
            return Ok(Vec::new());
        }
        if self.free_blocks() < blocks {
            return Err(FsError::NoSpace);
        }
        let mut out = Vec::new();
        let mut remaining = blocks;
        let start_ag = self.next_ag;
        self.next_ag = (self.next_ag + 1) % self.groups.len();
        let n = self.groups.len();
        let mut ag = start_ag;
        while remaining > 0 {
            if let Some(ext) = self.groups[ag].alloc(remaining) {
                remaining -= ext.len;
                out.push(ext);
            } else {
                ag = (ag + 1) % n;
                // Guaranteed to terminate: total free ≥ requested.
                debug_assert!(self.groups.iter().any(|g| g.free_blocks > 0));
            }
        }
        Ok(out)
    }

    /// Free the given extents.
    pub fn free(&mut self, extents: &[Extent]) {
        for &ext in extents {
            let ag = ((ext.start / self.ag_blocks) as usize).min(self.groups.len() - 1);
            self.groups[ag].free_extent(ext);
        }
    }

    /// Number of allocation groups.
    pub fn ag_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of free extents (fragmentation indicator).
    pub fn fragments(&self) -> usize {
        self.groups.iter().map(|g| g.free.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut a = ExtentAllocator::new(1000, 4);
        assert_eq!(a.free_blocks(), 1000);
        let e = a.alloc(100).unwrap();
        assert_eq!(e.iter().map(|x| x.len).sum::<u64>(), 100);
        assert_eq!(a.free_blocks(), 900);
        a.free(&e);
        assert_eq!(a.free_blocks(), 1000);
    }

    #[test]
    fn allocations_rotate_groups() {
        let mut a = ExtentAllocator::new(1000, 4);
        let e1 = a.alloc(10).unwrap();
        let e2 = a.alloc(10).unwrap();
        // Different AGs -> different regions.
        assert_ne!(e1[0].start / 250, e2[0].start / 250);
    }

    #[test]
    fn exhaustion_returns_nospace() {
        let mut a = ExtentAllocator::new(100, 2);
        assert!(a.alloc(101).is_err());
        let _ = a.alloc(100).unwrap();
        assert_eq!(a.free_blocks(), 0);
        assert_eq!(a.alloc(1), Err(FsError::NoSpace));
    }

    #[test]
    fn spill_across_groups() {
        let mut a = ExtentAllocator::new(100, 4); // 25 blocks per AG
        let e = a.alloc(60).unwrap();
        assert!(e.len() >= 3, "spans at least 3 AGs: {e:?}");
        assert_eq!(e.iter().map(|x| x.len).sum::<u64>(), 60);
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = ExtentAllocator::new(100, 1);
        let e1 = a.alloc(30).unwrap();
        let e2 = a.alloc(30).unwrap();
        let e3 = a.alloc(30).unwrap();
        a.free(&e1);
        a.free(&e3);
        // Free list: [0..30) and [60..100) (e3 coalesced with the tail).
        assert_eq!(a.fragments(), 2);
        a.free(&e2);
        // Everything merges back into one extent.
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.free_blocks(), 100);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn alloc_free_conserves_blocks(ops in proptest::collection::vec(1u64..50, 1..40)) {
                let total = 2000u64;
                let mut a = ExtentAllocator::new(total, 4);
                let mut held: Vec<Vec<Extent>> = Vec::new();
                for (i, want) in ops.iter().enumerate() {
                    if i % 3 == 2 && !held.is_empty() {
                        let e = held.swap_remove(0);
                        a.free(&e);
                    } else if let Ok(e) = a.alloc(*want) {
                        prop_assert_eq!(e.iter().map(|x| x.len).sum::<u64>(), *want);
                        held.push(e);
                    }
                    let held_blocks: u64 = held.iter().flatten().map(|x| x.len).sum();
                    prop_assert_eq!(a.free_blocks() + held_blocks, total);
                }
                // No overlapping extents among held allocations.
                let mut all: Vec<Extent> = held.into_iter().flatten().collect();
                all.sort_by_key(|e| e.start);
                for w in all.windows(2) {
                    prop_assert!(w[0].end() <= w[1].start,
                        "overlap: {:?} then {:?}", w[0], w[1]);
                }
            }
        }
    }
}
