//! # localfs — an XFS-like node-local filesystem
//!
//! The paper's single-node baseline stores frames on each node's NVMe
//! through XFS. This crate implements a compact but structurally faithful
//! XFS-style filesystem over the simulated [`cluster::NvmeDevice`]:
//!
//! * **allocation groups** with extent-based allocation (round-robin AG
//!   rotoring, first-fit within a group, coalescing on free);
//! * **inodes** holding extent maps, hierarchical **directories**;
//! * a **metadata write-ahead journal** flushed on `fsync`/`close`;
//! * a **page cache** serving re-reads at memory bandwidth;
//! * POSIX-style advisory **flock** (used by DYAD's warm-path
//!   synchronization and by the manual-sync baselines).
//!
//! File contents are real bytes — what a consumer reads is bit-identical
//! to what the producer wrote, so the analytics stack downstream operates
//! on genuine frame data.

#![warn(missing_docs)]

mod alloc;
mod error;
mod fs;
mod fsck;
mod journal;

pub use alloc::{Extent, ExtentAllocator};
pub use error::{FsError, FsResult};
pub use fs::{Fd, FsStats, LocalFs, LocalFsSpec, LockKind, OpenMode, Stat, StatVfs};
pub use fsck::{FsckIssue, FsckReport};
pub use journal::{Journal, JournalStats, RecordKind};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use cluster::{NodeSpec, NvmeDevice};
    use simcore::{Sim, SimDuration};

    fn fs(sim: &Sim) -> LocalFs {
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        LocalFs::new(&ctx, dev, LocalFsSpec::default())
    }

    #[test]
    fn write_then_read_round_trips() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move {
            f.mkdir_p("/data").await.unwrap();
            let fd = f.create("/data/frame0").await.unwrap();
            let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
            f.write(fd, &payload).await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.open("/data/frame0").await.unwrap();
            let got = f.read_to_end(fd).await.unwrap();
            f.close(fd).await.unwrap();
            (got, Bytes::from(payload))
        });
        sim.run();
        let (got, want) = h.try_take().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn missing_file_errors() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move { f.open("/nope").await.err() });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(FsError::NotFound));
    }

    #[test]
    fn create_requires_parent_dir() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move { f.create("/no/such/dir/file").await.err() });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(FsError::NotFound));
    }

    #[test]
    fn create_truncates_existing() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move {
            let fd = f.create("/a").await.unwrap();
            f.write(fd, b"0123456789").await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.create("/a").await.unwrap();
            f.write(fd, b"xy").await.unwrap();
            f.close(fd).await.unwrap();
            f.stat("/a").await.unwrap().size
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 2);
    }

    #[test]
    fn append_mode_continues_at_end() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move {
            let fd = f.create("/log").await.unwrap();
            f.write(fd, b"aaa").await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.open_with("/log", OpenMode::Append).await.unwrap();
            f.write(fd, b"bbb").await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.open("/log").await.unwrap();
            let data = f.read_to_end(fd).await.unwrap();
            f.close(fd).await.unwrap();
            data
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Bytes::from_static(b"aaabbb"));
    }

    #[test]
    fn write_charges_device_time() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let fd = f.create("/big").await.unwrap();
            let before = ctx.now();
            f.write(fd, &vec![0u8; 3_000_000]).await.unwrap(); // 1 ms at 3 GB/s
            (ctx.now() - before).as_micros_f64()
        });
        sim.run();
        let us = h.try_take().unwrap();
        assert!((us - 1025.0).abs() < 5.0, "write took {us} µs");
    }

    #[test]
    fn cached_read_is_memory_speed() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let ctx = sim.ctx();
        let f2 = f.clone();
        let h = sim.spawn(async move {
            let f = f2;
            let fd = f.create("/c").await.unwrap();
            f.write(fd, &vec![7u8; 2_000_000]).await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.open("/c").await.unwrap();
            let before = ctx.now();
            let data = f.read_to_end(fd).await.unwrap();
            let took = ctx.now() - before;
            (took.as_micros_f64(), data.len())
        });
        sim.run();
        let (us, len) = h.try_take().unwrap();
        assert_eq!(len, 2_000_000);
        // 2 MB at 20 GB/s = 100 µs, not the 333 µs+latency a device read
        // would cost.
        assert!((us - 100.0).abs() < 5.0, "read took {us} µs");
        assert_eq!(f.stats().cache_hits, 1);
    }

    #[test]
    fn uncached_read_hits_device() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        let spec = LocalFsSpec {
            page_cache: false,
            ..LocalFsSpec::default()
        };
        let f = LocalFs::new(&ctx, dev, spec);
        let h = sim.spawn(async move {
            let fd = f.create("/u").await.unwrap();
            f.write(fd, &vec![1u8; 6_000_000]).await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.open("/u").await.unwrap();
            let before = ctx.now();
            f.read_to_end(fd).await.unwrap();
            let took = (ctx.now() - before).as_micros_f64();
            (took, f.stats().cache_misses)
        });
        sim.run();
        let (us, misses) = h.try_take().unwrap();
        // 6 MB at 6 GB/s = 1000 µs + 25 µs op latency.
        assert!((us - 1025.0).abs() < 5.0, "read took {us} µs");
        assert_eq!(misses, 1);
    }

    #[test]
    fn unlink_frees_space() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let free0 = f.free_bytes();
        let f2 = f.clone();
        let h = sim.spawn(async move {
            let fd = f2.create("/x").await.unwrap();
            f2.write(fd, &vec![0u8; 1_000_000]).await.unwrap();
            f2.close(fd).await.unwrap();
            let mid = f2.free_bytes();
            f2.unlink("/x").await.unwrap();
            (mid, f2.exists("/x"))
        });
        sim.run();
        let (mid, exists) = h.try_take().unwrap();
        assert!(mid < free0);
        assert!(!exists);
        assert_eq!(f.free_bytes(), free0);
    }

    #[test]
    fn stat_reports_size_and_extents() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move {
            f.mkdir_p("/d").await.unwrap();
            let fd = f.create("/d/f").await.unwrap();
            f.write(fd, &vec![0u8; 10_000]).await.unwrap();
            f.close(fd).await.unwrap();
            let fst = f.stat("/d/f").await.unwrap();
            let dst = f.stat("/d").await.unwrap();
            (fst, dst)
        });
        sim.run();
        let (fst, dst) = h.try_take().unwrap();
        assert_eq!(fst.size, 10_000);
        assert!(!fst.is_dir);
        assert!(fst.extents >= 1);
        assert!(dst.is_dir);
    }

    #[test]
    fn journal_flushes_on_close() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let f2 = f.clone();
        sim.spawn(async move {
            let fd = f2.create("/j").await.unwrap();
            f2.write(fd, b"data").await.unwrap();
            f2.close(fd).await.unwrap();
        });
        sim.run();
        let js = f.journal_stats();
        assert!(js.flushes >= 1);
        assert!(js.bytes_flushed > 0);
    }

    #[test]
    fn exclusive_flock_blocks_second_locker() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let order: std::rc::Rc<std::cell::RefCell<Vec<&'static str>>> = Default::default();
        {
            let f = f.clone();
            let ctx = sim.ctx();
            let order = order.clone();
            sim.spawn(async move {
                let fd = f.create("/lock").await.unwrap();
                f.close(fd).await.unwrap();
                f.flock("/lock", LockKind::Exclusive).await.unwrap();
                order.borrow_mut().push("p-locked");
                ctx.sleep(SimDuration::from_millis(5)).await;
                f.funlock("/lock", LockKind::Exclusive).await.unwrap();
            });
        }
        {
            let f = f.clone();
            let ctx = sim.ctx();
            let order = order.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_millis(1)).await;
                f.flock("/lock", LockKind::Shared).await.unwrap();
                order.borrow_mut().push("c-locked");
                f.funlock("/lock", LockKind::Shared).await.unwrap();
            });
        }
        assert!(sim.run().is_clean());
        assert_eq!(*order.borrow(), vec!["p-locked", "c-locked"]);
    }

    #[test]
    fn shared_locks_coexist() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move {
            let fd = f.create("/s").await.unwrap();
            f.close(fd).await.unwrap();
            f.flock("/s", LockKind::Shared).await.unwrap();
            let ok = f.try_flock("/s", LockKind::Shared).await.unwrap();
            let blocked = !f.try_flock("/s", LockKind::Exclusive).await.unwrap();
            (ok, blocked)
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (true, true));
    }

    #[test]
    fn io_error_probe_gates_operations() {
        let sim = Sim::new(0);
        let mut f = fs(&sim);
        let erroring = std::rc::Rc::new(std::cell::Cell::new(false));
        let e2 = erroring.clone();
        f.set_io_error_probe(std::rc::Rc::new(move || e2.get()));
        let h = sim.spawn(async move {
            let fd = f.create("/ok").await.unwrap();
            f.write(fd, b"healthy").await.unwrap();
            f.close(fd).await.unwrap();
            erroring.set(true);
            let during = (
                f.create("/new").await.err(),
                f.open("/ok").await.err(),
                f.stat("/ok").await.err(),
            );
            erroring.set(false);
            let fd = f.open("/ok").await.unwrap();
            let data = f.read_to_end(fd).await.unwrap();
            f.close(fd).await.unwrap();
            (during, data)
        });
        sim.run();
        let (during, data) = h.try_take().unwrap();
        assert_eq!(
            during,
            (Some(FsError::Io), Some(FsError::Io), Some(FsError::Io))
        );
        assert_eq!(data, Bytes::from_static(b"healthy"));
    }

    #[test]
    fn nospace_on_tiny_volume() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        let spec = LocalFsSpec {
            capacity_bytes: 64 * 4096,
            ..LocalFsSpec::default()
        };
        let f = LocalFs::new(&ctx, dev, spec);
        let h = sim.spawn(async move {
            let fd = f.create("/fat").await.unwrap();
            f.write(fd, &vec![0u8; 1_000_000]).await.err()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(FsError::NoSpace));
    }

    #[test]
    fn concurrent_writers_contend_on_device() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let mut hs = Vec::new();
        for i in 0..4 {
            let f = f.clone();
            let ctx = sim.ctx();
            hs.push(sim.spawn(async move {
                let fd = f.create(&format!("/w{i}")).await.unwrap();
                f.write(fd, &vec![0u8; 750_000]).await.unwrap();
                f.close(fd).await.unwrap();
                ctx.now().as_secs_f64() * 1e6
            }));
        }
        sim.run();
        // 4 × 0.75 MB concurrently on a 3 GB/s device ≈ 1 ms each.
        for h in hs {
            let t = h.try_take().unwrap();
            assert!(t > 900.0 && t < 1300.0, "finished at {t} µs");
        }
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn arbitrary_write_read_round_trips(
                chunks in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..10_000), 1..8)
            ) {
                let sim = Sim::new(0);
                let f = fs(&sim);
                let expected: Vec<u8> = chunks.concat();
                let h = sim.spawn(async move {
                    let fd = f.create("/p").await.unwrap();
                    for c in &chunks {
                        f.write(fd, c).await.unwrap();
                    }
                    f.close(fd).await.unwrap();
                    let fd = f.open("/p").await.unwrap();
                    let got = f.read_to_end(fd).await.unwrap();
                    f.close(fd).await.unwrap();
                    got
                });
                sim.run();
                prop_assert_eq!(h.try_take().unwrap(), Bytes::from(expected));
            }
        }
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;
    use bytes::Bytes;
    use cluster::{NodeSpec, NvmeDevice};
    use simcore::Sim;

    fn fs(sim: &Sim) -> LocalFs {
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        LocalFs::new(&ctx, dev, LocalFsSpec::default())
    }

    #[test]
    fn write_bytes_appends_zero_copy_segments() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let big = Bytes::from(vec![5u8; 100_000]);
        let big2 = big.clone();
        let h = sim.spawn(async move {
            let fd = f.create("/z").await.unwrap();
            f.write_bytes(fd, big2.clone()).await.unwrap();
            f.write_bytes(fd, big2).await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.open("/z").await.unwrap();
            let segs = f.read_segments(fd).await.unwrap();
            f.close(fd).await.unwrap();
            segs
        });
        sim.run();
        let segs = h.try_take().unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], big);
        // Zero-copy: the returned segment shares storage with the input.
        assert_eq!(segs[0].as_ptr(), big.as_ptr());
    }

    #[test]
    fn single_segment_read_is_zero_copy() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let payload = Bytes::from(vec![9u8; 64_000]);
        let p2 = payload.clone();
        let h = sim.spawn(async move {
            let fd = f.create("/one").await.unwrap();
            f.write_bytes(fd, p2).await.unwrap();
            f.close(fd).await.unwrap();
            let fd = f.open("/one").await.unwrap();
            let got = f.read_to_end(fd).await.unwrap();
            f.close(fd).await.unwrap();
            got
        });
        sim.run();
        let got = h.try_take().unwrap();
        assert_eq!(got.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn random_offset_rewrite_flattens_correctly() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move {
            let fd = f.create("/rw").await.unwrap();
            f.write(fd, b"aaaaaaaaaa").await.unwrap();
            f.close(fd).await.unwrap();
            // Re-open truncating and write in two segments, then patch.
            let fd = f.create("/rw").await.unwrap();
            f.write(fd, b"0123456789").await.unwrap();
            f.close(fd).await.unwrap();
            // Patch bytes 2..5 through a fresh write fd at offset 0 is
            // truncating; use append + manual offset instead: emulate a
            // splice by reopening for write and writing a shorter run.
            let fd = f.open("/rw").await.unwrap();
            let got = f.read_to_end(fd).await.unwrap();
            f.close(fd).await.unwrap();
            got
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Bytes::from_static(b"0123456789"));
    }
}

#[cfg(test)]
mod rename_tests {
    use super::*;
    use bytes::Bytes;
    use cluster::{NodeSpec, NvmeDevice};
    use simcore::Sim;

    fn fs(sim: &Sim) -> LocalFs {
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        LocalFs::new(&ctx, dev, LocalFsSpec::default())
    }

    #[test]
    fn rename_moves_content_atomically() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move {
            let fd = f.create("/x.tmp").await.unwrap();
            f.write(fd, b"payload").await.unwrap();
            f.close(fd).await.unwrap();
            f.rename("/x.tmp", "/x").await.unwrap();
            let gone = !f.exists("/x.tmp");
            let fd = f.open("/x").await.unwrap();
            let data = f.read_to_end(fd).await.unwrap();
            f.close(fd).await.unwrap();
            (gone, data)
        });
        sim.run();
        let (gone, data) = h.try_take().unwrap();
        assert!(gone);
        assert_eq!(data, Bytes::from_static(b"payload"));
    }

    #[test]
    fn rename_replaces_destination_and_frees_space() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let free0 = f.free_bytes();
        let f2 = f.clone();
        sim.spawn(async move {
            let fd = f2.create("/old").await.unwrap();
            f2.write(fd, &vec![1u8; 500_000]).await.unwrap();
            f2.close(fd).await.unwrap();
            let fd = f2.create("/new.tmp").await.unwrap();
            f2.write(fd, b"v2").await.unwrap();
            f2.close(fd).await.unwrap();
            f2.rename("/new.tmp", "/old").await.unwrap();
            let fd = f2.open("/old").await.unwrap();
            let data = f2.read_to_end(fd).await.unwrap();
            f2.close(fd).await.unwrap();
            assert_eq!(data, Bytes::from_static(b"v2"));
        });
        sim.run();
        // The replaced 500 kB file's extents were returned.
        let used = free0 - f.free_bytes();
        assert!(used < 10_000, "leaked {used} bytes");
        assert!(f.fsck().is_clean());
    }

    #[test]
    fn rename_missing_source_errors() {
        let sim = Sim::new(0);
        let f = fs(&sim);
        let h = sim.spawn(async move { f.rename("/ghost", "/dst").await.err() });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(FsError::NotFound));
    }
}
