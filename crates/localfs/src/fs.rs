//! The XFS-like node-local filesystem.
//!
//! Structure follows XFS at the level the experiments observe: a
//! block-addressed volume split into allocation groups with extent-based
//! allocation, inodes holding extent maps, hierarchical directories, a
//! metadata write-ahead journal, a page cache serving re-reads at memory
//! speed, and POSIX-style advisory `flock`.
//!
//! Time accounting: data writes are charged write-through on the node's
//! NVMe (the workflow measures POSIX write cost, as the paper does);
//! metadata mutations accumulate journal records flushed on
//! `fsync`/`close`; reads hit the page cache (memory-bandwidth cost) when
//! the content is resident, otherwise the device.

use simcore::intern::{intern, FxHashMap, FxHashSet, Symbol};
use std::cell::RefCell;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use cluster::NvmeDevice;
use simcore::sync::Notify;
use simcore::{Ctx, SimDuration};

use crate::alloc::{Extent, ExtentAllocator};
use crate::error::{FsError, FsResult};
use crate::journal::{Journal, RecordKind};

/// Filesystem tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct LocalFsSpec {
    /// Volume block size in bytes.
    pub block_size: u64,
    /// Number of allocation groups.
    pub ag_count: usize,
    /// Volume capacity in bytes.
    pub capacity_bytes: u64,
    /// On-disk size of one journal record.
    pub journal_record_bytes: u64,
    /// CPU cost of a metadata operation (path lookup, inode touch).
    pub meta_cpu: SimDuration,
    /// Cost of one flock/funlock call.
    pub lock_op_cost: SimDuration,
    /// Memory bandwidth used for page-cache hits, bytes/second.
    pub mem_bw: f64,
    /// Whether the page cache is enabled.
    pub page_cache: bool,
}

impl Default for LocalFsSpec {
    /// XFS on a Corona NVMe: 4 KiB blocks, 8 AGs, 3.5 TB volume.
    fn default() -> Self {
        LocalFsSpec {
            block_size: 4096,
            ag_count: 8,
            capacity_bytes: 3_500_000_000_000,
            journal_record_bytes: 512,
            meta_cpu: SimDuration::from_micros(2),
            lock_op_cost: SimDuration::from_micros(5),
            mem_bw: 20.0e9,
            page_cache: true,
        }
    }
}

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ino(u64);

/// Open file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(u64);

/// Open mode for [`LocalFs::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only.
    Read,
    /// Write-only, truncating.
    Write,
    /// Write-only, appending.
    Append,
}

/// flock kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Metadata returned by [`LocalFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: u64,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// True for directories.
    pub is_dir: bool,
    /// Number of extents backing the file.
    pub extents: usize,
}

/// Volume-level usage snapshot returned by [`LocalFs::statfs`] — the
/// `statfs(2)`-style free-space query the staging watermark logic polls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatVfs {
    /// Volume capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes not allocated to any extent.
    pub free_bytes: u64,
    /// Bytes allocated to file extents (block-granular).
    pub used_bytes: u64,
    /// Volume block size.
    pub block_size: u64,
}

/// Aggregate filesystem statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Files created.
    pub creates: u64,
    /// write() calls.
    pub writes: u64,
    /// read() calls.
    pub reads: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Page-cache hits.
    pub cache_hits: u64,
    /// Page-cache misses (device reads).
    pub cache_misses: u64,
    /// Files unlinked.
    pub unlinks: u64,
}

#[derive(Default)]
struct FlockState {
    readers: u32,
    writer: bool,
    queue: Notify,
}

enum InodeKind {
    File {
        /// File content as an ordered rope of segments. Sequential writes
        /// append zero-copy (`Bytes` clones); random-offset rewrites
        /// flatten to one segment.
        segments: Vec<Bytes>,
        /// Total content length (sum of segment lengths).
        size: u64,
        extents: Vec<Extent>,
        /// True when content is resident in the page cache.
        cached: bool,
    },
    Dir {
        children: FxHashMap<Symbol, Ino>,
    },
}

struct Inode {
    kind: InodeKind,
    lock: Rc<RefCell<FlockState>>,
}

impl Inode {
    fn new_file() -> Self {
        Inode {
            kind: InodeKind::File {
                segments: Vec::new(),
                size: 0,
                extents: Vec::new(),
                cached: false,
            },
            lock: Rc::default(),
        }
    }

    fn new_dir() -> Self {
        Inode {
            kind: InodeKind::Dir {
                children: FxHashMap::default(),
            },
            lock: Rc::default(),
        }
    }
}

struct OpenFile {
    ino: Ino,
    offset: u64,
    mode: OpenMode,
}

struct FsInner {
    inodes: FxHashMap<Ino, Inode>,
    next_ino: u64,
    root: Ino,
    fds: FxHashMap<Fd, OpenFile>,
    next_fd: u64,
    alloc: ExtentAllocator,
    journal: Journal,
    stats: FsStats,
    /// Blocks currently allocated to file extents, tracked independently
    /// of the allocator so fsck can cross-check the two accountings.
    used_blocks: u64,
    /// Unlinked (or rename-replaced) inodes still referenced by an open
    /// descriptor. POSIX semantics: the extents are freed only when the
    /// last descriptor closes, so a concurrent reader — e.g. a consumer
    /// mid-fetch while the staging evictor retires the frame — keeps a
    /// consistent view of the data.
    orphans: FxHashSet<Ino>,
    /// Host-side dentry cache: interned absolute directory path → inode.
    /// Directories are never unlinked or renamed (both refuse
    /// `IsDirectory`), so a cached entry can never go stale. This is a
    /// pure host-time optimisation — every operation still charges its
    /// `meta_cpu` sim cost — so it cannot perturb trajectories. The
    /// `RefCell` lets read-only lookups populate it.
    dcache: RefCell<FxHashMap<Symbol, Ino>>,
}

impl FsInner {
    /// Return extents to the allocator and the usage counter together.
    fn free_extents(&mut self, extents: &[Extent]) {
        self.used_blocks -= extents.iter().map(|e| e.len).sum::<u64>();
        self.alloc.free(extents);
    }

    /// Drop an inode whose last name just went away: free immediately
    /// when no descriptor references it, otherwise park it as an orphan
    /// until the last [`LocalFs::close`].
    fn remove_or_orphan(&mut self, ino: Ino) {
        if self.fds.values().any(|of| of.ino == ino) {
            self.orphans.insert(ino);
            return;
        }
        let node = self.inodes.remove(&ino).unwrap();
        if let InodeKind::File { extents, .. } = node.kind {
            self.free_extents(&extents);
        }
    }
}

/// A node-local XFS-like filesystem bound to one NVMe device.
#[derive(Clone)]
pub struct LocalFs {
    ctx: Ctx,
    dev: NvmeDevice,
    spec: LocalFsSpec,
    inner: Rc<RefCell<FsInner>>,
    io_probe: Option<Rc<dyn Fn() -> bool>>,
}

/// Split a path into `(parent directory, final name)` without
/// allocating. The directory part may retain interior empty components
/// ("a//b"); walkers filter those out.
fn dir_and_name(path: &str) -> (&str, &str) {
    let p = path.trim_matches('/');
    match p.rsplit_once('/') {
        Some((dir, name)) => (dir, name),
        None => ("", p),
    }
}

impl LocalFs {
    /// Create (format) a filesystem on `dev`.
    pub fn new(ctx: &Ctx, dev: NvmeDevice, spec: LocalFsSpec) -> Self {
        let total_blocks = spec.capacity_bytes / spec.block_size;
        let root = Ino(1);
        let mut inodes = FxHashMap::default();
        inodes.insert(root, Inode::new_dir());
        LocalFs {
            ctx: ctx.clone(),
            dev,
            spec,
            inner: Rc::new(RefCell::new(FsInner {
                inodes,
                next_ino: 2,
                root,
                fds: FxHashMap::default(),
                next_fd: 3, // 0,1,2 "reserved", POSIX-style
                alloc: ExtentAllocator::new(total_blocks, spec.ag_count),
                journal: Journal::new(spec.journal_record_bytes),
                stats: FsStats::default(),
                used_blocks: 0,
                orphans: FxHashSet::default(),
                dcache: RefCell::new(FxHashMap::default()),
            })),
            io_probe: None,
        }
    }

    /// Attach a device-error probe: while it returns `true`, operations
    /// that touch the device fail with [`FsError::Io`] (EIO), as a
    /// controller reset or failing NAND would surface. Used by the
    /// fault-injection layer; without a probe nothing changes.
    pub fn set_io_error_probe(&mut self, probe: Rc<dyn Fn() -> bool>) {
        self.io_probe = Some(probe);
    }

    fn device_check(&self) -> FsResult<()> {
        match &self.io_probe {
            Some(p) if p() => Err(FsError::Io),
            _ => Ok(()),
        }
    }

    /// The spec the filesystem was formatted with.
    pub fn spec(&self) -> LocalFsSpec {
        self.spec
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FsStats {
        self.inner.borrow().stats
    }

    /// Journal statistics.
    pub fn journal_stats(&self) -> crate::journal::JournalStats {
        self.inner.borrow().journal.stats()
    }

    /// Free bytes remaining.
    pub fn free_bytes(&self) -> u64 {
        self.inner.borrow().alloc.free_blocks() * self.spec.block_size
    }

    /// `statfs(2)`-style volume usage query. Zero sim-time cost: the
    /// superblock counters are in memory, as on a real kernel, and the
    /// staging watermark logic polls this on every admission check.
    pub fn statvfs(&self) -> StatVfs {
        let inner = self.inner.borrow();
        StatVfs {
            // Whole blocks only, like statvfs(2)'s f_blocks × f_frsize:
            // a device tail smaller than one block is not allocatable.
            capacity_bytes: (self.spec.capacity_bytes / self.spec.block_size)
                * self.spec.block_size,
            free_bytes: inner.alloc.free_blocks() * self.spec.block_size,
            used_bytes: inner.used_blocks * self.spec.block_size,
            block_size: self.spec.block_size,
        }
    }

    /// [`LocalFs::statvfs`] as a syscall: charges one metadata-op CPU
    /// cost, for callers modelling an actual `statfs(2)` round trip.
    pub async fn statfs(&self) -> StatVfs {
        self.ctx.sleep(self.spec.meta_cpu).await;
        self.statvfs()
    }

    /// Snapshot the structures fsck needs: per-inode entries, total
    /// blocks, allocator-reported free blocks, the block size, and the
    /// superblock's independent used-blocks counter.
    pub(crate) fn fsck_snapshot(&self) -> (Vec<crate::fsck::FsckEntry>, u64, u64, u64, u64) {
        let inner = self.inner.borrow();
        let mut entries = Vec::new();
        // Reachability: which inodes do directory entries reference?
        let mut referenced: Vec<Ino> = vec![inner.root];
        for node in inner.inodes.values() {
            if let InodeKind::Dir { children } = &node.kind {
                referenced.extend(children.values().copied());
            }
        }
        // Dangling dirents: references to inodes that do not exist.
        for &ino in &referenced {
            if !inner.inodes.contains_key(&ino) {
                entries.push(crate::fsck::FsckEntry {
                    ino: ino.0,
                    is_dir: false,
                    size: 0,
                    extents: Vec::new(),
                    dangling: true,
                });
            }
        }
        for (&ino, node) in &inner.inodes {
            match &node.kind {
                InodeKind::File { size, extents, .. } => {
                    entries.push(crate::fsck::FsckEntry {
                        ino: ino.0,
                        is_dir: false,
                        size: *size,
                        extents: extents.iter().map(|e| (e.start, e.len)).collect(),
                        dangling: false,
                    });
                }
                InodeKind::Dir { .. } => entries.push(crate::fsck::FsckEntry {
                    ino: ino.0,
                    is_dir: true,
                    size: 0,
                    extents: Vec::new(),
                    dangling: false,
                }),
            }
        }
        let total_blocks = self.spec.capacity_bytes / self.spec.block_size;
        (
            entries,
            total_blocks,
            inner.alloc.free_blocks(),
            self.spec.block_size,
            inner.used_blocks,
        )
    }

    /// Resolve a directory path, consulting the dentry cache first. A
    /// miss walks component-by-component and caches the result (only
    /// when it is actually a directory — files can be renamed away, so
    /// a file-terminated prefix is returned uncached for the caller to
    /// reject).
    fn resolve_dir(inner: &FsInner, dir: &str) -> FsResult<Ino> {
        if dir.is_empty() {
            return Ok(inner.root);
        }
        let sym = intern(dir);
        if let Some(&ino) = inner.dcache.borrow().get(&sym) {
            return Ok(ino);
        }
        let mut cur = inner.root;
        for comp in dir.split('/').filter(|c| !c.is_empty()) {
            let node = inner.inodes.get(&cur).ok_or(FsError::NotFound)?;
            match &node.kind {
                InodeKind::Dir { children } => {
                    cur = *children.get(&intern(comp)).ok_or(FsError::NotFound)?;
                }
                InodeKind::File { .. } => return Err(FsError::NotDirectory),
            }
        }
        if matches!(
            inner.inodes.get(&cur).map(|n| &n.kind),
            Some(InodeKind::Dir { .. })
        ) {
            inner.dcache.borrow_mut().insert(sym, cur);
        }
        Ok(cur)
    }

    fn lookup(inner: &FsInner, path: &str) -> FsResult<Ino> {
        let (dir, name) = dir_and_name(path);
        if name.is_empty() {
            return Ok(inner.root);
        }
        let parent = Self::resolve_dir(inner, dir)?;
        let node = inner.inodes.get(&parent).ok_or(FsError::NotFound)?;
        match &node.kind {
            InodeKind::Dir { children } => children
                .get(&intern(name))
                .copied()
                .ok_or(FsError::NotFound),
            InodeKind::File { .. } => Err(FsError::NotDirectory),
        }
    }

    fn lookup_parent<'p>(inner: &FsInner, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (dir, name) = dir_and_name(path);
        if name.is_empty() {
            return Err(FsError::AlreadyExists);
        }
        let parent = Self::resolve_dir(inner, dir)?;
        Ok((parent, name))
    }

    /// Create every missing directory along `path`.
    pub async fn mkdir_p(&self, path: &str) -> FsResult<()> {
        self.device_check()?;
        self.ctx.sleep(self.spec.meta_cpu).await;
        let mut inner = self.inner.borrow_mut();
        let p = path.trim_matches('/');
        // Fast path: the whole chain was seen before, so every directory
        // already exists and no journal records would be appended.
        if !p.is_empty() && inner.dcache.borrow().contains_key(&intern(p)) {
            return Ok(());
        }
        let mut cur = inner.root;
        for comp in p.split('/').filter(|c| !c.is_empty()) {
            let next = {
                let node = inner.inodes.get(&cur).ok_or(FsError::NotFound)?;
                match &node.kind {
                    InodeKind::Dir { children } => children.get(&intern(comp)).copied(),
                    InodeKind::File { .. } => return Err(FsError::NotDirectory),
                }
            };
            cur = match next {
                Some(ino) => ino,
                None => {
                    let ino = Ino(inner.next_ino);
                    inner.next_ino += 1;
                    inner.inodes.insert(ino, Inode::new_dir());
                    match &mut inner.inodes.get_mut(&cur).unwrap().kind {
                        InodeKind::Dir { children } => {
                            children.insert(intern(comp), ino);
                        }
                        InodeKind::File { .. } => unreachable!(),
                    }
                    inner.journal.append(RecordKind::DirEntry);
                    inner.journal.append(RecordKind::InodeUpdate);
                    ino
                }
            };
        }
        if !p.is_empty() {
            inner.dcache.borrow_mut().insert(intern(p), cur);
        }
        Ok(())
    }

    /// Create (or truncate) a file for writing.
    pub async fn create(&self, path: &str) -> FsResult<Fd> {
        self.device_check()?;
        self.ctx.sleep(self.spec.meta_cpu).await;
        let mut inner = self.inner.borrow_mut();
        let (parent, name) = Self::lookup_parent(&inner, path)?;
        let existing = {
            let node = inner.inodes.get(&parent).ok_or(FsError::NotFound)?;
            match &node.kind {
                InodeKind::Dir { children } => children.get(&intern(name)).copied(),
                InodeKind::File { .. } => return Err(FsError::NotDirectory),
            }
        };
        let ino = match existing {
            Some(ino) => {
                // Truncate.
                let freed = {
                    let node = inner.inodes.get_mut(&ino).unwrap();
                    match &mut node.kind {
                        InodeKind::File {
                            segments,
                            size,
                            extents,
                            cached,
                        } => {
                            segments.clear();
                            *size = 0;
                            *cached = false;
                            std::mem::take(extents)
                        }
                        InodeKind::Dir { .. } => return Err(FsError::IsDirectory),
                    }
                };
                inner.free_extents(&freed);
                inner.journal.append(RecordKind::InodeUpdate);
                ino
            }
            None => {
                let ino = Ino(inner.next_ino);
                inner.next_ino += 1;
                inner.inodes.insert(ino, Inode::new_file());
                match &mut inner.inodes.get_mut(&parent).unwrap().kind {
                    InodeKind::Dir { children } => {
                        children.insert(intern(name), ino);
                    }
                    InodeKind::File { .. } => unreachable!(),
                }
                inner.journal.append(RecordKind::DirEntry);
                inner.journal.append(RecordKind::InodeUpdate);
                inner.stats.creates += 1;
                ino
            }
        };
        let fd = Fd(inner.next_fd);
        inner.next_fd += 1;
        inner.fds.insert(
            fd,
            OpenFile {
                ino,
                offset: 0,
                mode: OpenMode::Write,
            },
        );
        Ok(fd)
    }

    /// Open an existing file read-only.
    pub async fn open(&self, path: &str) -> FsResult<Fd> {
        self.open_with(path, OpenMode::Read).await
    }

    /// Open with an explicit mode. `Write`/`Append` require the file to
    /// exist (use [`LocalFs::create`] otherwise).
    pub async fn open_with(&self, path: &str, mode: OpenMode) -> FsResult<Fd> {
        self.device_check()?;
        self.ctx.sleep(self.spec.meta_cpu).await;
        let mut inner = self.inner.borrow_mut();
        let ino = Self::lookup(&inner, path)?;
        let (size, is_dir) = match &inner.inodes[&ino].kind {
            InodeKind::File { size, .. } => (*size, false),
            InodeKind::Dir { .. } => (0, true),
        };
        if is_dir {
            return Err(FsError::IsDirectory);
        }
        let offset = match mode {
            OpenMode::Append => size,
            _ => 0,
        };
        let fd = Fd(inner.next_fd);
        inner.next_fd += 1;
        inner.fds.insert(fd, OpenFile { ino, offset, mode });
        Ok(fd)
    }

    /// Write `data` at the descriptor's offset (write-through to the
    /// device). Returns the number of bytes written.
    pub async fn write(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        self.write_bytes(fd, Bytes::copy_from_slice(data)).await?;
        Ok(data.len())
    }

    /// Zero-copy write: the `Bytes` is appended (or spliced) into the
    /// file's segment rope without copying its contents. Sequential
    /// appends — the workflow's pattern — stay O(1) in memory traffic.
    pub async fn write_bytes(&self, fd: Fd, data: Bytes) -> FsResult<()> {
        self.device_check()?;
        let bytes = data.len() as u64;
        {
            let mut inner = self.inner.borrow_mut();
            let of = inner.fds.get(&fd).ok_or(FsError::BadDescriptor)?;
            if of.mode == OpenMode::Read {
                return Err(FsError::BadDescriptor);
            }
            let ino = of.ino;
            let offset = of.offset;
            let end = offset + bytes;
            // Grow the extent map to cover `end`.
            let cur_blocks = match &inner.inodes[&ino].kind {
                InodeKind::File { extents, .. } => extents.iter().map(|e| e.len).sum::<u64>(),
                InodeKind::Dir { .. } => return Err(FsError::IsDirectory),
            };
            let need_blocks = end.div_ceil(self.spec.block_size);
            if need_blocks > cur_blocks {
                let new = inner.alloc.alloc(need_blocks - cur_blocks)?;
                inner.used_blocks += need_blocks - cur_blocks;
                let n_new = new.len();
                match &mut inner.inodes.get_mut(&ino).unwrap().kind {
                    InodeKind::File { extents, .. } => extents.extend(new),
                    InodeKind::Dir { .. } => unreachable!(),
                }
                for _ in 0..n_new {
                    inner.journal.append(RecordKind::ExtentMap);
                }
            }
            match &mut inner.inodes.get_mut(&ino).unwrap().kind {
                InodeKind::File {
                    segments,
                    size,
                    cached,
                    ..
                } => {
                    if offset == *size {
                        // Sequential append: zero-copy.
                        segments.push(data);
                        *size = end;
                    } else {
                        // Random-offset rewrite: flatten and splice.
                        let mut flat = BytesMut::with_capacity((*size).max(end) as usize);
                        for seg in segments.iter() {
                            flat.extend_from_slice(seg);
                        }
                        if (flat.len() as u64) < end {
                            flat.resize(end as usize, 0);
                        }
                        flat[offset as usize..end as usize].copy_from_slice(&data);
                        *size = flat.len() as u64;
                        *segments = vec![flat.freeze()];
                    }
                    *cached = self.spec.page_cache;
                }
                InodeKind::Dir { .. } => unreachable!(),
            }
            inner.fds.get_mut(&fd).unwrap().offset = end;
            inner.journal.append(RecordKind::InodeUpdate);
            inner.stats.writes += 1;
            inner.stats.bytes_written += bytes;
        }
        // Charge the device outside the borrow.
        self.dev.write(bytes).await;
        Ok(())
    }

    /// Collect the byte range `offset..offset+take` from a segment rope,
    /// zero-copy when the range lies inside a single segment.
    fn gather(segments: &[Bytes], offset: u64, take: u64) -> Bytes {
        if take == 0 {
            return Bytes::new();
        }
        let mut base = 0u64;
        let mut parts: Vec<Bytes> = Vec::new();
        let mut remaining = take;
        let mut pos = offset;
        for seg in segments {
            let seg_len = seg.len() as u64;
            let seg_end = base + seg_len;
            if pos < seg_end && remaining > 0 {
                let start_in = (pos - base) as usize;
                let take_in = ((seg_len - (pos - base)).min(remaining)) as usize;
                parts.push(seg.slice(start_in..start_in + take_in));
                pos += take_in as u64;
                remaining -= take_in as u64;
            }
            base = seg_end;
            if remaining == 0 {
                break;
            }
        }
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            let mut out = BytesMut::with_capacity(take as usize);
            for p in parts {
                out.extend_from_slice(&p);
            }
            out.freeze()
        }
    }

    /// Read up to `len` bytes from the descriptor's offset.
    pub async fn read(&self, fd: Fd, len: u64) -> FsResult<Bytes> {
        self.device_check()?;
        let (slice, from_cache) = {
            let mut inner = self.inner.borrow_mut();
            let of = inner.fds.get(&fd).ok_or(FsError::BadDescriptor)?;
            let ino = of.ino;
            let offset = of.offset;
            let (slice, cached) = match &inner.inodes[&ino].kind {
                InodeKind::File {
                    segments,
                    size,
                    cached,
                    ..
                } => {
                    let end = offset.saturating_add(len).min(*size);
                    let start = offset.min(end);
                    (Self::gather(segments, start, end - start), *cached)
                }
                InodeKind::Dir { .. } => return Err(FsError::IsDirectory),
            };
            let n = slice.len() as u64;
            inner.fds.get_mut(&fd).unwrap().offset = offset + n;
            inner.stats.reads += 1;
            inner.stats.bytes_read += n;
            if cached {
                inner.stats.cache_hits += 1;
            } else {
                inner.stats.cache_misses += 1;
            }
            (slice, cached)
        };
        let n = slice.len() as u64;
        if n > 0 {
            if from_cache {
                self.ctx
                    .sleep(SimDuration::from_secs_f64(n as f64 / self.spec.mem_bw))
                    .await;
            } else {
                self.dev.read(n).await;
                // Populate the cache for subsequent readers.
                if self.spec.page_cache {
                    let mut inner = self.inner.borrow_mut();
                    // The descriptor may have been closed during the await.
                    if let Some(ino) = inner.fds.get(&fd).map(|of| of.ino) {
                        if let Some(node) = inner.inodes.get_mut(&ino) {
                            if let InodeKind::File { cached, .. } = &mut node.kind {
                                *cached = true;
                            }
                        }
                    }
                }
            }
        }
        Ok(slice)
    }

    /// Zero-copy read of the remainder of the file: returns the segment
    /// rope (clones of the stored `Bytes`), advancing the offset to EOF
    /// and charging the same device/cache time as [`LocalFs::read`].
    pub async fn read_segments(&self, fd: Fd) -> FsResult<Vec<Bytes>> {
        self.device_check()?;
        let (parts, n, from_cache) = {
            let mut inner = self.inner.borrow_mut();
            let of = inner.fds.get(&fd).ok_or(FsError::BadDescriptor)?;
            let ino = of.ino;
            let offset = of.offset;
            let (parts, cached) = match &inner.inodes[&ino].kind {
                InodeKind::File {
                    segments,
                    size,
                    cached,
                    ..
                } => {
                    let mut parts = Vec::new();
                    let mut base = 0u64;
                    for seg in segments {
                        let seg_len = seg.len() as u64;
                        let seg_end = base + seg_len;
                        if seg_end > offset {
                            let start_in = offset.saturating_sub(base) as usize;
                            parts.push(seg.slice(start_in..));
                        }
                        base = seg_end;
                    }
                    let _ = size;
                    (parts, *cached)
                }
                InodeKind::Dir { .. } => return Err(FsError::IsDirectory),
            };
            let n: u64 = parts.iter().map(|p| p.len() as u64).sum();
            inner.fds.get_mut(&fd).unwrap().offset = offset + n;
            inner.stats.reads += 1;
            inner.stats.bytes_read += n;
            if cached {
                inner.stats.cache_hits += 1;
            } else {
                inner.stats.cache_misses += 1;
            }
            (parts, n, cached)
        };
        if n > 0 {
            if from_cache {
                self.ctx
                    .sleep(SimDuration::from_secs_f64(n as f64 / self.spec.mem_bw))
                    .await;
            } else {
                self.dev.read(n).await;
            }
        }
        Ok(parts)
    }

    /// Read the whole file from the current offset.
    pub async fn read_to_end(&self, fd: Fd) -> FsResult<Bytes> {
        self.read(fd, u64::MAX).await
    }

    /// Flush the metadata journal.
    pub async fn fsync(&self, fd: Fd) -> FsResult<()> {
        if !self.inner.borrow().fds.contains_key(&fd) {
            return Err(FsError::BadDescriptor);
        }
        self.flush_journal().await;
        Ok(())
    }

    async fn flush_journal(&self) {
        // Move the journal out while flushing so the device await does not
        // hold the RefCell borrow.
        let mut journal = {
            let mut inner = self.inner.borrow_mut();
            std::mem::replace(
                &mut inner.journal,
                Journal::new(self.spec.journal_record_bytes),
            )
        };
        journal.flush(&self.dev).await;
        // Merge back, preserving any records appended during the flush.
        let mut inner = self.inner.borrow_mut();
        let newer = std::mem::replace(&mut inner.journal, journal);
        for _ in 0..newer.stats().records {
            inner.journal.append(RecordKind::InodeUpdate);
        }
    }

    /// Close a descriptor, flushing journaled metadata (matching the
    /// workflow's write-then-close pattern).
    pub async fn close(&self, fd: Fd) -> FsResult<()> {
        let was_write = {
            let mut inner = self.inner.borrow_mut();
            let of = inner.fds.remove(&fd).ok_or(FsError::BadDescriptor)?;
            // Reap an orphaned inode once its last descriptor closes.
            if inner.orphans.contains(&of.ino) && !inner.fds.values().any(|o| o.ino == of.ino) {
                inner.orphans.remove(&of.ino);
                let node = inner.inodes.remove(&of.ino).unwrap();
                if let InodeKind::File { extents, .. } = node.kind {
                    inner.free_extents(&extents);
                }
                inner.journal.append(RecordKind::ExtentMap);
            }
            of.mode != OpenMode::Read
        };
        if was_write {
            self.flush_journal().await;
        }
        Ok(())
    }

    /// Atomically rename a file (the classic write-to-temp-then-rename
    /// publication pattern). The destination is replaced if it exists.
    pub async fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        self.device_check()?;
        self.ctx.sleep(self.spec.meta_cpu).await;
        let mut inner = self.inner.borrow_mut();
        // Detach the source dirent.
        let (src_parent, src_name) = Self::lookup_parent(&inner, from)?;
        let ino = {
            let node = inner.inodes.get(&src_parent).ok_or(FsError::NotFound)?;
            match &node.kind {
                InodeKind::Dir { children } => {
                    *children.get(&intern(src_name)).ok_or(FsError::NotFound)?
                }
                InodeKind::File { .. } => return Err(FsError::NotDirectory),
            }
        };
        if matches!(inner.inodes[&ino].kind, InodeKind::Dir { .. }) {
            return Err(FsError::IsDirectory);
        }
        let (dst_parent, dst_name) = Self::lookup_parent(&inner, to)?;
        let dst_name = intern(dst_name);
        let src_name = intern(src_name);
        // Replace any existing destination, freeing its extents.
        let replaced = {
            let node = inner.inodes.get(&dst_parent).ok_or(FsError::NotFound)?;
            match &node.kind {
                InodeKind::Dir { children } => children.get(&dst_name).copied(),
                InodeKind::File { .. } => return Err(FsError::NotDirectory),
            }
        };
        if let Some(old) = replaced {
            if matches!(inner.inodes[&old].kind, InodeKind::Dir { .. }) {
                return Err(FsError::IsDirectory);
            }
            inner.remove_or_orphan(old);
        }
        match &mut inner.inodes.get_mut(&src_parent).unwrap().kind {
            InodeKind::Dir { children } => {
                children.remove(&src_name);
            }
            InodeKind::File { .. } => unreachable!(),
        }
        match &mut inner.inodes.get_mut(&dst_parent).unwrap().kind {
            InodeKind::Dir { children } => {
                children.insert(dst_name, ino);
            }
            InodeKind::File { .. } => unreachable!(),
        }
        inner.journal.append(RecordKind::DirEntry);
        inner.journal.append(RecordKind::DirEntry);
        Ok(())
    }

    /// Remove a file, freeing its extents.
    pub async fn unlink(&self, path: &str) -> FsResult<()> {
        self.device_check()?;
        self.ctx.sleep(self.spec.meta_cpu).await;
        let mut inner = self.inner.borrow_mut();
        let (parent, name) = Self::lookup_parent(&inner, path)?;
        let ino = {
            let node = inner.inodes.get(&parent).ok_or(FsError::NotFound)?;
            match &node.kind {
                InodeKind::Dir { children } => {
                    *children.get(&intern(name)).ok_or(FsError::NotFound)?
                }
                InodeKind::File { .. } => return Err(FsError::NotDirectory),
            }
        };
        if matches!(inner.inodes[&ino].kind, InodeKind::Dir { .. }) {
            return Err(FsError::IsDirectory);
        }
        match &mut inner.inodes.get_mut(&parent).unwrap().kind {
            InodeKind::Dir { children } => {
                children.remove(&intern(name));
            }
            InodeKind::File { .. } => unreachable!(),
        }
        inner.remove_or_orphan(ino);
        inner.journal.append(RecordKind::DirEntry);
        inner.journal.append(RecordKind::ExtentMap);
        inner.stats.unlinks += 1;
        Ok(())
    }

    /// Stat a path.
    pub async fn stat(&self, path: &str) -> FsResult<Stat> {
        self.device_check()?;
        self.ctx.sleep(self.spec.meta_cpu).await;
        let inner = self.inner.borrow();
        let ino = Self::lookup(&inner, path)?;
        let st = match &inner.inodes[&ino].kind {
            InodeKind::File { size, extents, .. } => Stat {
                ino: ino.0,
                size: *size,
                is_dir: false,
                extents: extents.len(),
            },
            InodeKind::Dir { .. } => Stat {
                ino: ino.0,
                size: 0,
                is_dir: true,
                extents: 0,
            },
        };
        Ok(st)
    }

    /// Zero-cost existence probe (used by tests; real probes go through
    /// [`LocalFs::stat`]).
    pub fn exists(&self, path: &str) -> bool {
        Self::lookup(&self.inner.borrow(), path).is_ok()
    }

    /// Acquire an advisory lock on `path`, blocking while incompatible
    /// locks are held. The file must exist.
    pub async fn flock(&self, path: &str, kind: LockKind) -> FsResult<()> {
        self.ctx.sleep(self.spec.lock_op_cost).await;
        let lock = {
            let inner = self.inner.borrow();
            let ino = Self::lookup(&inner, path)?;
            inner.inodes[&ino].lock.clone()
        };
        loop {
            let wait = {
                let mut st = lock.borrow_mut();
                let compatible = match kind {
                    LockKind::Shared => !st.writer,
                    LockKind::Exclusive => !st.writer && st.readers == 0,
                };
                if compatible {
                    match kind {
                        LockKind::Shared => st.readers += 1,
                        LockKind::Exclusive => st.writer = true,
                    }
                    return Ok(());
                }
                st.queue.clone()
            };
            wait.wait().await;
        }
    }

    /// Non-blocking lock attempt; returns whether the lock was taken.
    pub async fn try_flock(&self, path: &str, kind: LockKind) -> FsResult<bool> {
        self.ctx.sleep(self.spec.lock_op_cost).await;
        let inner = self.inner.borrow();
        let ino = Self::lookup(&inner, path)?;
        let mut st = inner.inodes[&ino].lock.borrow_mut();
        let compatible = match kind {
            LockKind::Shared => !st.writer,
            LockKind::Exclusive => !st.writer && st.readers == 0,
        };
        if compatible {
            match kind {
                LockKind::Shared => st.readers += 1,
                LockKind::Exclusive => st.writer = true,
            }
        }
        Ok(compatible)
    }

    /// Release a previously acquired lock.
    pub async fn funlock(&self, path: &str, kind: LockKind) -> FsResult<()> {
        self.ctx.sleep(self.spec.lock_op_cost).await;
        let inner = self.inner.borrow();
        let ino = Self::lookup(&inner, path)?;
        let mut st = inner.inodes[&ino].lock.borrow_mut();
        match kind {
            LockKind::Shared => {
                assert!(st.readers > 0, "funlock without flock");
                st.readers -= 1;
            }
            LockKind::Exclusive => {
                assert!(st.writer, "funlock without flock");
                st.writer = false;
            }
        }
        st.queue.notify_all();
        Ok(())
    }
}
