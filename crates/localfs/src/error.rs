//! Filesystem error type (POSIX-errno flavoured).

/// Errors returned by [`crate::LocalFs`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Path component or file does not exist (ENOENT).
    NotFound,
    /// File already exists where exclusivity was required (EEXIST).
    AlreadyExists,
    /// No free extents large enough (ENOSPC).
    NoSpace,
    /// Operated on a directory where a file was required (EISDIR).
    IsDirectory,
    /// A non-final path component is not a directory (ENOTDIR).
    NotDirectory,
    /// File descriptor is stale or of the wrong mode (EBADF).
    BadDescriptor,
    /// Directory not empty on rmdir (ENOTEMPTY).
    NotEmpty,
    /// Device-level I/O error (EIO) — injected while the backing NVMe is
    /// in a fault window.
    Io,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsError::NotFound => "no such file or directory",
            FsError::AlreadyExists => "file exists",
            FsError::NoSpace => "no space left on device",
            FsError::IsDirectory => "is a directory",
            FsError::NotDirectory => "not a directory",
            FsError::BadDescriptor => "bad file descriptor",
            FsError::NotEmpty => "directory not empty",
            FsError::Io => "input/output error",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// Convenience alias.
pub type FsResult<T> = Result<T, FsError>;
