//! Criterion view of the synchronization ablation: simulated
//! consumption idle time under DYAD's multi-protocol sync vs forcing the
//! KVS wait on every frame. Criterion here measures the harness
//! wall-clock; the interesting output is the printed simulated-idle
//! comparison asserted by the bench body.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mdflow::calibration::Calibration;
use mdflow::prelude::*;
use mdflow::report::reduce_run;
use mdflow::runner::run_once;

fn bench_sync_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_ablation");
    g.sample_size(10);
    let cal = Calibration::quiet();
    let split = Placement::Split { pairs_per_node: 8 };
    let warm_wf = WorkflowConfig::new(Solution::Dyad, 4, split).with_frames(16);
    let mut cold_wf = warm_wf.clone();
    cold_wf.dyad_warm_sync = false;

    // Sanity-check the ablation effect once, outside the timing loop.
    let warm = reduce_run(&warm_wf, &run_once(&warm_wf, &cal, 1));
    let cold = reduce_run(&cold_wf, &run_once(&cold_wf, &cal, 1));
    println!(
        "simulated consumption idle: multi-protocol {:.3} ms vs KVS-only {:.3} ms",
        warm.consumption.idle * 1e3,
        cold.consumption.idle * 1e3
    );
    assert!(
        warm.consumption.idle <= cold.consumption.idle,
        "multi-protocol sync must not be slower than KVS-only"
    );

    g.bench_function("multi_protocol", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_once(&warm_wf, &cal, seed).events)
        })
    });
    g.bench_function("kvs_only", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_once(&cold_wf, &cal, seed).events)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sync_ablation);
criterion_main!(benches);
