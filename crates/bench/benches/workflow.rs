//! Wall-clock cost of simulating one workflow repetition per solution —
//! how fast the reproduction itself runs (simulated seconds per real
//! second), independent of the simulated-time results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mdflow::calibration::Calibration;
use mdflow::prelude::*;
use mdflow::runner::run_once;

fn bench_workflows(c: &mut Criterion) {
    let mut g = c.benchmark_group("workflow_run_once");
    g.sample_size(10);
    let cal = Calibration::corona();
    let cases = [
        (
            "dyad_1node_2p",
            WorkflowConfig::new(Solution::Dyad, 2, Placement::SingleNode).with_frames(16),
        ),
        (
            "xfs_1node_2p",
            WorkflowConfig::new(Solution::Xfs, 2, Placement::SingleNode).with_frames(16),
        ),
        (
            "dyad_2node_8p",
            WorkflowConfig::new(Solution::Dyad, 8, Placement::Split { pairs_per_node: 8 })
                .with_frames(16),
        ),
        (
            "lustre_2node_8p",
            WorkflowConfig::new(Solution::Lustre, 8, Placement::Split { pairs_per_node: 8 })
                .with_frames(16),
        ),
    ];
    for (name, wf) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &wf, |b, wf| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(wf, &cal, seed).events)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_workflows);
criterion_main!(benches);
