//! Criterion benches for the simulator hot paths reworked in the
//! virtual-time overhaul: cancellable timers under churn, fair-share
//! bandwidth fan-in, the interned instrumentation recorder, and a
//! figure-6-scale end-to-end run. These are the statistically-sampled
//! counterparts of the `hotpath` binary (which measures the same grid in
//! single shots for CI's perf-smoke check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use instrument::Recorder;
use mdflow::calibration::Calibration;
use mdflow::prelude::*;
use mdflow::runner::run_once;
use simcore::resource::SharedBandwidth;
use simcore::{timeout, Sim, SimDuration};

/// Timer churn with cancellation: every iteration arms a far-future
/// sleep that a short timeout cancels, exercising the tombstone +
/// compaction path rather than the fire path.
fn bench_timer_cancellation(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_timers");
    const TASKS: u64 = 100;
    const ITERS: u64 = 50;
    g.throughput(Throughput::Elements(TASKS * ITERS));
    g.bench_function("cancelled_timers_5k", |b| {
        b.iter(|| {
            let sim = Sim::new(0);
            for _ in 0..TASKS {
                let ctx = sim.ctx();
                sim.spawn(async move {
                    for _ in 0..ITERS {
                        let _ = timeout(
                            &ctx,
                            SimDuration::from_nanos(10),
                            ctx.sleep(SimDuration::from_secs(1)),
                        )
                        .await;
                    }
                });
            }
            let report = sim.run();
            assert!(report.is_clean());
            black_box(report.events_processed)
        })
    });
    g.finish();
}

/// Fair-share link with heavy fan-in: n flows of staggered sizes join
/// and leave, so the O(log n) virtual-finish-tag model is exercised
/// through constant membership change, not a static flow set.
fn bench_shared_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_bandwidth");
    for flows in [64u64, 512] {
        g.throughput(Throughput::Elements(flows));
        g.bench_with_input(BenchmarkId::new("fan_in", flows), &flows, |b, &flows| {
            b.iter(|| {
                let sim = Sim::new(0);
                let ctx = sim.ctx();
                let bw = SharedBandwidth::new(&ctx, 1e9);
                for i in 0..flows {
                    let bw = bw.clone();
                    let ctx = ctx.clone();
                    sim.spawn(async move {
                        ctx.sleep(SimDuration::from_nanos(i * 100)).await;
                        bw.transfer_counted(1_000_000 + i * 1000).await;
                    });
                }
                let report = sim.run();
                assert!(report.is_clean());
                black_box(bw.stats().bytes_moved)
            })
        });
    }
    g.finish();
}

/// Recorder region/annotate churn: nested regions with metric
/// annotations on every visit — the path that used to allocate a String
/// per region entry and now runs on interned symbols.
fn bench_recorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_recorder");
    const VISITS: u64 = 1000;
    g.throughput(Throughput::Elements(VISITS));
    g.bench_function("region_annotate_1k", |b| {
        b.iter(|| {
            let sim = Sim::new(0);
            let ctx = sim.ctx();
            let rec = Recorder::new(&ctx);
            sim.spawn(async move {
                for i in 0..VISITS {
                    let outer = rec.region("produce");
                    {
                        let _g = rec.region("write");
                        rec.annotate("bytes", 4096.0);
                        ctx.sleep(SimDuration::from_nanos(5)).await;
                    }
                    {
                        let _g = rec.region("notify");
                        rec.annotate("msgs", 1.0);
                    }
                    drop(outer);
                    black_box(i);
                }
                black_box(rec.finish())
            });
            let report = sim.run();
            assert!(report.is_clean());
        })
    });
    g.finish();
}

/// Figure-6-scale end-to-end run (scaled down for sampling): the full
/// workflow stack over the overhauled executor, link model and recorder.
fn bench_fig6_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_fig6");
    g.sample_size(10);
    let cal = Calibration::corona();
    for (name, wf) in [
        (
            "dyad_64p",
            WorkflowConfig::new(Solution::Dyad, 64, Placement::Split { pairs_per_node: 8 })
                .with_frames(8),
        ),
        (
            "lustre_64p",
            WorkflowConfig::new(Solution::Lustre, 64, Placement::Split { pairs_per_node: 8 })
                .with_frames(8),
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &wf, |b, wf| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(wf, &cal, seed).makespan)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_timer_cancellation,
    bench_shared_bandwidth,
    bench_recorder,
    bench_fig6_scale
);
criterion_main!(benches);
