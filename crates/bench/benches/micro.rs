//! Microbenchmarks of the substrates: frame codec, analytics kernels,
//! the discrete-event engine, the filesystems and the KVS. These measure
//! *wall-clock* performance of the reproduction's own code (the
//! simulators), complementing the simulated-time experiment binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use analytics::ContactMatrix;
use bytes::Bytes;
use cluster::{Cluster, ClusterSpec, NodeId, NodeSpec, NvmeDevice};
use localfs::{LocalFs, LocalFsSpec};
use mdsim::{Frame, FrameTemplate, Model};
use simcore::resource::SharedBandwidth;
use simcore::{Sim, SimDuration};

fn bench_frame_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_codec");
    for model in [Model::Jac, Model::ApoA1] {
        let t = FrameTemplate::generate(model, 1);
        let segs = t.frame_segments(7);
        let flat = transport::flatten_payload(segs.clone());
        g.throughput(Throughput::Bytes(model.frame_bytes()));
        g.bench_with_input(
            BenchmarkId::new("decode", model.name()),
            &flat,
            |b, flat| b.iter(|| Frame::decode(black_box(flat.clone())).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("emit_zero_copy", model.name()),
            &t,
            |b, t| b.iter(|| black_box(t.frame_segments(black_box(9)))),
        );
    }
    g.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytics");
    let positions: Vec<[f64; 3]> = (0..200)
        .map(|i| {
            let x = (i as f64 * 0.37).sin() * 20.0 + 25.0;
            [x, (i as f64 * 0.11).cos() * 20.0 + 25.0, i as f64 * 0.25]
        })
        .collect();
    g.bench_function("contact_matrix_200", |b| {
        b.iter(|| ContactMatrix::build(black_box(&positions), [50.0; 3], 5.0))
    });
    let cm = ContactMatrix::build(&positions, [50.0; 3], 5.0);
    g.bench_function("power_iteration_200x50", |b| {
        b.iter(|| black_box(&cm).largest_eigenvalue(50))
    });
    g.finish();
}

fn bench_des_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore");
    g.bench_function("timer_events_100k", |b| {
        b.iter(|| {
            let sim = Sim::new(0);
            for i in 0..1_000u64 {
                let ctx = sim.ctx();
                sim.spawn(async move {
                    for k in 0..100 {
                        ctx.sleep(SimDuration::from_nanos(1 + (i * 37 + k) % 997))
                            .await;
                    }
                });
            }
            black_box(sim.run().events_processed)
        })
    });
    g.bench_function("bandwidth_1k_flows", |b| {
        b.iter(|| {
            let sim = Sim::new(0);
            let ctx = sim.ctx();
            let bw = SharedBandwidth::new(&ctx, 1e9);
            for i in 0..1_000u64 {
                let bw = bw.clone();
                let ctx = ctx.clone();
                sim.spawn(async move {
                    ctx.sleep(SimDuration::from_nanos(i * 13 % 10_000)).await;
                    bw.transfer(1_000 + i).await;
                });
            }
            black_box(sim.run().events_processed)
        })
    });
    g.finish();
}

fn bench_localfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("localfs");
    g.bench_function("write_read_1MiB_sim", |b| {
        let payload = Bytes::from(vec![7u8; 1 << 20]);
        b.iter(|| {
            let sim = Sim::new(0);
            let ctx = sim.ctx();
            let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
            let fs = LocalFs::new(&ctx, dev, LocalFsSpec::default());
            let p = payload.clone();
            sim.spawn(async move {
                let fd = fs.create("/f").await.unwrap();
                fs.write_bytes(fd, p).await.unwrap();
                fs.close(fd).await.unwrap();
                let fd = fs.open("/f").await.unwrap();
                let _ = fs.read_segments(fd).await.unwrap();
                fs.close(fd).await.unwrap();
            });
            black_box(sim.run().events_processed)
        })
    });
    g.finish();
}

fn bench_kvs(c: &mut Criterion) {
    use kvs::{KvsClient, KvsServer, KvsSpec};
    use transport::{Transport, TransportSpec};
    let mut g = c.benchmark_group("kvs");
    g.bench_function("commit_lookup_x100_sim", |b| {
        b.iter(|| {
            let sim = Sim::new(0);
            let ctx = sim.ctx();
            let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
            let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
            let _srv = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
            let c = KvsClient::new(&ctx, &tp, NodeId(1), NodeId(0), KvsSpec::default());
            sim.spawn(async move {
                for i in 0..100 {
                    let key = format!("k{i}");
                    c.commit(&key, Bytes::from_static(b"v")).await;
                    let _ = c.lookup(&key).await;
                }
            });
            black_box(sim.run().events_processed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_frame_codec,
    bench_analytics,
    bench_des_engine,
    bench_localfs,
    bench_kvs
);
criterion_main!(benches);
