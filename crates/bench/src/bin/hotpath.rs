//! Wall-clock perf harness for the simulator hot path (PR 4).
//!
//! Runs the fig5/fig6/capacity hot loops at a fixed grid and emits
//! `BENCH_PR4.json` with runs/sec, events/sec and peak RSS so future
//! PRs have a perf trajectory to regress against.
//!
//! Modes:
//!
//! * `hotpath` — run the grid, print a table, write `BENCH_PR4.json`
//!   (into `--out DIR`, default the current directory).
//! * `hotpath --check BASELINE.json` — additionally fail (exit 1) if
//!   any workload's runs/sec regressed more than `HOTPATH_TOLERANCE`
//!   (default 0.20) versus the baseline.
//! * `hotpath --fixtures PATH` — write the same-seed determinism
//!   fixtures (makespan/events/staging for DYAD, XFS and Lustre at 8
//!   and 64 pairs) consumed by `tests/determinism_fixtures.rs`.
//!
//! Scale knobs: `HOTPATH_PAIRS` (default 256) and `HOTPATH_FRAMES`
//! (default 24) bound the big fig6 sweep so CI can run a smaller grid
//! than the perf-trajectory record.

use std::time::Instant;

use mdflow::prelude::*;

/// One measured workload.
struct Measured {
    name: &'static str,
    pairs: u32,
    frames: u64,
    reps: u32,
    wall_secs: f64,
    events: u64,
    makespan_ns: u64,
    /// Process high-water RSS observed right after this workload ran.
    /// VmHWM is monotone, so per-workload growth shows up as the
    /// increment over the previous row, and a flat sequence means the
    /// later workloads fit in the footprint of the earlier ones.
    rss_peak_after: u64,
}

fn rss_peak_bytes() -> u64 {
    // VmHWM is linux-only; other platforms report 0 rather than lying.
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
            })
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn measure(name: &'static str, wf: WorkflowConfig, cal: &Calibration, reps: u32) -> Measured {
    let pairs = wf.pairs;
    let frames = wf.frames;
    // One untimed warmup run per workload. On the reduced CI smoke grid
    // a run lasts well under a millisecond, so first-touch page faults
    // and allocator growth — which scale with binary size, not with
    // per-event cost — would otherwise dominate the measurement. The
    // full-size baseline grid (256 pairs × 24 frames) is cold-start-
    // negligible either way, so warmed smoke numbers compare cleanly
    // against it on per-event throughput.
    let _ = run_once(&wf, cal, 0x9E37);
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut makespan_ns = 0u64;
    for rep in 0..reps {
        let m = run_once(&wf, cal, 0x9E37 + rep as u64);
        events += m.events;
        makespan_ns = m.makespan.nanos();
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    Measured {
        name,
        pairs,
        frames,
        reps,
        wall_secs,
        events,
        makespan_ns,
        rss_peak_after: rss_peak_bytes(),
    }
}

fn grid() -> Vec<Measured> {
    let pairs: u32 = std::env::var("HOTPATH_PAIRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let frames: u64 = std::env::var("HOTPATH_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let split = Placement::Split { pairs_per_node: 8 };
    let cal = Calibration::corona();
    let quiet = Calibration::quiet();
    vec![
        // fig6 hot loop: the ensemble scan the paper runs at 1..=256
        // pairs; this is the simulator's O(n^2)-contention stress case.
        measure(
            "fig6_dyad",
            WorkflowConfig::new(Solution::Dyad, pairs, split).with_frames(frames),
            &cal,
            1,
        ),
        measure(
            "fig6_lustre",
            WorkflowConfig::new(Solution::Lustre, pairs, split).with_frames(frames),
            &cal,
            1,
        ),
        // fig5 hot loop: single-node DYAD vs XFS.
        measure(
            "fig5_dyad",
            WorkflowConfig::new(Solution::Dyad, 4, Placement::SingleNode).with_frames(frames),
            &cal,
            4,
        ),
        measure(
            "fig5_xfs",
            WorkflowConfig::new(Solution::Xfs, 4, Placement::SingleNode).with_frames(frames),
            &cal,
            4,
        ),
        // capacity hot loop: bounded staging with spill-to-PFS.
        measure(
            "capacity_bounded",
            WorkflowConfig::new(Solution::Dyad, 8, split)
                .with_frames(frames)
                .with_staging_budget(3 * Model::Jac.frame_bytes())
                .with_spill(true),
            &quiet,
            2,
        ),
    ]
}

// The vendored serde_json stand-in has no `json!` macro, so build
// `Value` trees by hand through these two helpers.
fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u64(v: u64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::U64(v))
}

fn num_f64(v: f64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::F64(v))
}

fn to_json(rows: &[Measured]) -> String {
    let workloads: Vec<serde_json::Value> = rows
        .iter()
        .map(|m| {
            obj(vec![
                ("name", serde_json::Value::String(m.name.to_string())),
                ("pairs", num_u64(m.pairs as u64)),
                ("frames", num_u64(m.frames)),
                ("reps", num_u64(m.reps as u64)),
                ("wall_secs", num_f64(m.wall_secs)),
                ("events", num_u64(m.events)),
                ("makespan_ns", num_u64(m.makespan_ns)),
                (
                    "runs_per_sec",
                    num_f64(m.reps as f64 / m.wall_secs.max(1e-9)),
                ),
                (
                    "events_per_sec",
                    num_f64(m.events as f64 / m.wall_secs.max(1e-9)),
                ),
                ("peak_rss_bytes", num_u64(m.rss_peak_after)),
            ])
        })
        .collect();
    serde_json::to_string_pretty(&obj(vec![
        ("bench", serde_json::Value::String("hotpath".to_string())),
        ("pr", num_u64(4)),
        ("peak_rss_bytes", num_u64(rss_peak_bytes())),
        ("workloads", serde_json::Value::Array(workloads)),
    ]))
    .expect("json")
}

fn check_baseline(rows: &[Measured], baseline_path: &str) -> bool {
    let tolerance: f64 = std::env::var("HOTPATH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let raw = match std::fs::read_to_string(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hotpath: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let base: serde_json::Value = serde_json::from_str(&raw).expect("baseline json");
    let mut ok = true;
    for m in rows {
        let Some(b) = base["workloads"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|w| w["name"] == m.name)
        else {
            continue;
        };
        // Compare per-event wall cost: the baseline may have been
        // captured at a different grid scale, so runs/sec is only
        // comparable through the events actually simulated.
        let base_eps = b["events_per_sec"].as_f64().unwrap_or(0.0);
        let cur_eps = m.events as f64 / m.wall_secs.max(1e-9);
        if base_eps > 0.0 && cur_eps < base_eps * (1.0 - tolerance) {
            eprintln!(
                "hotpath: REGRESSION {}: {:.0} events/s vs baseline {:.0} (> {:.0}% slower)",
                m.name,
                cur_eps,
                base_eps,
                tolerance * 100.0
            );
            ok = false;
        }
    }
    ok
}

fn write_fixtures(path: &str) {
    let cal = Calibration::corona();
    let split = Placement::Split { pairs_per_node: 8 };
    let mut rows = Vec::new();
    for &pairs in &[8u32, 64] {
        let cases = [
            ("dyad", WorkflowConfig::new(Solution::Dyad, pairs, split)),
            (
                "xfs",
                WorkflowConfig::new(Solution::Xfs, pairs, Placement::SingleNode),
            ),
            (
                "lustre",
                WorkflowConfig::new(Solution::Lustre, pairs, split),
            ),
        ];
        for (name, wf) in cases {
            let wf = wf.with_frames(12);
            let m = run_once(&wf, &cal, 2024);
            // No `to_value` in the vendored crate: round-trip the staging
            // struct through its string form to embed it as a Value.
            let staging: serde_json::Value =
                serde_json::from_str(&serde_json::to_string(&m.staging).expect("staging json"))
                    .expect("staging value");
            rows.push(obj(vec![
                ("solution", serde_json::Value::String(name.to_string())),
                ("pairs", num_u64(pairs as u64)),
                ("frames", num_u64(12)),
                ("seed", num_u64(2024)),
                ("makespan_ns", num_u64(m.makespan.nanos())),
                ("events", num_u64(m.events)),
                ("staging", staging),
            ]));
            println!(
                "  fixture {name:>6} {pairs:>3}p: makespan {} events {}",
                m.makespan, m.events
            );
        }
    }
    let json =
        serde_json::to_string_pretty(&obj(vec![("fixtures", serde_json::Value::Array(rows))]))
            .expect("json");
    std::fs::write(path, json).expect("write fixtures");
    println!("  [saved {path}]");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if let Some(path) = flag_value("--fixtures") {
        write_fixtures(&path);
        return;
    }
    let rows = grid();
    println!("HOTPATH — simulator core wall-clock benchmark");
    for m in &rows {
        println!(
            "  {:<18} {:>4} pairs {:>4} frames ×{} | {:>8.2} s wall | {:>12} events | {:>10.0} events/s | {:.3} runs/s",
            m.name,
            m.pairs,
            m.frames,
            m.reps,
            m.wall_secs,
            m.events,
            m.events as f64 / m.wall_secs.max(1e-9),
            m.reps as f64 / m.wall_secs.max(1e-9),
        );
        println!(
            "  {:<18} peak RSS after workload: {} MiB",
            "",
            m.rss_peak_after / (1 << 20)
        );
    }
    println!("  peak RSS: {} MiB", rss_peak_bytes() / (1 << 20));
    let out_dir = flag_value("--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let out = format!("{out_dir}/BENCH_PR4.json");
    std::fs::write(&out, to_json(&rows)).expect("write BENCH_PR4.json");
    println!("  [saved {out}]");
    if let Some(baseline) = flag_value("--check") {
        if !check_baseline(&rows, &baseline) {
            std::process::exit(1);
        }
        println!("  perf check vs {baseline}: OK");
    }
}
