//! Capacity sweep (staging tentpole): how small can DYAD's node-local
//! staging area get before its advantage over Lustre disappears?
//!
//! Two nodes, JAC, 8 pairs — the Figure 6 configuration — with the
//! per-node NVMe staging budget swept from unlimited (the paper's
//! setup, frames live on NVMe for the whole run) down to half a frame
//! per pair. Bounded rows run with spill-to-PFS enabled: the evictor
//! retires fully-acknowledged frames first, then spills still-needed
//! ones to Lustre, and producers block at the high watermark.
//!
//! Two workload shapes:
//!
//! * **Periodic** (the paper's fixed stride): consumers ack each frame
//!   almost as soon as it is published, so retirement keeps up and even
//!   one-frame budgets only cost short backpressure stalls — with
//!   consumption acks wired into retention, steady-rate DYAD needs
//!   barely a frame per pair of NVMe.
//! * **Bursty** (same mean rate, §III-A's variable-generation regime):
//!   producers sprint ahead of consumers during bursts, unacknowledged
//!   frames pile up on NVMe, and tight budgets force spills. Every
//!   spilled frame is later consumed from Lustre (`dyad_pfs_fallback`),
//!   so consumption degrades monotonically toward the Lustre baseline
//!   as the budget shrinks.

use bench::{fmt_secs, print_ratio, render_bars, reports_json, run, save_json, Scale};
use mdflow::prelude::*;
use simcore::SimDuration;

/// Per-node staging budgets swept, in HALF-frames per pair (the
/// producer node stages `pairs` streams, so the node budget is
/// (halves/2) × frame_bytes × pairs). `None` = unlimited.
const BUDGET_HALVES: [Option<u64>; 6] = [None, Some(128), Some(8), Some(4), Some(2), Some(1)];

fn budget_label(halves: Option<u64>) -> String {
    match halves {
        None => "unlimited".to_string(),
        Some(h) => format!("{} frames/pair", h as f64 / 2.0),
    }
}

fn budget_wf(pairs: u32, split: Placement, halves: Option<u64>) -> WorkflowConfig {
    let wf = WorkflowConfig::new(Solution::Dyad, pairs, split);
    match halves {
        None => wf,
        Some(h) => wf
            .with_staging_budget(h * Model::Jac.frame_bytes() * pairs as u64 / 2)
            .with_spill(true),
    }
}

fn table_header() {
    println!(
        "  {:<16} {:>12} {:>12} {:>11} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "budget",
        "cons move",
        "cons idle",
        "makespan",
        "evicted",
        "spilled",
        "stalls",
        "stall s",
        "pfs reads"
    );
}

fn table_row(label: &str, r: &StudyReport) {
    println!(
        "  {:<16} {:>12} {:>12} {:>11} {:>8.0} {:>8.0} {:>8.0} {:>10} {:>9.0}",
        label,
        fmt_secs(r.consumption_movement.mean),
        fmt_secs(r.consumption_idle.mean),
        fmt_secs(r.makespan.mean),
        r.evicted_frames.mean,
        r.spilled_frames.mean,
        r.backpressure_stalls.mean,
        fmt_secs(r.backpressure_stall_secs.mean),
        r.pfs_fallbacks.mean,
    );
}

fn lustre_row(label: &str, r: &StudyReport) {
    println!(
        "  {:<16} {:>12} {:>12} {:>11} {:>8} {:>8} {:>8} {:>10} {:>9}",
        label,
        fmt_secs(r.consumption_movement.mean),
        fmt_secs(r.consumption_idle.mean),
        fmt_secs(r.makespan.mean),
        "-",
        "-",
        "-",
        "-",
        "-"
    );
}

fn sweep(
    pairs: u32,
    split: Placement,
    scale: Scale,
    schedule: Option<&FrameSchedule>,
) -> Vec<(String, StudyReport)> {
    let mut rows = Vec::new();
    for halves in BUDGET_HALVES {
        let mut wf = budget_wf(pairs, split, halves);
        if let Some(s) = schedule {
            wf = wf.with_schedule(s.clone());
        }
        let r = run(wf, scale);
        let label = budget_label(halves);
        table_row(&label, &r);
        rows.push((label, r));
    }
    rows
}

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 8 };
    let pairs = 8u32;
    println!(
        "CAPACITY SWEEP — 2 nodes, JAC, {pairs} pairs, {} frames, {} reps",
        scale.frames, scale.reps
    );
    println!("per-node staging budget: unlimited → 0.5 frames/pair (bounded rows spill to PFS)\n");

    // ---- Periodic (the paper's stride): acceptance check (a) -----------
    println!("[periodic stride — the paper's Figure 6 configuration]");
    table_header();
    let rows = sweep(pairs, split, scale, None);
    let lustre = run(WorkflowConfig::new(Solution::Lustre, pairs, split), scale);
    lustre_row("Lustre", &lustre);

    // ---- Bursty (same mean rate): acceptance check (b) -----------------
    // Consumers rate-match the 0.82 s mean, so during 50 ms bursts the
    // producer runs several frames ahead and staged-but-unacked data
    // accumulates — the regime bounded staging actually has to manage.
    let bursty = FrameSchedule::Bursty {
        burst_gap: SimDuration::from_millis(50),
        quiet_gap: SimDuration::from_millis(1590),
        burst_persistence: 0.5,
        burst_entry: 0.5,
    };
    println!("\n[bursty stride — same 0.82 s mean rate, §III-A's variable-generation regime]");
    table_header();
    let brows = sweep(pairs, split, scale, Some(&bursty));
    let blustre = run(
        WorkflowConfig::new(Solution::Lustre, pairs, split).with_schedule(bursty),
        scale,
    );
    lustre_row("Lustre", &blustre);

    let unlimited = &rows[0].1;
    let b_unlimited = &brows[0].1;
    let b_tightest = &brows[brows.len() - 1].1;
    println!("\nheadlines:");
    print_ratio(
        "DYAD (unlimited) consumption faster than Lustre",
        "~197x (Fig 6)",
        lustre.consumption_total() / unlimited.consumption_total(),
    );
    // Under bursts, total consumption is dominated by idling out the
    // producers' quiet gaps on both systems; the budget's effect shows
    // in the data-movement component (the paper's red bars): every
    // spilled frame turns a node-local RDMA fetch into a Lustre read.
    print_ratio(
        "bursty DYAD (unlimited) data movement faster than Lustre",
        "gap holds",
        blustre.consumption_movement.mean / b_unlimited.consumption_movement.mean,
    );
    print_ratio(
        "bursty DYAD (0.5 frames/pair) data movement faster than Lustre",
        "gap closes",
        blustre.consumption_movement.mean / b_tightest.consumption_movement.mean,
    );

    // Shape checks the acceptance criteria read off this output.
    let unlimited_clean = unlimited.evicted_frames.mean == 0.0
        && unlimited.spilled_frames.mean == 0.0
        && unlimited.backpressure_stalls.mean == 0.0;
    println!(
        "  unlimited row reproduces the paper's DYAD (no evictions/stalls): {}",
        if unlimited_clean { "yes" } else { "NO" }
    );
    let moves: Vec<f64> = brows
        .iter()
        .map(|(_, r)| r.consumption_movement.mean)
        .collect();
    let monotone = moves.windows(2).all(|w| w[1] >= w[0] * 0.95);
    println!(
        "  bursty data movement degrades monotonically as the budget shrinks: {}",
        if monotone {
            "yes"
        } else {
            "NO (within-noise inversions)"
        }
    );
    let pressured = brows
        .iter()
        .any(|(_, r)| r.spilled_frames.mean > 0.0 && r.pfs_fallbacks.mean > 0.0);
    println!(
        "  tight bursty budgets spill to PFS and consumers fall back to it: {}",
        if pressured { "yes" } else { "NO" }
    );
    let stalled = rows
        .iter()
        .chain(brows.iter())
        .any(|(_, r)| r.backpressure_stalls.mean > 0.0);
    println!(
        "  tight budgets trigger producer backpressure stalls: {}",
        if stalled { "yes" } else { "NO" }
    );

    println!();
    let mut bars: Vec<(String, f64, f64)> = brows
        .iter()
        .map(|(l, r)| (l.clone(), r.consumption_movement.mean, 0.0))
        .collect();
    bars.push(("Lustre".to_string(), blustre.consumption_movement.mean, 0.0));
    print!(
        "{}",
        render_bars("bursty consumption data movement per frame", &bars)
    );

    let mut json_rows: Vec<(String, &StudyReport)> = rows
        .iter()
        .map(|(l, r)| (format!("periodic {l}"), r))
        .collect();
    json_rows.push(("periodic lustre".to_string(), &lustre));
    json_rows.extend(brows.iter().map(|(l, r)| (format!("bursty {l}"), r)));
    json_rows.push(("bursty lustre".to_string(), &blustre));
    save_json("capacity", &reports_json(&json_rows));
}
