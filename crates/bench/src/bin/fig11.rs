//! Figure 11: frame-generation frequency scaling with JAC — strides of
//! 1, 5, 10, 50 on two nodes with 16 pairs. DYAD's production is 4.8×
//! faster than Lustre across strides; idle times grow with the stride
//! for both, but DYAD's stay far smaller (adaptive synchronization).

use bench::{
    consumption_chart, print_bar, print_ratio, production_chart, reports_json, run, save_json,
    Scale,
};
use mdflow::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 16 };
    println!(
        "FIGURE 11 — 2 nodes, 16 pairs, JAC, strides 1/5/10/50, {} frames, {} reps",
        scale.frames, scale.reps
    );
    let mut rows = Vec::new();
    let mut by_stride = Vec::new();
    for stride in [1u64, 5, 10, 50] {
        let dyad = run(
            WorkflowConfig::new(Solution::Dyad, 16, split).with_stride(stride),
            scale,
        );
        let lustre = run(
            WorkflowConfig::new(Solution::Lustre, 16, split).with_stride(stride),
            scale,
        );
        println!(
            "\nstride {stride} (period {:.2} ms):",
            Model::Jac.period_for_stride(stride) * 1e3
        );
        print_bar(&format!("DYAD   (stride {stride})"), &dyad);
        print_bar(&format!("Lustre (stride {stride})"), &lustre);
        rows.push((format!("dyad-s{stride}"), dyad.clone()));
        rows.push((format!("lustre-s{stride}"), lustre.clone()));
        by_stride.push((dyad, lustre));
    }
    // Production gap averaged over strides (the paper's 4.8x headline).
    let mean_gap: f64 = by_stride
        .iter()
        .map(|(d, l)| l.production_total() / d.production_total())
        .sum::<f64>()
        / by_stride.len() as f64;
    println!("\nheadline:");
    print_ratio(
        "DYAD production faster than Lustre (mean)",
        "4.8x",
        mean_gap,
    );
    // Idle grows with stride for both solutions.
    let first = &by_stride.first().unwrap();
    let last = &by_stride.last().unwrap();
    println!(
        "  idle growth stride 1 → 50: DYAD {:.3} → {:.3} ms | Lustre {:.1} → {:.1} ms",
        first.0.consumption_idle.mean * 1e3,
        last.0.consumption_idle.mean * 1e3,
        first.1.consumption_idle.mean * 1e3,
        last.1.consumption_idle.mean * 1e3,
    );
    let check = mdflow::findings::finding5(&by_stride);
    println!(
        "\nFinding 5 ({}) holds: {} — {}",
        check.statement, check.holds, check.evidence
    );

    println!();
    print!("{}", production_chart("production time per frame", &rows));
    println!();
    print!("{}", consumption_chart("consumption time per frame", &rows));

    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("fig11", &reports_json(&rows_ref));
}
