//! Figure 12: frame-generation frequency scaling with STMV — strides of
//! 1, 5, 10, 50 on two nodes with 16 pairs. DYAD's production is 2.0×
//! faster; DYAD's movement improves with stride (less network
//! contention), and overall consumption is 13.0-192.2× faster with the
//! gap widening as the stride grows.

use bench::{
    consumption_chart, print_bar, print_ratio, production_chart, reports_json, run, save_json,
    Scale,
};
use mdflow::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 16 };
    println!(
        "FIGURE 12 — 2 nodes, 16 pairs, STMV, strides 1/5/10/50, {} frames, {} reps",
        scale.frames, scale.reps
    );
    let mut rows = Vec::new();
    let mut by_stride = Vec::new();
    for stride in [1u64, 5, 10, 50] {
        let dyad = run(
            WorkflowConfig::new(Solution::Dyad, 16, split)
                .with_model(Model::Stmv)
                .with_stride(stride),
            scale,
        );
        let lustre = run(
            WorkflowConfig::new(Solution::Lustre, 16, split)
                .with_model(Model::Stmv)
                .with_stride(stride),
            scale,
        );
        println!(
            "\nstride {stride} (period {:.1} ms):",
            Model::Stmv.period_for_stride(stride) * 1e3
        );
        print_bar(&format!("DYAD   (stride {stride})"), &dyad);
        print_bar(&format!("Lustre (stride {stride})"), &lustre);
        print_ratio(
            "  overall consumption gap",
            "13.0x..192.2x",
            lustre.consumption_total() / dyad.consumption_total(),
        );
        rows.push((format!("dyad-s{stride}"), dyad.clone()));
        rows.push((format!("lustre-s{stride}"), lustre.clone()));
        by_stride.push((dyad, lustre));
    }
    let mean_gap: f64 = by_stride
        .iter()
        .map(|(d, l)| l.production_total() / d.production_total())
        .sum::<f64>()
        / by_stride.len() as f64;
    println!("\nheadline:");
    print_ratio(
        "DYAD production faster than Lustre (mean)",
        "2.0x",
        mean_gap,
    );
    let move_s1 = by_stride[0].0.consumption_movement.mean;
    let move_s50 = by_stride[3].0.consumption_movement.mean;
    print_ratio(
        "DYAD movement improves stride 1 → 50",
        "up to 1.4x",
        move_s1 / move_s50.max(1e-12),
    );
    let check = mdflow::findings::finding5(&by_stride);
    println!(
        "\nFinding 5 ({}) holds: {} — {}",
        check.statement, check.holds, check.evidence
    );

    println!();
    print!("{}", production_chart("production time per frame", &rows));
    println!();
    print!("{}", consumption_chart("consumption time per frame", &rows));

    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("fig12", &reports_json(&rows_ref));
}
