//! Figure 8: molecular-model size scaling — JAC, ApoA1, F1 ATPase, STMV
//! on two nodes with 16 pairs, strides per Table II (equal frame
//! cadence). DYAD's producer movement is 2.1-6.3× faster, consumer
//! movement 1.6-6.0× faster, overall consumption 121.0-333.8× faster.

use bench::{
    consumption_chart, print_bar, print_ratio, production_chart, reports_json, run, save_json,
    Scale,
};
use mdflow::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 16 };
    println!(
        "FIGURE 8 — 2 nodes, 16 pairs, model scaling, {} frames, {} reps",
        scale.frames, scale.reps
    );
    let mut rows = Vec::new();
    let mut pairs_by_model = Vec::new();
    for model in Model::ALL {
        let dyad = run(
            WorkflowConfig::new(Solution::Dyad, 16, split).with_model(model),
            scale,
        );
        let lustre = run(
            WorkflowConfig::new(Solution::Lustre, 16, split).with_model(model),
            scale,
        );
        println!("\n{model} ({} B/frame):", model.frame_bytes());
        print_bar(&format!("DYAD   ({model})"), &dyad);
        print_bar(&format!("Lustre ({model})"), &lustre);
        print_ratio(
            "  production movement gap",
            "2.1x..6.3x",
            lustre.production_movement.mean / dyad.production_movement.mean,
        );
        print_ratio(
            "  consumption movement gap",
            "1.6x..6.0x",
            lustre.consumption_movement.mean / dyad.consumption_movement.mean,
        );
        print_ratio(
            "  overall consumption gap",
            "121.0x..333.8x",
            lustre.consumption_total() / dyad.consumption_total(),
        );
        rows.push((format!("dyad-{}", model.name()), dyad.clone()));
        rows.push((format!("lustre-{}", model.name()), lustre.clone()));
        pairs_by_model.push((dyad, lustre));
    }
    let check = mdflow::findings::finding4(&pairs_by_model);
    println!(
        "\nFinding 4 ({}) holds: {} — {}",
        check.statement, check.holds, check.evidence
    );

    println!();
    print!("{}", production_chart("production time per frame", &rows));
    println!();
    print!("{}", consumption_chart("consumption time per frame", &rows));

    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("fig8", &reports_json(&rows_ref));
}
