//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! 1. DYAD multi-protocol sync vs KVS-wait-only sync (Findings 1/5).
//! 2. DYAD sync over PFS storage vs full DYAD (isolates node-local
//!    storage + RDMA from the synchronization protocol).
//! 3. Lustre stripe-count sweep.
//! 4. Coarse- vs fine-grained manual synchronization for Lustre.

use bench::{print_bar, print_ratio, reports_json, run, save_json, Scale};
use mdflow::calibration::Calibration;
use mdflow::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 8 };
    let mut rows: Vec<(String, StudyReport)> = Vec::new();

    println!("ABLATION 1 — DYAD sync protocol (2 nodes, 8 pairs, JAC)");
    println!("(consumers launched in phase with producers; the poll arm uses a");
    println!(" coarse 100 ms interval, as file-polling workflow managers do)");
    let run_sync = |warm: bool, poll: bool| {
        let mut wf = WorkflowConfig::new(Solution::Dyad, 8, split).with_frames(scale.frames);
        wf.dyad_warm_sync = warm;
        let mut study = StudyConfig::paper(wf).with_repetitions(scale.reps);
        // In phase: whether a frame is ready when the consumer asks is a
        // coin flip, so the poll arm pays interval-rounding every miss.
        study.calibration.consumer_launch_delay = 0.0;
        study.calibration.dyad.cold_sync_poll = poll;
        study.calibration.kvs.poll_interval = simcore::SimDuration::from_millis(100);
        run_study_jobs(&study, default_jobs())
    };
    let warm = run_sync(true, false);
    let watch = run_sync(false, false);
    let poll = run_sync(false, true);
    print_bar("multi-protocol (paper)", &warm);
    print_bar("KVS watch every frame", &watch);
    print_bar("KVS poll every frame", &poll);
    print_ratio(
        "multi-protocol vs per-frame KVS polling (idle)",
        "(mechanism behind Findings 1/5)",
        poll.consumption_idle.mean / warm.consumption_idle.mean.max(1e-12),
    );
    rows.push(("dyad-warm".into(), warm));
    rows.push(("dyad-watch".into(), watch));
    rows.push(("dyad-poll".into(), poll));

    println!("\nABLATION 2 — DYAD sync over PFS storage vs full DYAD (2 nodes, 8 pairs, STMV)");
    let full = run(
        WorkflowConfig::new(Solution::Dyad, 8, split).with_model(Model::Stmv),
        scale,
    );
    let on_pfs = run(
        WorkflowConfig::new(Solution::DyadOnPfs, 8, split).with_model(Model::Stmv),
        scale,
    );
    let lustre = run(
        WorkflowConfig::new(Solution::Lustre, 8, split).with_model(Model::Stmv),
        scale,
    );
    print_bar("DYAD (node-local + RDMA)", &full);
    print_bar("DYAD sync on PFS storage", &on_pfs);
    print_bar("Lustre (manual sync)", &lustre);
    print_ratio(
        "node-local+RDMA beats PFS staging (movement)",
        "(Figure 2's storage claim)",
        on_pfs.consumption_movement.mean / full.consumption_movement.mean.max(1e-12),
    );
    print_ratio(
        "DYAD sync alone still beats manual sync (idle)",
        "(sync and storage are separable wins)",
        lustre.consumption_idle.mean / on_pfs.consumption_idle.mean.max(1e-12),
    );
    rows.push(("dyad-full-stmv".into(), full));
    rows.push(("dyad-on-pfs-stmv".into(), on_pfs));
    rows.push(("lustre-stmv".into(), lustre));

    println!("\nABLATION 3 — Lustre stripe count (2 nodes, 8 pairs, STMV)");
    for stripes in [1usize, 4, 8] {
        let mut study = StudyConfig::paper(
            WorkflowConfig::new(Solution::Lustre, 8, split)
                .with_model(Model::Stmv)
                .with_frames(scale.frames),
        )
        .with_repetitions(scale.reps);
        study.calibration = Calibration::corona();
        study.calibration.pfs.default_stripe_count = stripes;
        let r = run_study_jobs(&study, default_jobs());
        print_bar(&format!("stripe_count = {stripes}"), &r);
        rows.push((format!("lustre-stripes-{stripes}"), r));
    }

    println!("\nABLATION 4 — manual sync protocol ladder (2 nodes, 8 pairs, JAC, Lustre)");
    println!("(paper §III: MPI barriers, Pegasus-style polling, or middleware sync)");
    let coarse = run(WorkflowConfig::new(Solution::Lustre, 8, split), scale);
    let mut fine_wf = WorkflowConfig::new(Solution::Lustre, 8, split);
    fine_wf.manual_sync = ManualSync::Fine;
    let fine = run(fine_wf, scale);
    let mut poll_wf = WorkflowConfig::new(Solution::Lustre, 8, split);
    poll_wf.manual_sync = ManualSync::Polling;
    let polling = run(poll_wf, scale);
    let mut lock_wf = WorkflowConfig::new(Solution::Lustre, 8, split);
    lock_wf.manual_sync = ManualSync::LockBased;
    let locked = run(lock_wf, scale);
    let dyad_ref = run(WorkflowConfig::new(Solution::Dyad, 8, split), scale);
    print_bar("coarse barrier (paper)", &coarse);
    print_bar("fine barrier", &fine);
    print_bar("marker polling (Pegasus)", &polling);
    print_bar("DLM lock-based", &locked);
    print_bar("DYAD automatic sync", &dyad_ref);
    print_ratio(
        "fine-grained sync reduces consumption idle",
        "(the cost of the coarse barrier)",
        coarse.consumption_idle.mean / fine.consumption_idle.mean.max(1e-12),
    );
    print_ratio(
        "DYAD sync beats even marker polling (idle)",
        "(automatic, no polling cost)",
        polling.consumption_idle.mean / dyad_ref.consumption_idle.mean.max(1e-12),
    );
    println!(
        "  makespan: coarse {:.1}s | fine {:.1}s | polling {:.1}s | DYAD {:.1}s",
        coarse.makespan.mean, fine.makespan.mean, polling.makespan.mean, dyad_ref.makespan.mean
    );
    rows.push(("lustre-coarse".into(), coarse));
    rows.push(("lustre-fine".into(), fine));
    rows.push(("lustre-polling".into(), polling));
    rows.push(("lustre-lockbased".into(), locked));
    rows.push(("dyad-ref".into(), dyad_ref));

    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("ablation", &reports_json(&rows_ref));
}
