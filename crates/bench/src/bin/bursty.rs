//! Variable-rate production experiment (extension): §III-A claims DYAD
//! is "particularly beneficial in scenarios where the data generation
//! rate varies significantly", but the paper's evaluation only runs
//! fixed strides. This binary runs the comparison at one mean rate
//! (Table II's 0.82 s/frame) under increasingly bursty schedules and
//! reports how each solution degrades.

use bench::{print_bar, reports_json, save_json, Scale};
use mdflow::prelude::*;
use simcore::SimDuration;

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 8 };
    println!(
        "BURSTY PRODUCTION (extension) — 2 nodes, 8 pairs, JAC-size frames, \
         mean cadence 0.82 s, {} frames, {} reps",
        scale.frames, scale.reps
    );
    // Burstiness ladder: same 0.82 s mean gap, increasingly extreme mix
    // of fast and slow gaps (p_burst = 0.5 throughout).
    let schedules: Vec<(&str, Option<FrameSchedule>)> = vec![
        ("periodic (paper)", None),
        (
            "mild bursts (0.41s/1.23s)",
            Some(FrameSchedule::Bursty {
                burst_gap: SimDuration::from_millis(410),
                quiet_gap: SimDuration::from_millis(1230),
                burst_persistence: 0.5,
                burst_entry: 0.5,
            }),
        ),
        (
            "strong bursts (0.1s/1.54s)",
            Some(FrameSchedule::Bursty {
                burst_gap: SimDuration::from_millis(100),
                quiet_gap: SimDuration::from_millis(1540),
                burst_persistence: 0.5,
                burst_entry: 0.5,
            }),
        ),
        (
            "extreme bursts (0.02s/1.62s)",
            Some(FrameSchedule::Bursty {
                burst_gap: SimDuration::from_millis(20),
                quiet_gap: SimDuration::from_millis(1620),
                burst_persistence: 0.5,
                burst_entry: 0.5,
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (label, schedule) in &schedules {
        if let Some(s) = schedule {
            assert!(
                (s.mean_gap().as_secs_f64() - 0.82).abs() < 1e-9,
                "ladder must hold the mean rate fixed"
            );
        }
        let mk = |solution| {
            let mut wf = WorkflowConfig::new(solution, 8, split);
            if let Some(s) = schedule {
                wf = wf.with_schedule(s.clone());
            }
            bench::run(wf, scale)
        };
        let dyad = mk(Solution::Dyad);
        let lustre = mk(Solution::Lustre);
        println!("\n{label}:");
        print_bar("DYAD", &dyad);
        print_bar("Lustre", &lustre);
        println!(
            "  makespan: DYAD {:7.1} s | Lustre {:7.1} s ({:.2}x longer)",
            dyad.makespan.mean,
            lustre.makespan.mean,
            lustre.makespan.mean / dyad.makespan.mean
        );
        rows.push((format!("dyad-{label}"), dyad));
        rows.push((format!("lustre-{label}"), lustre));
    }
    println!(
        "\nmeasured story: DYAD producers never block, so frames reach storage at\n\
         burst speed and the workflow stays ~1.7-1.9x faster end to end at every\n\
         burstiness level, with 9-80x less consumer idle. But DYAD's own idle\n\
         grows with burstiness (consumers still drain at their fixed analytics\n\
         rate, so quiet gaps become waits) — §III-A's claim holds end to end\n\
         while being bounded by the consumer's processing rate."
    );
    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("bursty", &reports_json(&rows_ref));
}
