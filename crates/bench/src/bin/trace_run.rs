//! Capture a Chrome/Perfetto trace of one workflow repetition: every
//! producer and consumer gets a timeline track, every Caliper region a
//! span. Open the output (`target/experiments/trace_<solution>.json`)
//! in <https://ui.perfetto.dev> to watch the pipeline breathe.
//!
//! ```text
//! trace_run [dyad|xfs|lustre] [pairs] [frames]
//! ```

use mdflow::calibration::Calibration;
use mdflow::prelude::*;
use mdflow::runner::run_once_traced;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let solution = match args.first().map(|s| s.as_str()) {
        Some("xfs") => Solution::Xfs,
        Some("lustre") => Solution::Lustre,
        _ => Solution::Dyad,
    };
    let pairs: u32 = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(2);
    let frames: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(8);
    let placement = if solution == Solution::Xfs {
        Placement::SingleNode
    } else {
        Placement::Split { pairs_per_node: 8 }
    };
    let wf = WorkflowConfig::new(solution, pairs, placement).with_frames(frames);
    eprintln!(
        "tracing one repetition: {} × {pairs} pairs × {frames} frames...",
        solution.label()
    );
    let (metrics, tracer) = run_once_traced(&wf, &Calibration::corona(), 7);
    let json = tracer.to_chrome_json();
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("trace_{}.json", solution.label().to_lowercase()));
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "wrote {path:?}: {} events over {:.2} simulated s ({} discrete events)",
        tracer.len(),
        metrics.makespan.as_secs_f64(),
        metrics.events
    );
    println!("open it at https://ui.perfetto.dev or chrome://tracing");
}
