//! Faulted fig6-style sweep: two nodes, JAC, DYAD vs Lustre, with a
//! deterministic chaos plan (seeded, all fault classes) injected
//! mid-run. Prints the usual movement/idle bars next to the
//! recovery-time split the fault layer separates out — retry backoff is
//! *recovery*, not data movement — plus the typed-loss accounting.
//!
//! `MDFLOW_CHAOS_SEED` / `MDFLOW_CHAOS_EVENTS` pick the plan (defaults
//! 42 / 2 events per fault class); the same plan is replayed across all
//! repetitions so the mean/std reflect workload seeds, not schedule
//! luck.

use bench::{fmt_secs, print_bar, reports_json, run, save_json, Scale};
use mdflow::prelude::*;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_recovery(r: &StudyReport) {
    println!(
        "  {:<28} injected {:>5.1} | rpc retries {:>7.1} | recovery {:>11} | frames lost {:>4.1}",
        "recovery split",
        r.fault_injections.mean,
        r.rpc_retries.mean,
        fmt_secs(r.recovery_secs.mean),
        r.frames_lost.mean,
    );
}

fn main() {
    let scale = Scale::from_env();
    let seed = env_u64("MDFLOW_CHAOS_SEED", 42);
    let events = env_u64("MDFLOW_CHAOS_EVENTS", 2) as u32;
    let split = Placement::Split { pairs_per_node: 8 };
    println!(
        "CHAOS — two nodes, JAC, stride 880, {} frames, {} reps, plan seed {seed}, {events} events/class",
        scale.frames, scale.reps
    );
    let mut rows = Vec::new();
    for pairs in [4u32, 8] {
        for (name, solution) in [("dyad", Solution::Dyad), ("lustre", Solution::Lustre)] {
            let clean = run(WorkflowConfig::new(solution, pairs, split), scale);
            let faulted = run(
                WorkflowConfig::new(solution, pairs, split)
                    .with_faults(FaultConfig::chaos(seed, events)),
                scale,
            );
            println!("\n{name} {pairs} pairs:");
            print_bar("fault-free", &clean);
            print_bar("chaos", &faulted);
            print_recovery(&faulted);
            let slow = faulted.makespan.mean / clean.makespan.mean;
            println!(
                "  {:<28} {} -> {} ({:+.1}%)",
                "makespan",
                fmt_secs(clean.makespan.mean),
                fmt_secs(faulted.makespan.mean),
                (slow - 1.0) * 100.0
            );
            rows.push((format!("{name}-{pairs}p-clean"), clean));
            rows.push((format!("{name}-{pairs}p-chaos"), faulted));
        }
    }
    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("chaos", &reports_json(&rows_ref));
}
