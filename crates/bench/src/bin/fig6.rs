//! Figure 6: two nodes (producers on one, consumers on the other), JAC,
//! DYAD vs Lustre, ensembles of 1/2/4/8 pairs. DYAD's producer movement
//! is 7.5× faster (node-local storage), consumer movement 6.9× faster,
//! and overall consumption 197.4× faster.

use bench::{
    consumption_chart, print_bar, print_ratio, production_chart, reports_json, run, save_json,
    Scale,
};
use mdflow::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 8 };
    println!(
        "FIGURE 6 — two nodes, JAC, stride 880, {} frames, {} reps",
        scale.frames, scale.reps
    );
    let mut rows = Vec::new();
    for pairs in [1u32, 2, 4, 8] {
        let dyad = run(WorkflowConfig::new(Solution::Dyad, pairs, split), scale);
        let lustre = run(WorkflowConfig::new(Solution::Lustre, pairs, split), scale);
        println!("\n{pairs} pair(s):");
        print_bar(&format!("DYAD   ({pairs} pairs)"), &dyad);
        print_bar(&format!("Lustre ({pairs} pairs)"), &lustre);
        rows.push((format!("dyad-{pairs}p"), dyad));
        rows.push((format!("lustre-{pairs}p"), lustre));
    }
    let dyad = &rows[rows.len() - 2].1;
    let lustre = &rows[rows.len() - 1].1;
    println!("\nheadline (8 pairs):");
    print_ratio(
        "DYAD production faster than Lustre",
        "7.5x",
        lustre.production_total() / dyad.production_total(),
    );
    print_ratio(
        "DYAD consumer data movement faster",
        "6.9x",
        lustre.consumption_movement.mean / dyad.consumption_movement.mean,
    );
    print_ratio(
        "DYAD overall consumption faster",
        "197.4x",
        lustre.consumption_total() / dyad.consumption_total(),
    );
    // Finding 2 needs the single-node DYAD baseline.
    let dyad_1node = run(
        WorkflowConfig::new(Solution::Dyad, 4, Placement::SingleNode),
        scale,
    );
    let dyad_2node = run(WorkflowConfig::new(Solution::Dyad, 4, split), scale);
    let check = mdflow::findings::finding2(&dyad_1node, &dyad_2node);
    println!(
        "\nFinding 2 ({}) holds: {} — {}",
        check.statement, check.holds, check.evidence
    );

    println!();
    print!("{}", production_chart("production time per frame", &rows));
    println!();
    print!("{}", consumption_chart("consumption time per frame", &rows));

    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("fig6", &reports_json(&rows_ref));
}
