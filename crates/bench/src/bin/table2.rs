//! Table II: stride per molecular model, chosen so every model emits a
//! frame at (approximately) the same 0.82 s cadence.

use mdsim::Model;

fn main() {
    println!("TABLE II: Stride for each molecular model");
    println!(
        "{:<11} {:>13} {:>9} {:>8} {:>14}",
        "Name", "Steps/second", "ms/step", "Stride", "Frequency (s)"
    );
    for m in Model::ALL {
        println!(
            "{:<11} {:>13.2} {:>9.2} {:>8} {:>14.2}",
            m.name(),
            m.steps_per_second(),
            m.ms_per_step(),
            m.stride(),
            m.frame_period_secs()
        );
    }
    println!();
    println!("paper Table II: strides 880/294/92/28, frequency 0.82 s for every model");
    println!(
        "(F1 ATPase recomputes to 0.79 s from the paper's own steps/s column; the paper rounds)"
    );
}
