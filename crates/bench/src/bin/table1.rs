//! Table I: the four molecular models — atoms, frame size, steps/s —
//! regenerated from `mdsim::Model` and the frame codec. With `--frames`,
//! also emits the Figure 3 series (frame bytes vs atom count) from
//! actually serialized frames.

use mdsim::{Frame, FrameTemplate, Model};

fn main() {
    let check_frames = std::env::args().any(|a| a == "--frames");
    println!("TABLE I: Targeted molecular models");
    println!(
        "{:<11} {:>10} {:>14} {:>13}",
        "Name", "Num Atoms", "Frame size", "Steps/second"
    );
    for m in Model::ALL {
        let bytes = m.frame_bytes();
        let size = if bytes < 1 << 20 {
            format!("{:.2} KiB", bytes as f64 / 1024.0)
        } else {
            format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
        };
        println!(
            "{:<11} {:>10} {:>14} {:>13.2}",
            m.name(),
            m.atoms(),
            size,
            m.steps_per_second()
        );
    }
    println!();
    println!("paper Table I: JAC 23,558 / 644.21 KiB / 1072.92; ApoA1 92,224 / 2.46 MiB / 358.22;");
    println!("               F1 327,506 / 8.75 MiB / 115.74; STMV 1,066,628 / 28.48 MiB / 34.14");

    if check_frames {
        println!("\nFigure 3 series (serialized frame bytes, verified by encoding):");
        for m in Model::ALL {
            let t = FrameTemplate::generate(m, 1);
            let segs = t.frame_segments(0);
            let encoded: u64 = segs.iter().map(|s| s.len() as u64).sum();
            assert_eq!(encoded, m.frame_bytes());
            // Decode to prove the frames are real.
            let f = Frame::decode_segments(&segs).expect("frame decodes");
            assert_eq!(f.positions.len() as u64, m.atoms());
            println!(
                "  {:<10} atoms={:>9}  frame={:>10} B",
                m.name(),
                m.atoms(),
                encoded
            );
        }
    }
}
