//! Metadata-plane sweep for the sharded KVS mesh (PR 7).
//!
//! DYAD's loose coupling funnels every producer commit and every
//! consumer synchronization probe through the KVS. This harness measures
//! what sharding that plane buys: consumer sync latency (time inside
//! `dyad_consume → dyad_fetch`, i.e. from wanting a frame's metadata to
//! holding it) and broker congestion (worst per-shard peak of queued +
//! in-service requests) as the pair count scales from 256 to 4096 and
//! the shard count from 1 to 4. A replicated leg (4 shards, R=2)
//! measures what synchronous causal-delta replication costs on top.
//!
//! The workload deliberately stresses the metadata plane: warm sync is
//! disabled (every frame re-synchronizes through a parked server-side
//! watch) and the stride runs at 80x the paper's frame rate, so each
//! pair funnels a commit + wait + ack RPC stream through the brokers
//! every ~2.5 ms and broker queueing — not producer cadence — dominates
//! the measured latency once a single broker saturates.
//! All measured quantities are *simulated* time and deterministic
//! counters: same binary + same scale knobs ⇒ byte-identical numbers on
//! any host, which is what lets CI gate on ratios with a small
//! tolerance.
//!
//! Modes:
//!
//! * `metadata_plane` — run the sweep, print a table, write
//!   `BENCH_PR7.json` (into `--out DIR`, default the current directory).
//! * `metadata_plane --check BASELINE.json` — additionally fail (exit 1)
//!   if, versus the baseline, for any pair count ≥ 1024 present in both:
//!   the 1→4-shard sync-latency improvement fell by more than
//!   `METADATA_TOLERANCE` (default 0.15), the improvement is not
//!   monotone across 1→2→4 shards, or the replicated-mode latency
//!   overhead rose above its baseline ceiling.
//!
//! Scale knobs: `METADATA_PAIRS` (comma list, default `256,1024,4096`)
//! and `METADATA_FRAMES` (default 3). The checked-in baseline is
//! captured at the CI grid (`METADATA_PAIRS=256,1024 METADATA_FRAMES=2`).

use mdflow::calibration::Calibration;
use mdflow::prelude::*;
use simcore::SimDuration;

const SHARDS: [u32; 3] = [1, 2, 4];
const SEED: u64 = 11;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn pairs_list() -> Vec<u32> {
    std::env::var("METADATA_PAIRS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect::<Vec<u32>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![256, 1024, 4096])
}

/// One measured cell of the sweep.
struct Cell {
    pairs: u32,
    shards: u32,
    replication: u32,
    /// Mean consumer sync latency per consume, milliseconds (sim time).
    sync_ms: f64,
    /// Worst per-shard peak of in-flight broker requests (queued,
    /// in service, or parked server-side watches).
    peak_queue: u64,
    /// Server-side watches served across all shards.
    waits: u64,
    /// Replication deltas shipped shard→shard.
    deltas_sent: u64,
    makespan_secs: f64,
}

fn run_cell(pairs: u32, shards: u32, replication: u32, frames: u64) -> Cell {
    let mut cal = Calibration::quiet();
    // The stock flux-broker profile (20 µs/op, 4 service threads), not
    // corona's beefier 8-thread broker: the sweep's variable is the
    // *number* of brokers, so per-broker capacity sits where a single
    // broker saturates inside the measured pair range.
    cal.kvs = kvs::KvsSpec::default();
    let mut wf = WorkflowConfig::new(
        Solution::Dyad,
        pairs,
        Placement::Split { pairs_per_node: 64 },
    )
    .with_frames(frames)
    // 80x the paper's JAC frame rate (the frequency-scaling ablation):
    // at stride 880 the MD phase dominates the consumer's wait and the
    // broker idles between frames; at stride 11 a frame arrives every
    // ~2.5 ms, the per-pair commit + wait + ack RPC stream saturates a
    // single broker past several hundred pairs, and the metadata plane — not MD
    // compute — bounds the pipeline. That is the regime a shard sweep
    // is about.
    .with_stride(11)
    .with_kvs_shards(shards)
    .with_kvs_replication(replication);
    // Re-synchronize through the KVS on every frame, not just the first.
    wf.dyad_warm_sync = false;
    let m = run_once(&wf, &cal, SEED);

    let mut sync = SimDuration::ZERO;
    let mut consumes = 0u64;
    for p in &m.consumers {
        if let Some(n) = p.node(&["dyad_consume", "dyad_fetch"]) {
            sync += n.inclusive;
            consumes += n.count;
        }
    }
    Cell {
        pairs,
        shards,
        replication,
        sync_ms: sync.as_secs_f64() * 1e3 / consumes.max(1) as f64,
        peak_queue: m.kvs.peak_queue,
        waits: m.kvs.waits,
        deltas_sent: m.kvs.deltas_sent,
        makespan_secs: m.makespan.as_secs_f64(),
    }
}

// The vendored serde_json stand-in has no `json!` macro, so build
// `Value` trees by hand through these helpers.
fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u64(v: u64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::U64(v))
}

fn num_f64(v: f64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::F64(v))
}

fn cell_json(c: &Cell) -> serde_json::Value {
    obj(vec![
        ("pairs", num_u64(c.pairs as u64)),
        ("shards", num_u64(c.shards as u64)),
        ("replication", num_u64(c.replication as u64)),
        ("sync_ms", num_f64(c.sync_ms)),
        ("peak_queue", num_u64(c.peak_queue)),
        ("waits", num_u64(c.waits)),
        ("deltas_sent", num_u64(c.deltas_sent)),
        ("makespan_secs", num_f64(c.makespan_secs)),
    ])
}

/// Latency of the `(pairs, shards, replication)` cell, if measured.
fn sync_of(cells: &[Cell], pairs: u32, shards: u32, replication: u32) -> Option<f64> {
    cells
        .iter()
        .find(|c| c.pairs == pairs && c.shards == shards && c.replication == replication)
        .map(|c| c.sync_ms)
}

fn to_json(cells: &[Cell], frames: u64) -> String {
    let pairs = pairs_list();
    // Derived ratio block: what CI gates on. `improvement_4x` is the
    // 1-shard / 4-shard sync-latency ratio per pair count (higher is
    // better); `replication_overhead` is R=2 / R=1 latency at 4 shards.
    let mut ratios = Vec::new();
    for &p in &pairs {
        let (Some(s1), Some(s4)) = (sync_of(cells, p, 1, 1), sync_of(cells, p, 4, 1)) else {
            continue;
        };
        let mut fields = vec![
            ("pairs", num_u64(p as u64)),
            ("improvement_4x", num_f64(s1 / s4.max(1e-12))),
        ];
        if let Some(r2) = sync_of(cells, p, 4, 2) {
            fields.push(("replication_overhead", num_f64(r2 / s4.max(1e-12))));
        }
        ratios.push(obj(fields));
    }
    serde_json::to_string_pretty(&obj(vec![
        (
            "bench",
            serde_json::Value::String("metadata_plane".to_string()),
        ),
        ("pr", num_u64(7)),
        ("frames", num_u64(frames)),
        ("seed", num_u64(SEED)),
        (
            "cells",
            serde_json::Value::Array(cells.iter().map(cell_json).collect()),
        ),
        ("ratios", serde_json::Value::Array(ratios)),
    ]))
    .expect("json")
}

fn check_baseline(cells: &[Cell], baseline_path: &str) -> bool {
    let tolerance: f64 = std::env::var("METADATA_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    let raw = match std::fs::read_to_string(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("metadata_plane: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let base: serde_json::Value = serde_json::from_str(&raw).expect("baseline json");
    let empty = Vec::new();
    let base_ratios = base["ratios"].as_array().unwrap_or(&empty);
    let mut ok = true;
    for &p in &pairs_list() {
        let (Some(s1), Some(s2), Some(s4)) = (
            sync_of(cells, p, 1, 1),
            sync_of(cells, p, 2, 1),
            sync_of(cells, p, 4, 1),
        ) else {
            continue;
        };
        // The scale-free claim: the metadata plane parallelizes. Gated
        // only where the single broker is actually saturated (1024+
        // pairs); small ensembles fit in one broker's service capacity
        // and sharding them is allowed to be a wash.
        if p < 1024 {
            continue;
        }
        if !(s1 >= s2 && s2 >= s4) {
            eprintln!(
                "metadata_plane: REGRESSION {p} pairs: sync latency not monotone across \
                 shards ({s1:.3} -> {s2:.3} -> {s4:.3} ms)"
            );
            ok = false;
        }
        let improvement = s1 / s4.max(1e-12);
        let base_cell = base_ratios
            .iter()
            .find(|r| r["pairs"].as_u64() == Some(p as u64));
        let Some(base_cell) = base_cell else {
            continue; // pair count not in the baseline grid
        };
        let base_improvement = base_cell["improvement_4x"].as_f64().unwrap_or(0.0);
        if base_improvement > 0.0 && improvement < base_improvement * (1.0 - tolerance) {
            eprintln!(
                "metadata_plane: REGRESSION {p} pairs: 1->4 shard improvement {improvement:.2}x \
                 vs baseline {base_improvement:.2}x (> {:.0}% below)",
                tolerance * 100.0
            );
            ok = false;
        }
        if let (Some(overhead), Some(base_overhead)) = (
            sync_of(cells, p, 4, 2).map(|r2| r2 / s4.max(1e-12)),
            base_cell["replication_overhead"].as_f64(),
        ) {
            let ceiling = base_overhead * (1.0 + tolerance);
            if overhead > ceiling {
                eprintln!(
                    "metadata_plane: REGRESSION {p} pairs: replication overhead {overhead:.2}x \
                     vs ceiling {ceiling:.2}x (baseline {base_overhead:.2}x)"
                );
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let frames = env_u64("METADATA_FRAMES", 3);
    let pairs = pairs_list();
    println!(
        "METADATA-PLANE — KVS mesh sweep (pairs {pairs:?} x shards {SHARDS:?} at {frames} frames)"
    );
    println!(
        "  {:>6} {:>7} {:>5} {:>12} {:>11} {:>10} {:>12}",
        "pairs", "shards", "R", "sync (ms)", "peak queue", "waits", "deltas sent"
    );
    let mut cells = Vec::new();
    for &p in &pairs {
        for &s in &SHARDS {
            cells.push(run_cell(p, s, 1, frames));
        }
        // Replicated leg: what synchronous causal-delta sync costs on
        // top of the best unreplicated mesh.
        cells.push(run_cell(p, 4, 2, frames));
        for c in cells.iter().skip(cells.len() - 4) {
            println!(
                "  {:>6} {:>7} {:>5} {:>12.3} {:>11} {:>10} {:>12}",
                c.pairs, c.shards, c.replication, c.sync_ms, c.peak_queue, c.waits, c.deltas_sent
            );
        }
    }

    let out_dir = flag_value("--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let out = format!("{out_dir}/BENCH_PR7.json");
    std::fs::write(&out, to_json(&cells, frames)).expect("write BENCH_PR7.json");
    println!("  [saved {out}]");
    if let Some(baseline) = flag_value("--check") {
        if !check_baseline(&cells, &baseline) {
            std::process::exit(1);
        }
        println!("  perf check vs {baseline}: OK");
    }
}
