//! Figure 7: multi-node scaling — 2 to 64 nodes, 8 to 256
//! producer-consumer pairs (8 per node), JAC, DYAD vs Lustre. DYAD's
//! producer movement is 5.3× faster, consumer movement 5.8× faster,
//! overall consumption 192.0× faster; Lustre shows extra variability at
//! 128/256 pairs from background interference.

use bench::{
    consumption_chart, print_bar, print_ratio, production_chart, reports_json, run, save_json,
    Scale,
};
use mdflow::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let split = Placement::Split { pairs_per_node: 8 };
    println!(
        "FIGURE 7 — 2..64 nodes, 8..256 pairs, JAC, {} frames, {} reps",
        scale.frames, scale.reps
    );
    let mut rows = Vec::new();
    for pairs in [8u32, 16, 32, 64, 128, 256] {
        let dyad = run(WorkflowConfig::new(Solution::Dyad, pairs, split), scale);
        let lustre = run(WorkflowConfig::new(Solution::Lustre, pairs, split), scale);
        println!("\n{pairs} pairs ({} nodes):", pairs / 8 * 2);
        print_bar(&format!("DYAD   ({pairs} pairs)"), &dyad);
        print_bar(&format!("Lustre ({pairs} pairs)"), &lustre);
        println!(
            "  variability (std/mean of production movement): DYAD {:.1}%  Lustre {:.1}%",
            100.0 * dyad.production_movement.std / dyad.production_movement.mean.max(1e-12),
            100.0 * lustre.production_movement.std / lustre.production_movement.mean.max(1e-12),
        );
        rows.push((format!("dyad-{pairs}p"), dyad));
        rows.push((format!("lustre-{pairs}p"), lustre));
    }
    let dyad = &rows[rows.len() - 2].1;
    let lustre = &rows[rows.len() - 1].1;
    println!("\nheadline (256 pairs):");
    print_ratio(
        "DYAD producer data movement faster",
        "5.3x",
        lustre.production_movement.mean / dyad.production_movement.mean,
    );
    print_ratio(
        "DYAD consumer data movement faster",
        "5.8x",
        lustre.consumption_movement.mean / dyad.consumption_movement.mean,
    );
    print_ratio(
        "DYAD overall consumption faster",
        "192.0x",
        lustre.consumption_total() / dyad.consumption_total(),
    );
    let check = mdflow::findings::finding3(dyad, lustre);
    println!(
        "\nFinding 3 ({}) holds: {} — {}",
        check.statement, check.holds, check.evidence
    );

    println!();
    print!("{}", production_chart("production time per frame", &rows));
    println!();
    print!("{}", consumption_chart("consumption time per frame", &rows));

    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("fig7", &reports_json(&rows_ref));
}
