//! Calibration probe: prints the headline ratios of Figures 5, 6 and 8
//! at reduced scale so the testbed constants can be tuned quickly.
//! Not part of the paper's experiment set.

use bench::{print_ratio, run, Scale};
use mdflow::prelude::*;

fn main() {
    let scale = Scale {
        reps: std::env::var("MDFLOW_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3),
        frames: std::env::var("MDFLOW_FRAMES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128),
    };
    println!(
        "calibration probe at reps={} frames={}",
        scale.reps, scale.frames
    );

    // Fig 5: single node, JAC, DYAD vs XFS, 4 pairs.
    let dyad1 = run(
        WorkflowConfig::new(Solution::Dyad, 4, Placement::SingleNode),
        scale,
    );
    let xfs = run(
        WorkflowConfig::new(Solution::Xfs, 4, Placement::SingleNode),
        scale,
    );
    println!("\n[fig5] single node, JAC, 4 pairs");
    print_ratio(
        "DYAD production slower than XFS",
        "1.4x",
        dyad1.production_total() / xfs.production_total(),
    );
    print_ratio(
        "DYAD consumption faster than XFS (overall)",
        "192.9x",
        xfs.consumption_total() / dyad1.consumption_total(),
    );
    println!(
        "  DYAD prod {:.0}us (move {:.0}us) | XFS prod {:.0}us | DYAD cons {:.2}ms | XFS cons {:.1}ms",
        dyad1.production_total() * 1e6,
        dyad1.production_movement.mean * 1e6,
        xfs.production_total() * 1e6,
        dyad1.consumption_total() * 1e3,
        xfs.consumption_total() * 1e3
    );

    // Fig 6: two nodes, JAC, DYAD vs Lustre, 8 pairs.
    let split = Placement::Split { pairs_per_node: 8 };
    let dyad2 = run(WorkflowConfig::new(Solution::Dyad, 8, split), scale);
    let lustre2 = run(WorkflowConfig::new(Solution::Lustre, 8, split), scale);
    println!("\n[fig6] two nodes, JAC, 8 pairs");
    print_ratio(
        "DYAD production faster than Lustre",
        "7.5x",
        lustre2.production_total() / dyad2.production_total(),
    );
    print_ratio(
        "DYAD consumer movement faster than Lustre",
        "6.9x",
        lustre2.consumption_movement.mean / dyad2.consumption_movement.mean,
    );
    print_ratio(
        "DYAD overall consumption faster",
        "197.4x",
        lustre2.consumption_total() / dyad2.consumption_total(),
    );
    println!(
        "  DYAD prod {:.0}us | Lustre prod {:.0}us | DYAD cons-move {:.2}ms | Lustre cons-move {:.2}ms",
        dyad2.production_total() * 1e6,
        lustre2.production_total() * 1e6,
        dyad2.consumption_movement.mean * 1e3,
        lustre2.consumption_movement.mean * 1e3
    );

    // Fig 8 extremes: 2 nodes, 16 pairs, JAC vs STMV.
    let split16 = Placement::Split { pairs_per_node: 16 };
    for model in [Model::Jac, Model::Stmv] {
        let d = run(
            WorkflowConfig::new(Solution::Dyad, 16, split16).with_model(model),
            scale,
        );
        let l = run(
            WorkflowConfig::new(Solution::Lustre, 16, split16).with_model(model),
            scale,
        );
        println!("\n[fig8] 2 nodes, 16 pairs, {model}");
        print_ratio(
            "DYAD production movement faster",
            if model == Model::Jac { "2.1x" } else { "6.3x" },
            l.production_movement.mean / d.production_movement.mean,
        );
        print_ratio(
            "DYAD consumption movement faster",
            if model == Model::Jac { "1.6x" } else { "6.0x" },
            l.consumption_movement.mean / d.consumption_movement.mean,
        );
        print_ratio(
            "DYAD overall consumption faster",
            if model == Model::Jac {
                "333.8x"
            } else {
                "121.0x"
            },
            l.consumption_total() / d.consumption_total(),
        );
        println!(
            "  DYAD prod-move {:.2}ms | Lustre prod-move {:.2}ms | DYAD cons-move {:.2}ms | Lustre cons-move {:.2}ms",
            d.production_movement.mean * 1e3,
            l.production_movement.mean * 1e3,
            d.consumption_movement.mean * 1e3,
            l.consumption_movement.mean * 1e3
        );
    }
}
