//! Figure 5: single node, JAC, DYAD vs XFS, ensembles of 1/2/4 pairs.
//! (a) production time (DYAD 1.4× slower due to namespace management),
//! (b) consumption time (DYAD 192.9× faster overall thanks to adaptive
//! synchronization).

use bench::{
    consumption_chart, print_bar, print_ratio, production_chart, reports_json, run, save_json,
    Scale,
};
use mdflow::prelude::*;

fn main() {
    let scale = Scale::from_env();
    println!(
        "FIGURE 5 — single node, JAC, stride 880, {} frames, {} reps",
        scale.frames, scale.reps
    );
    let mut rows = Vec::new();
    let mut last = None;
    for pairs in [1u32, 2, 4] {
        let dyad = run(
            WorkflowConfig::new(Solution::Dyad, pairs, Placement::SingleNode),
            scale,
        );
        let xfs = run(
            WorkflowConfig::new(Solution::Xfs, pairs, Placement::SingleNode),
            scale,
        );
        println!("\n{pairs} pair(s):");
        print_bar(&format!("DYAD  ({pairs} pairs)"), &dyad);
        print_bar(&format!("XFS   ({pairs} pairs)"), &xfs);
        rows.push((format!("dyad-{pairs}p"), dyad));
        rows.push((format!("xfs-{pairs}p"), xfs));
        last = Some(pairs);
    }
    let _ = last;
    // Headline ratios at the largest ensemble (4 pairs).
    let dyad = &rows[rows.len() - 2].1;
    let xfs = &rows[rows.len() - 1].1;
    println!("\nheadline (4 pairs):");
    print_ratio(
        "DYAD production slower than XFS",
        "1.4x",
        dyad.production_total() / xfs.production_total(),
    );
    print_ratio(
        "DYAD overall consumption faster than XFS",
        "192.9x",
        xfs.consumption_total() / dyad.consumption_total(),
    );
    let check = mdflow::findings::finding1(dyad, xfs);
    println!(
        "\nFinding 1 ({}) holds: {} — {}",
        check.statement, check.holds, check.evidence
    );

    println!();
    print!("{}", production_chart("production time per frame", &rows));
    println!();
    print!("{}", consumption_chart("consumption time per frame", &rows));

    let rows_ref: Vec<(String, &StudyReport)> = rows.iter().map(|(l, r)| (l.clone(), r)).collect();
    save_json("fig5", &reports_json(&rows_ref));
}
