//! `streaming_fanout` — the PR 10 crossover bench: SST-style streaming
//! M:N groups vs the paper's three backends.
//!
//! Two sweeps on an oversubscribed leaf/spine fabric:
//!
//! * **fan-out** K ∈ {1, 2, 4}: streaming runs `STREAM_GROUPS` groups
//!   of 1 publisher → K subscribers; each traditional backend runs
//!   `STREAM_GROUPS × K` independent 1:1 pairs — the only way a
//!   file-per-frame backend delivers every frame to K consumers is K
//!   full pipelines (see EXPERIMENTS.md for the honest-A/B caveats:
//!   this hands the baselines K independent producers, which *favors*
//!   them on the production side).
//! * **fan-in** K = 4: streaming runs K publishers → 1 reducer per
//!   group with a binary reduction tree; the baselines again run K
//!   independent pairs (they have no reduce stage — their consumers
//!   stop at per-leaf analytics).
//!
//! All costs are compared **per delivered frame** (group frames ×
//! fan-out/fan-in), which normalizes away the shape difference.
//!
//! Every streaming point is run at 3 seeds × workers {1, 2}; any
//! workers=2 drift from the workers=1 serialized report is a hard
//! failure (exit 1) regardless of `--enforce`.
//!
//! Modes / knobs:
//!
//! * `streaming_fanout [--out DIR]` — run both sweeps, print the
//!   crossover table, write `BENCH_PR10.json`.
//! * `--enforce` (or `STREAM_ENFORCE=1`) — additionally gate the
//!   scale-free ratios: streaming(fanout=1) within
//!   `STREAM_DYAD_FACTOR` (default 2.0) of DYAD per delivered frame;
//!   per-delivered-frame consumption at the top fan-out within
//!   `STREAM_K_FACTOR` (default 2.0) of the fanout=1 point; streaming
//!   cheaper than both manual-sync baselines at every K; the fan-in
//!   makespan within `STREAM_FANIN_FACTOR` (default 2.0) of the DYAD
//!   baseline's.
//! * `STREAM_GROUPS` (default 8), `STREAM_FRAMES` (default 12) —
//!   sweep scale (CI runs the defaults).

use bench::{fmt_secs, save_json};
use mdflow::prelude::*;

/// Fixed seeds for the byte-stability sweep (mirrored in CI).
const SEEDS: [u64; 3] = [11, 42, 20240807];

/// Fan-out axis of the crossover sweep; the last K is also the fan-in K.
const FANOUTS: [u32; 3] = [1, 2, 4];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The shared testbed: Corona calibration on a radix-8 leaf/spine at
/// 2:1 oversubscription, 4 processes per node so the M:N groups span
/// leaves.
fn calibration() -> Calibration {
    let mut cal = Calibration::corona();
    cal.fabric = cal.fabric.with_topology(TopologySpec::LeafSpine {
        radix: 8,
        oversubscription: 2.0,
    });
    cal
}

/// One reduced sweep point.
struct Row {
    label: String,
    solution: String,
    /// "fanout" | "fanin" | "baseline".
    shape: &'static str,
    k: u32,
    /// Frames delivered to analytics per repetition.
    delivered: u64,
    report: StudyReport,
    /// Per-delivered-frame consumption total, seconds.
    cons_delivered: f64,
    /// Per-delivered-frame production total, seconds.
    prod_delivered: f64,
}

/// Run `wf` at the 3 seeds (workers = 1 for the reported numbers) and
/// verify the workers = 2 replay of every seed is byte-identical.
/// Returns the reduced report and whether the identity held.
fn run_point(wf: &WorkflowConfig, cal: &Calibration) -> (StudyReport, bool) {
    let mut runs = Vec::new();
    let mut stable = true;
    for &seed in &SEEDS {
        let mut reports = Vec::new();
        let mut kept: Option<RunMetrics> = None;
        for workers in [1usize, 2] {
            let snap = ClusterSnapshot::prepare(wf, cal, seed ^ 0x7E3A).with_workers(workers);
            let mut arena = RunArena::new();
            let (m, _) = run_once_warm(&snap, seed, &mut arena);
            reports.push(report_bytes(&m));
            if workers == 1 {
                kept = Some(m);
            }
        }
        if reports[0] != reports[1] {
            eprintln!(
                "streaming_fanout: VERIFY FAIL {:?} seed {seed}: workers=2 drifted\n  \
                 w1: {}\n  w2: {}",
                wf.solution, reports[0], reports[1]
            );
            stable = false;
        }
        runs.push(kept.expect("workers=1 run kept"));
    }
    (StudyReport::from_runs(wf, &runs), stable)
}

/// Canonical serialized report for the worker/seed identity check.
fn report_bytes(m: &RunMetrics) -> String {
    let staging = serde_json::to_string(&m.staging).expect("staging json");
    let streaming = serde_json::to_string(&m.streaming).expect("streaming json");
    format!(
        "{{\"makespan_ns\":{},\"events\":{},\"staging\":{staging},\
         \"streaming\":{streaming},\"kvs_commits\":{},\"kvs_waits\":{}}}",
        m.makespan.nanos(),
        m.events,
        m.kvs.commits,
        m.kvs.waits,
    )
}

// Hand-built `Value` trees: the vendored serde_json has no `json!`.
fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u64(v: u64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::U64(v))
}

fn num_f64(v: f64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::F64(v))
}

fn s(v: &str) -> serde_json::Value {
    serde_json::Value::String(v.to_string())
}

fn to_json(rows: &[Row], groups: u64, frames: u64) -> String {
    let points: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            obj(vec![
                ("label", s(&r.label)),
                ("solution", s(&r.solution)),
                ("shape", s(r.shape)),
                ("k", num_u64(r.k as u64)),
                ("delivered_frames", num_u64(r.delivered)),
                ("makespan_mean_s", num_f64(r.report.makespan.mean)),
                ("makespan_std_s", num_f64(r.report.makespan.std)),
                ("prod_per_delivered_s", num_f64(r.prod_delivered)),
                ("cons_per_delivered_s", num_f64(r.cons_delivered)),
                (
                    "cons_idle_per_frame_s",
                    num_f64(r.report.consumption_idle.mean),
                ),
                ("window_stalls", num_f64(r.report.window_stalls.mean)),
                (
                    "window_stall_secs",
                    num_f64(r.report.window_stall_secs.mean),
                ),
                ("group_sync_secs", num_f64(r.report.group_sync_secs.mean)),
            ])
        })
        .collect();
    serde_json::to_string_pretty(&obj(vec![
        ("bench", s("streaming_fanout")),
        ("pr", num_u64(10)),
        ("groups", num_u64(groups)),
        ("frames", num_u64(frames)),
        (
            "seeds",
            serde_json::Value::Array(SEEDS.iter().map(|&x| num_u64(x)).collect()),
        ),
        ("points", serde_json::Value::Array(points)),
    ]))
    .expect("json")
}

/// Scale-free / crossover gates, anchored inside the sweep itself.
fn enforce(rows: &[Row]) -> bool {
    let dyad_factor = env_f64("STREAM_DYAD_FACTOR", 2.0);
    let k_factor = env_f64("STREAM_K_FACTOR", 2.0);
    let fanin_factor = env_f64("STREAM_FANIN_FACTOR", 2.0);
    let find = |shape: &str, sol: &str, k: u32| {
        rows.iter()
            .find(|r| r.shape == shape && r.solution == sol && r.k == k)
            .unwrap_or_else(|| panic!("missing row {shape}/{sol}/{k}"))
    };
    let mut ok = true;
    // Gate 1: fanout=1 stays in DYAD's regime per delivered frame.
    let s1 = find("fanout", "streaming", 1);
    let d1 = find("baseline", "dyad", 1);
    let r = s1.cons_delivered / d1.cons_delivered.max(1e-12);
    if r > dyad_factor {
        eprintln!(
            "streaming_fanout: GATE FAIL fanout=1 consumption {:.2}x DYAD (allowed {dyad_factor})",
            r
        );
        ok = false;
    }
    // Gate 2: per-delivered-frame consumption is scale-free in K.
    let top = find("fanout", "streaming", *FANOUTS.last().unwrap());
    let rk = top.cons_delivered / s1.cons_delivered.max(1e-12);
    if rk > k_factor {
        eprintln!(
            "streaming_fanout: GATE FAIL fanout={} consumption {:.2}x the fanout=1 point \
             (allowed {k_factor})",
            top.k, rk
        );
        ok = false;
    }
    // Gate 3: crossover — streaming beats both manual-sync baselines
    // per delivered frame at every K.
    for &k in &FANOUTS {
        let sk = find("fanout", "streaming", k);
        for sol in ["xfs", "lustre"] {
            let b = find("baseline", sol, k);
            if sk.cons_delivered >= b.cons_delivered {
                eprintln!(
                    "streaming_fanout: GATE FAIL fanout={k}: streaming {} per delivered frame \
                     not below {sol} {}",
                    fmt_secs(sk.cons_delivered),
                    fmt_secs(b.cons_delivered)
                );
                ok = false;
            }
        }
    }
    // Gate 4: the fan-in reduction finishes in DYAD's ballpark.
    let fin = find("fanin", "streaming", *FANOUTS.last().unwrap());
    let base = find("baseline", "dyad", *FANOUTS.last().unwrap());
    let rm = fin.report.makespan.mean / base.report.makespan.mean.max(1e-12);
    if rm > fanin_factor {
        eprintln!(
            "streaming_fanout: GATE FAIL fanin={}: makespan {:.2}x the DYAD baseline \
             (allowed {fanin_factor})",
            fin.k, rm
        );
        ok = false;
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let groups = env_u64("STREAM_GROUPS", 8) as u32;
    let frames = env_u64("STREAM_FRAMES", 12);
    let cal = calibration();
    let split = Placement::Split { pairs_per_node: 4 };
    println!(
        "STREAMING FAN-OUT — crossover sweep, {groups} groups × {frames} frames, \
         {} seeds × workers {{1,2}}",
        SEEDS.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut stable = true;
    let mut push = |label: String,
                    solution: &str,
                    shape: &'static str,
                    k: u32,
                    wf: WorkflowConfig,
                    stable: &mut bool| {
        let (report, ok) = run_point(&wf, &cal);
        *stable &= ok;
        let delivered = u64::from(groups) * u64::from(k) * frames;
        // Report normalization is per (wf.pairs × frames); rescale to
        // per *delivered* frame so M:N groups and 1:1 pipelines
        // compare on the same axis.
        let per_frame = wf.pairs as f64 * frames as f64;
        let scale = per_frame / delivered as f64;
        rows.push(Row {
            label,
            solution: solution.to_string(),
            shape,
            k,
            delivered,
            cons_delivered: (report.consumption_movement.mean + report.consumption_idle.mean)
                * scale,
            prod_delivered: (report.production_movement.mean + report.production_idle.mean) * scale,
            report,
        });
    };

    for &k in &FANOUTS {
        let wf = WorkflowConfig::new(Solution::Streaming, groups, split)
            .with_frames(frames)
            .with_fanout(k);
        push(
            format!("streaming-1to{k}"),
            "streaming",
            "fanout",
            k,
            wf,
            &mut stable,
        );
        for (sol, name) in [
            (Solution::Dyad, "dyad"),
            (Solution::Xfs, "xfs"),
            (Solution::Lustre, "lustre"),
        ] {
            let placement = if sol == Solution::Xfs {
                Placement::SingleNode
            } else {
                split
            };
            let wf = WorkflowConfig::new(sol, groups * k, placement).with_frames(frames);
            push(
                format!("{name}-{}x1to1", groups * k),
                name,
                "baseline",
                k,
                wf,
                &mut stable,
            );
        }
    }
    // Fan-in leg: K publishers → 1 reducer per group at the top K.
    let k = *FANOUTS.last().unwrap();
    let wf = WorkflowConfig::new(Solution::Streaming, groups, split)
        .with_frames(frames)
        .with_fanin(k);
    push(
        format!("streaming-{k}to1"),
        "streaming",
        "fanin",
        k,
        wf,
        &mut stable,
    );

    println!(
        "\n  {:<22} {:>2} {:>10} {:>14} {:>14} {:>12} {:>8}",
        "point", "K", "delivered", "prod/frame", "cons/frame", "makespan", "stalls"
    );
    for r in &rows {
        println!(
            "  {:<22} {:>2} {:>10} {:>14} {:>14} {:>12} {:>8.1}",
            r.label,
            r.k,
            r.delivered,
            fmt_secs(r.prod_delivered),
            fmt_secs(r.cons_delivered),
            fmt_secs(r.report.makespan.mean),
            r.report.window_stalls.mean,
        );
    }
    // Crossover summary: streaming vs each baseline, per delivered frame.
    println!("\n  consumption per delivered frame, streaming ÷ baseline:");
    for &k in &FANOUTS {
        let sk = rows
            .iter()
            .find(|r| r.shape == "fanout" && r.k == k)
            .expect("streaming row");
        let ratios: Vec<String> = ["dyad", "xfs", "lustre"]
            .iter()
            .map(|sol| {
                let b = rows
                    .iter()
                    .find(|r| r.shape == "baseline" && r.solution == *sol && r.k == k)
                    .expect("baseline row");
                format!(
                    "{sol} {:.3}x",
                    sk.cons_delivered / b.cons_delivered.max(1e-12)
                )
            })
            .collect();
        println!("    fanout={k}: {}", ratios.join(", "));
    }

    let out_dir = flag_value("--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let out = format!("{out_dir}/BENCH_PR10.json");
    std::fs::write(&out, to_json(&rows, groups as u64, frames)).expect("write BENCH_PR10.json");
    println!("  [saved {out}]");
    save_json("streaming_fanout", &to_json(&rows, groups as u64, frames));

    if !stable {
        std::process::exit(1);
    }
    let enforce_requested = args.iter().any(|a| a == "--enforce")
        || std::env::var("STREAM_ENFORCE").is_ok_and(|v| v == "1");
    if enforce_requested {
        if !enforce(&rows) {
            std::process::exit(1);
        }
        println!("  streaming gates: OK");
    }
}
