//! Wall-clock perf harness for the campaign executor (PR 6).
//!
//! Measures the same study grid three ways — cold-serial (every run
//! pays full setup, as `run_once` loops did before the executor),
//! warm-serial (one worker, shared snapshots + recycled arena) and
//! warm-parallel (all workers) — plus a single-run cold-vs-warm A/B on
//! the setup-heaviest workload (STMV, whose ~30 MB frame template
//! dominates cold setup). Emits `BENCH_PR6.json` with runs/minute, the
//! setup-vs-sim split, and the amortization ratios so CI can gate on
//! the warm-start win staying real.
//!
//! Modes:
//!
//! * `campaign` — run the grid, print a table, write `BENCH_PR6.json`
//!   (into `--out DIR`, default the current directory).
//! * `campaign --check BASELINE.json` — additionally fail (exit 1) if
//!   the warm-over-cold ratio, the single-run improvement, the
//!   warm-serial throughput floor, or the setup-fraction ceiling
//!   regressed more than `CAMPAIGN_TOLERANCE` (default 0.25) versus the
//!   baseline.
//!
//! Scale knobs: `CAMPAIGN_REPS` (default 4) and `CAMPAIGN_FRAMES`
//! (default 16). The checked-in baseline is captured at the CI grid
//! (`CAMPAIGN_REPS=3 CAMPAIGN_FRAMES=12`).
//!
//! Note on parallel speedup: the recorded `parallel_speedup` is
//! `min(jobs, cores)`-bound; on a single-core host it is ~1 and only
//! the warm-start ratios are meaningful, which is why the CI gates are
//! ratio-based rather than parallel-speedup-based.

use std::time::Instant;

use mdflow::calibration::Calibration;
use mdflow::prelude::*;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn rss_peak_bytes() -> u64 {
    // VmHWM is linux-only; other platforms report 0 rather than lying.
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
            })
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// The measured campaign grid: DYAD vs Lustre at two JAC ensemble sizes
/// (the fig6 shape the suite driver spends most of its time in) plus
/// one STMV cell per solution, whose template synthesis is what cold
/// setup mostly pays for across fig8/fig9/fig12.
fn grid(reps: u32, frames: u64) -> Vec<StudyConfig> {
    let split = Placement::Split { pairs_per_node: 8 };
    let mut studies = Vec::new();
    for solution in [Solution::Dyad, Solution::Lustre] {
        for pairs in [4u32, 8] {
            studies.push(
                StudyConfig::paper(WorkflowConfig::new(solution, pairs, split).with_frames(frames))
                    .with_repetitions(reps),
            );
        }
        studies.push(
            StudyConfig::paper(
                WorkflowConfig::new(solution, 4, split)
                    .with_model(Model::Stmv)
                    .with_frames(frames.min(4)),
            )
            .with_repetitions(reps),
        );
    }
    studies
}

struct CampaignNumbers {
    runs: usize,
    events: u64,
    cold_serial_rpm: f64,
    warm_serial_rpm: f64,
    warm_parallel_rpm: f64,
    parallel_jobs: usize,
    setup_fraction_warm: f64,
}

/// Timing rounds per mode; each mode's wall time is the best round, so
/// scheduler interference on a shared host inflates a round, not the
/// recorded number. `CAMPAIGN_ROUNDS` overrides (default 3).
fn rounds() -> u64 {
    env_u64("CAMPAIGN_ROUNDS", 3).max(1)
}

fn measure_campaign(studies: &[StudyConfig]) -> CampaignNumbers {
    // Untimed warmup: fault in code pages, grow the allocator and warm
    // the thread-local interners before any timed mode.
    let _ = run_once(&studies[0].workflow, &studies[0].calibration, 0x9E37);

    // Cold-serial: the pre-executor behavior — every run rebuilds its
    // snapshot (template included) and a fresh executor.
    let mut cold_secs = f64::INFINITY;
    let mut events = 0u64;
    let mut runs = 0usize;
    for _ in 0..rounds() {
        let t0 = Instant::now();
        events = 0;
        runs = 0;
        for study in studies {
            for rep in 0..study.repetitions as u64 {
                let m = run_once(&study.workflow, &study.calibration, study.seed + rep);
                events += m.events;
                runs += 1;
            }
        }
        cold_secs = cold_secs.min(t0.elapsed().as_secs_f64());
    }

    // Warm-serial: one worker, shared snapshots, recycled arena.
    let mut warm_secs = f64::INFINITY;
    let mut setup_fraction_warm = 1.0;
    let mut warm_reports = Vec::new();
    for _ in 0..rounds() {
        let t0 = Instant::now();
        let (reports, stats) = run_studies_jobs(studies, 1);
        let secs = t0.elapsed().as_secs_f64();
        if secs < warm_secs {
            warm_secs = secs;
            setup_fraction_warm = stats.setup_fraction();
        }
        warm_reports = reports;
    }

    // Warm-parallel: every available worker.
    let jobs = default_jobs();
    let mut par_secs = f64::INFINITY;
    let mut par_reports = Vec::new();
    for _ in 0..rounds() {
        let t0 = Instant::now();
        let (reports, _) = run_studies_jobs(studies, jobs);
        par_secs = par_secs.min(t0.elapsed().as_secs_f64());
        par_reports = reports;
    }

    // The executor is supposed to be invisible in the results; a bench
    // run that quietly diverged would gate on garbage.
    for (a, b) in warm_reports.iter().zip(&par_reports) {
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "parallel campaign diverged from serial"
        );
    }

    let rpm = |runs: usize, secs: f64| runs as f64 * 60.0 / secs.max(1e-9);
    CampaignNumbers {
        runs,
        events,
        cold_serial_rpm: rpm(runs, cold_secs),
        warm_serial_rpm: rpm(runs, warm_secs),
        warm_parallel_rpm: rpm(runs, par_secs),
        parallel_jobs: jobs,
        setup_fraction_warm,
    }
}

/// One point of the `--jobs` sweep: the same warm campaign at a fixed
/// worker count.
struct JobsPoint {
    jobs: usize,
    rpm: f64,
}

/// Measure the warm campaign at 1, 2, 4 and `default_jobs()` workers
/// (deduplicated). On a multi-core host this shows the real parallel
/// speedup; on a 1-vCPU host every point lands within noise of jobs=1,
/// which is exactly the honest answer (PR 6's speedup claim is
/// `min(jobs, cores)`-bound and this column proves which regime the
/// recording host was in).
fn measure_jobs_sweep(studies: &[StudyConfig], runs: usize) -> Vec<JobsPoint> {
    let mut list = vec![1usize, 2, 4, default_jobs()];
    list.sort_unstable();
    list.dedup();
    list.into_iter()
        .map(|jobs| {
            let mut secs = f64::INFINITY;
            for _ in 0..rounds() {
                let t0 = Instant::now();
                let _ = run_studies_jobs(studies, jobs);
                secs = secs.min(t0.elapsed().as_secs_f64());
            }
            JobsPoint {
                jobs,
                rpm: runs as f64 * 60.0 / secs.max(1e-9),
            }
        })
        .collect()
}

struct SingleRun {
    model: Model,
    cold_secs: f64,
    warm_secs: f64,
}

impl SingleRun {
    fn improvement(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// Single-run A/B on the setup-heaviest workload: STMV cold setup
/// synthesizes a ~30 MB frame template per run; warm runs share it
/// through the snapshot and recycle the executor arena.
fn measure_single_run() -> SingleRun {
    let model = Model::Stmv;
    let wf = WorkflowConfig::new(Solution::Dyad, 4, Placement::Split { pairs_per_node: 8 })
        .with_model(model)
        .with_frames(2);
    let cal = Calibration::corona();
    let n = 3u64;
    let _ = run_once(&wf, &cal, 0xA11CE); // untimed warmup

    let mut cold_secs = f64::INFINITY;
    for _ in 0..rounds() {
        let t0 = Instant::now();
        for i in 0..n {
            let _ = run_once(&wf, &cal, 0xA11CE + i);
        }
        cold_secs = cold_secs.min(t0.elapsed().as_secs_f64() / n as f64);
    }

    // Snapshot preparation is inside the timed region: the warm number
    // is the honest amortized per-run cost including one-time setup.
    let mut warm_secs = f64::INFINITY;
    for _ in 0..rounds() {
        let t0 = Instant::now();
        let snap = ClusterSnapshot::prepare(&wf, &cal, 0xA11CE ^ 0x7E3A);
        let mut arena = RunArena::new();
        for i in 0..n {
            let _ = run_once_warm(&snap, 0xA11CE + i, &mut arena);
        }
        warm_secs = warm_secs.min(t0.elapsed().as_secs_f64() / n as f64);
    }
    SingleRun {
        model,
        cold_secs,
        warm_secs,
    }
}

// The vendored serde_json stand-in has no `json!` macro, so build
// `Value` trees by hand through these helpers.
fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u64(v: u64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::U64(v))
}

fn num_f64(v: f64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::F64(v))
}

fn to_json(
    c: &CampaignNumbers,
    s: &SingleRun,
    sweep: &[JobsPoint],
    reps: u64,
    frames: u64,
) -> String {
    let base_rpm = sweep.first().map(|p| p.rpm).unwrap_or(0.0);
    let sweep_rows: Vec<serde_json::Value> = sweep
        .iter()
        .map(|p| {
            obj(vec![
                ("jobs", num_u64(p.jobs as u64)),
                ("runs_per_min", num_f64(p.rpm)),
                ("speedup_vs_1", num_f64(p.rpm / base_rpm.max(1e-9))),
            ])
        })
        .collect();
    serde_json::to_string_pretty(&obj(vec![
        ("bench", serde_json::Value::String("campaign".to_string())),
        ("pr", num_u64(6)),
        ("reps", num_u64(reps)),
        ("frames", num_u64(frames)),
        ("cores", num_u64(rayon::current_num_threads() as u64)),
        (
            "campaign",
            obj(vec![
                ("runs", num_u64(c.runs as u64)),
                ("events", num_u64(c.events)),
                ("cold_serial_runs_per_min", num_f64(c.cold_serial_rpm)),
                ("warm_serial_runs_per_min", num_f64(c.warm_serial_rpm)),
                ("warm_parallel_runs_per_min", num_f64(c.warm_parallel_rpm)),
                ("parallel_jobs", num_u64(c.parallel_jobs as u64)),
                (
                    "parallel_speedup",
                    num_f64(c.warm_parallel_rpm / c.warm_serial_rpm.max(1e-9)),
                ),
                (
                    "warm_over_cold",
                    num_f64(c.warm_serial_rpm / c.cold_serial_rpm.max(1e-9)),
                ),
                ("setup_fraction_warm", num_f64(c.setup_fraction_warm)),
            ]),
        ),
        ("jobs_sweep", serde_json::Value::Array(sweep_rows)),
        (
            "single_run",
            obj(vec![
                (
                    "model",
                    serde_json::Value::String(s.model.name().to_string()),
                ),
                ("cold_secs", num_f64(s.cold_secs)),
                ("warm_secs", num_f64(s.warm_secs)),
                ("improvement", num_f64(s.improvement())),
            ]),
        ),
        ("peak_rss_bytes", num_u64(rss_peak_bytes())),
    ]))
    .expect("json")
}

fn check_baseline(c: &CampaignNumbers, s: &SingleRun, baseline_path: &str) -> bool {
    let tolerance: f64 = std::env::var("CAMPAIGN_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let raw = match std::fs::read_to_string(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let base: serde_json::Value = serde_json::from_str(&raw).expect("baseline json");
    let mut ok = true;
    // Ratio gates are machine-independent: they compare this host
    // against itself. The throughput floor follows hotpath's convention
    // of tolerance-gating against the checked-in CI-grid baseline.
    let mut gate_floor = |what: &str, cur: f64, base: f64| {
        if base > 0.0 && cur < base * (1.0 - tolerance) {
            eprintln!(
                "campaign: REGRESSION {what}: {cur:.2} vs baseline {base:.2} (> {:.0}% below)",
                tolerance * 100.0
            );
            ok = false;
        }
    };
    gate_floor(
        "warm_over_cold",
        c.warm_serial_rpm / c.cold_serial_rpm.max(1e-9),
        base["campaign"]["warm_over_cold"].as_f64().unwrap_or(0.0),
    );
    gate_floor(
        "single_run.improvement",
        s.improvement(),
        base["single_run"]["improvement"].as_f64().unwrap_or(0.0),
    );
    gate_floor(
        "warm_serial_runs_per_min",
        c.warm_serial_rpm,
        base["campaign"]["warm_serial_runs_per_min"]
            .as_f64()
            .unwrap_or(0.0),
    );
    let base_fraction = base["campaign"]["setup_fraction_warm"]
        .as_f64()
        .unwrap_or(1.0);
    let ceiling = (base_fraction * (1.0 + tolerance)).min(1.0);
    if c.setup_fraction_warm > ceiling {
        eprintln!(
            "campaign: REGRESSION setup_fraction_warm: {:.3} vs ceiling {:.3} (baseline {:.3})",
            c.setup_fraction_warm, ceiling, base_fraction
        );
        ok = false;
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let reps = env_u64("CAMPAIGN_REPS", 4) as u32;
    let frames = env_u64("CAMPAIGN_FRAMES", 16);
    let studies = grid(reps, frames);
    println!(
        "CAMPAIGN — executor wall-clock benchmark ({} studies × {reps} reps at {frames} frames)",
        studies.len()
    );
    let c = measure_campaign(&studies);
    println!(
        "  cold-serial   {:>10.1} runs/min   (per-run snapshot + fresh executor)",
        c.cold_serial_rpm
    );
    println!(
        "  warm-serial   {:>10.1} runs/min   ({:.1}x cold; setup fraction {:.1}%)",
        c.warm_serial_rpm,
        c.warm_serial_rpm / c.cold_serial_rpm.max(1e-9),
        c.setup_fraction_warm * 100.0
    );
    println!(
        "  warm-parallel {:>10.1} runs/min   ({:.2}x serial on {} worker(s))",
        c.warm_parallel_rpm,
        c.warm_parallel_rpm / c.warm_serial_rpm.max(1e-9),
        c.parallel_jobs
    );
    let sweep = measure_jobs_sweep(&studies, c.runs);
    println!(
        "  jobs sweep ({} core(s)):{}",
        rayon::current_num_threads(),
        if rayon::current_num_threads() == 1 {
            "  [1-vCPU host: speedups are bound to ~1x]"
        } else {
            ""
        }
    );
    let sweep_base = sweep.first().map(|p| p.rpm).unwrap_or(0.0);
    for p in &sweep {
        println!(
            "    --jobs {:<2} {:>10.1} runs/min   ({:.2}x vs --jobs 1)",
            p.jobs,
            p.rpm,
            p.rpm / sweep_base.max(1e-9)
        );
    }
    let s = measure_single_run();
    println!(
        "  single run ({}, 8 pairs): cold {:.3} s -> warm {:.3} s ({:.2}x)",
        s.model,
        s.cold_secs,
        s.warm_secs,
        s.improvement()
    );
    println!("  peak RSS: {} MiB", rss_peak_bytes() / (1 << 20));

    let out_dir = flag_value("--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let out = format!("{out_dir}/BENCH_PR6.json");
    std::fs::write(&out, to_json(&c, &s, &sweep, reps as u64, frames))
        .expect("write BENCH_PR6.json");
    println!("  [saved {out}]");
    if let Some(baseline) = flag_value("--check") {
        if !check_baseline(&c, &s, &baseline) {
            std::process::exit(1);
        }
        println!("  perf check vs {baseline}: OK");
    }
}
