//! Run the entire experiment suite — the Figure 5-12 sweeps plus the
//! capacity and chaos studies — in-process through the parallel
//! campaign executor, instead of invoking each regenerator binary in
//! sequence. Every study in the grid is collected up front and pushed
//! through one `run_studies_jobs` call, so the whole suite shares one
//! worker pool, one warm arena per worker, and one snapshot per sweep
//! point.
//!
//! Flags/env:
//!
//! * `--jobs N` — worker threads (default: all cores, `MDFLOW_JOBS`
//!   overrides);
//! * `MDFLOW_REPS` / `MDFLOW_FRAMES` — experiment scale, as for the
//!   individual binaries;
//! * `MDFLOW_CHAOS_SEED` / `MDFLOW_CHAOS_EVENTS` — the chaos plan.
//!
//! Seeding is identical to the standalone figure binaries, so the rows
//! printed here match running each binary on its own. The deep-dive
//! regenerators that do more than movement/idle studies (tables,
//! Thicket call trees, ablations, bursty schedules) remain standalone:
//! `table1`, `table2`, `fig9_10`, `ablation`, `bursty`.

use bench::{fmt_secs, print_bar, reports_json, save_json, study_at, Scale};
use mdflow::prelude::*;
use simcore::SimDuration;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The full suite grid: `(group, row label, workflow)` in print order.
fn suite_grid() -> Vec<(&'static str, String, WorkflowConfig)> {
    let split8 = Placement::Split { pairs_per_node: 8 };
    let split16 = Placement::Split { pairs_per_node: 16 };
    let mut grid = Vec::new();

    // Figure 5: single node, JAC, DYAD vs XFS, 1/2/4 pairs.
    for pairs in [1u32, 2, 4] {
        for (name, solution) in [("DYAD", Solution::Dyad), ("XFS", Solution::Xfs)] {
            grid.push((
                "fig5 — single node, JAC, DYAD vs XFS",
                format!("{name} ({pairs} pairs)"),
                WorkflowConfig::new(solution, pairs, Placement::SingleNode),
            ));
        }
    }
    // Figure 6: two nodes, JAC, DYAD vs Lustre, 1/2/4/8 pairs.
    for pairs in [1u32, 2, 4, 8] {
        for (name, solution) in [("DYAD", Solution::Dyad), ("Lustre", Solution::Lustre)] {
            grid.push((
                "fig6 — two nodes, JAC, DYAD vs Lustre",
                format!("{name} ({pairs} pairs)"),
                WorkflowConfig::new(solution, pairs, split8),
            ));
        }
    }
    // Figure 7: multi-node scaling, 8..256 pairs at 8 per node.
    for pairs in [8u32, 16, 32, 64, 128, 256] {
        for (name, solution) in [("DYAD", Solution::Dyad), ("Lustre", Solution::Lustre)] {
            grid.push((
                "fig7 — multi-node scaling, JAC",
                format!("{name} ({pairs} pairs)"),
                WorkflowConfig::new(solution, pairs, split8),
            ));
        }
    }
    // Figure 8: model-size scaling, 16 pairs on two nodes. (These rows
    // also cover the fig9/10 workload cells; the Thicket call-tree
    // analysis itself lives in the standalone `fig9_10` binary.)
    for model in Model::ALL {
        for (name, solution) in [("DYAD", Solution::Dyad), ("Lustre", Solution::Lustre)] {
            grid.push((
                "fig8 — model-size scaling, 16 pairs",
                format!("{name} ({model})"),
                WorkflowConfig::new(solution, 16, split16).with_model(model),
            ));
        }
    }
    // Figures 11/12: stride scaling for JAC and STMV.
    for (group, model) in [
        ("fig11 — stride scaling, JAC", Model::Jac),
        ("fig12 — stride scaling, STMV", Model::Stmv),
    ] {
        for stride in [1u64, 5, 10, 50] {
            for (name, solution) in [("DYAD", Solution::Dyad), ("Lustre", Solution::Lustre)] {
                grid.push((
                    group,
                    format!("{name} (stride {stride})"),
                    WorkflowConfig::new(solution, 16, split16)
                        .with_model(model)
                        .with_stride(stride),
                ));
            }
        }
    }
    // Capacity: staging-budget sweep, periodic and bursty, with the
    // Lustre baseline rows (same grid as the `capacity` binary).
    let budget_halves: [Option<u64>; 6] = [None, Some(128), Some(8), Some(4), Some(2), Some(1)];
    let budget_wf = |halves: Option<u64>| {
        let wf = WorkflowConfig::new(Solution::Dyad, 8, split8);
        match halves {
            None => wf,
            Some(h) => wf
                .with_staging_budget(h * Model::Jac.frame_bytes() * 8 / 2)
                .with_spill(true),
        }
    };
    let budget_label = |halves: Option<u64>| match halves {
        None => "unlimited".to_string(),
        Some(h) => format!("{} frames/pair", h as f64 / 2.0),
    };
    let bursty = FrameSchedule::Bursty {
        burst_gap: SimDuration::from_millis(50),
        quiet_gap: SimDuration::from_millis(1590),
        burst_persistence: 0.5,
        burst_entry: 0.5,
    };
    for halves in budget_halves {
        grid.push((
            "capacity — staging budget, periodic",
            budget_label(halves),
            budget_wf(halves),
        ));
    }
    grid.push((
        "capacity — staging budget, periodic",
        "Lustre baseline".to_string(),
        WorkflowConfig::new(Solution::Lustre, 8, split8),
    ));
    for halves in budget_halves {
        grid.push((
            "capacity — staging budget, bursty",
            budget_label(halves),
            budget_wf(halves).with_schedule(bursty.clone()),
        ));
    }
    grid.push((
        "capacity — staging budget, bursty",
        "Lustre baseline".to_string(),
        WorkflowConfig::new(Solution::Lustre, 8, split8).with_schedule(bursty),
    ));
    // Chaos: clean vs faulted, DYAD vs Lustre, 4 and 8 pairs.
    let seed = env_u64("MDFLOW_CHAOS_SEED", 42);
    let events = env_u64("MDFLOW_CHAOS_EVENTS", 2) as u32;
    for pairs in [4u32, 8] {
        for (name, solution) in [("dyad", Solution::Dyad), ("lustre", Solution::Lustre)] {
            grid.push((
                "chaos — fault injection, JAC",
                format!("{name} {pairs}p fault-free"),
                WorkflowConfig::new(solution, pairs, split8),
            ));
            grid.push((
                "chaos — fault injection, JAC",
                format!("{name} {pairs}p chaos"),
                WorkflowConfig::new(solution, pairs, split8)
                    .with_faults(FaultConfig::chaos(seed, events)),
            ));
        }
    }
    grid
}

fn main() {
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown flag {other} (supported: --jobs N)");
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();
    let grid = suite_grid();
    println!(
        "EXPERIMENT SUITE — {} studies × {} reps at {} frames, {jobs} worker(s)",
        grid.len(),
        scale.reps,
        scale.frames
    );

    let studies: Vec<StudyConfig> = grid
        .iter()
        .map(|(_, _, wf)| study_at(wf.clone(), scale))
        .collect();
    let (reports, stats) = run_studies_jobs(&studies, jobs);

    let mut current_group = "";
    for ((group, label, _), report) in grid.iter().zip(&reports) {
        if *group != current_group {
            current_group = group;
            println!("\n================================================================");
            println!("== {group}");
            println!("================================================================");
        }
        print_bar(label, report);
    }

    let rows_ref: Vec<(String, &StudyReport)> = grid
        .iter()
        .zip(&reports)
        .map(|((group, label, _), r)| (format!("{group} :: {label}"), r))
        .collect();
    save_json("all_suite", &reports_json(&rows_ref));

    println!("\nexecutor accounting:");
    println!(
        "  {} runs in {} wall ({:.0} runs/minute, {} worker(s))",
        stats.runs,
        fmt_secs(stats.wall_secs),
        stats.runs_per_minute(),
        stats.jobs
    );
    println!(
        "  setup {} vs sim {} (setup fraction {:.1}%)",
        fmt_secs(stats.setup_secs),
        fmt_secs(stats.sim_secs),
        stats.setup_fraction() * 100.0
    );
    println!(
        "\nstandalone deep dives not included here: table1, table2, fig9_10, ablation, bursty"
    );
}
