//! Run the entire experiment suite (Tables I-II, Figures 5-12, findings,
//! ablations) by invoking each regenerator binary in sequence. Accepts
//! the same `MDFLOW_REPS` / `MDFLOW_FRAMES` environment overrides.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9_10", "fig11", "fig12",
        "ablation", "bursty",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failed.push(bin);
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed; JSON in target/experiments/");
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
