//! `scale` — scale-ceiling benchmark (PR 8, extended in PR 9).
//!
//! Sweeps producer/consumer pairs (default {4k, 16k, 64k, 128k}) over a
//! leaf/spine cluster that approaches 10k nodes at the top point, and
//! records per-point events/s, wall clock, allocation rate and heap
//! footprint into `BENCH_PR9.json`. The sweep runs ascending so the
//! monotone allocator high-water mark attributes footprint growth to
//! each point: a point's heap-per-pair is its post-run high-water delta
//! over the pre-sweep baseline divided by its pair count.
//!
//! Modes / knobs:
//!
//! * `scale [--out DIR]` — run the sweep, print a table, write
//!   `BENCH_PR9.json`.
//! * `scale --enforce` (or `SCALE_ENFORCE=1`) — additionally fail
//!   (exit 1) unless the scale-free ratios hold across the sweep:
//!   sim-phase events/s within `SCALE_EPS_FACTOR` (default 4.0) of the
//!   first point, heap/pair within `SCALE_RSS_FACTOR` (default 1.25) of
//!   the first point, and consecutive setup times growing no faster
//!   than `SCALE_SETUP_FACTOR` (default 1.5) times the pair-count ratio
//!   — the guard against the superlinear setup cliff fixed in PR 9.
//! * `scale --verify-workers` — determinism check instead of a sweep:
//!   each `SCALE_VERIFY_PAIRS` point (default `4096,16384`) runs at
//!   `workers = 1` and `workers = 2` and the serialized reports must be
//!   byte-identical; exit 1 on any drift. A streaming point
//!   (`SCALE_VERIFY_STREAM_GROUPS` fan-out 4 groups, default 1024, on
//!   the same multi-leaf fabric) rides along so the M:N window/ack
//!   machinery is covered by the same worker-identity gate.
//! * `SCALE_PAIRS` — comma-separated pair counts
//!   (default `4096,16384,65536,131072`; CI runs `4096,16384` with the
//!   tighter `SCALE_EPS_FACTOR=2.0` and a 1e6 `SCALE_MIN_EPS` floor).
//! * `SCALE_FRAMES` — frames per pair (default 3).
//! * `SCALE_MIN_EPS` — absolute sim-phase events/s floor applied to
//!   every point (default 0 = disabled).
//! * `SCALE_PREFAULT_MB` — size of an optional one-shot page prefault
//!   before the sweep (default 0 = off). The PR 8 harness hit a
//!   superlinear 128k setup cliff (0.54 s -> 5.7 s from 64k -> 128k)
//!   from kernel minor-fault cost past ~2 GB of heap; the sharded
//!   calendar's flatter allocation profile removed the cliff outright,
//!   and the prefault measured as a net loss (see EXPERIMENTS.md), so
//!   it survives only as an experiment knob.
//!
//! The default `SCALE_EPS_FACTOR` of 4.0 reflects measured behavior on
//! a 1-vCPU host: throughput holds ≥1M events/s through 16k pairs, then
//! degrades toward 128k as the working set (~3.5 GB) overruns the cache
//! — per-event cost is flat in allocations (~1.1-1.6/event at every
//! point) but rises in stall time. Heap/pair *decreases* with scale, so
//! the memory gate stays tight at 1.25x.
//!
//! Methodology notes (see EXPERIMENTS.md): events/s is reported for the
//! sim phase (`RunTimings::sim_secs`, the event-loop cost the scale
//! ceiling is about) *and* wall-inclusive (setup + sim), so setup-bound
//! points are visible rather than hidden. Runs go through the warm-arena
//! path with one arena across the sweep, like the campaign executor.
//! `peak_rss_bytes` is the absolute `VmHWM` after each point; the
//! per-pair gate uses the counting-allocator high-water delta instead,
//! so the gate is unaffected by allocator-level overcommit (and by the
//! opt-in prefault, which pins `VmHWM` at the prefault size).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use mdflow::prelude::*;

/// Counting wrapper over the system allocator: total allocation calls
/// plus live-byte current/high-water marks, so the sweep can report
/// allocs/event and attribute heap growth per point even when the page
/// prefault saturates `VmHWM`.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static HEAP_LIVE: AtomicU64 = AtomicU64::new(0);
static HEAP_HWM: AtomicU64 = AtomicU64::new(0);

fn heap_account(bytes: u64) {
    ALLOC_CALLS.fetch_add(1, Relaxed);
    let live = HEAP_LIVE.fetch_add(bytes, Relaxed) + bytes;
    HEAP_HWM.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            heap_account(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            heap_account(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        HEAP_LIVE.fetch_sub(layout.size() as u64, Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            HEAP_LIVE.fetch_sub(layout.size() as u64, Relaxed);
            heap_account(new_size as u64);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured sweep point.
struct Point {
    pairs: u32,
    frames: u64,
    nodes: usize,
    events: u64,
    makespan_ns: u64,
    setup_secs: f64,
    sim_secs: f64,
    /// Allocator calls made by this point.
    allocs: u64,
    /// Allocator high-water mark after this point minus the pre-sweep
    /// baseline (the footprint signal the per-pair gate uses).
    heap_delta_bytes: u64,
    /// Absolute `VmHWM` after this point (0 off-linux).
    peak_rss_bytes: u64,
}

impl Point {
    fn eps_sim(&self) -> f64 {
        self.events as f64 / self.sim_secs.max(1e-9)
    }
    fn eps_wall(&self) -> f64 {
        self.events as f64 / (self.setup_secs + self.sim_secs).max(1e-9)
    }
    fn heap_per_pair(&self) -> f64 {
        self.heap_delta_bytes as f64 / self.pairs as f64
    }
    fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events.max(1) as f64
    }
}

fn rss_peak_bytes() -> u64 {
    // VmHWM is linux-only; other platforms report 0 rather than lying.
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
            })
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Optional one-shot page prefault: touch every page of a large
/// allocation once, up front, and leak it so the pages stay mapped.
/// Kept as an experiment knob, **default off**: with the sharded
/// calendar the 128k setup cliff is gone without it, and a measured A/B
/// (see EXPERIMENTS.md) shows the resident prefault *costs* ~25% of
/// sim-phase throughput at the small points (TLB/page-table pressure
/// from ~1M extra resident pages) while buying nothing at the top
/// point. `black_box` stops LLVM from deleting the dead writes.
fn prefault(_max_pairs: u32) {
    let mb = std::env::var("SCALE_PREFAULT_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    if mb == 0 {
        return;
    }
    let bytes = (mb as usize) * 1024 * 1024;
    let t0 = std::time::Instant::now();
    let mut v: Vec<u8> = vec![0; bytes];
    let mut i = 0;
    while i < v.len() {
        v[i] = 1;
        i += 4096;
    }
    std::hint::black_box(&mut v);
    std::mem::forget(v);
    println!(
        "  [prefaulted {mb} MiB in {:.2}s]",
        t0.elapsed().as_secs_f64()
    );
}

/// The sweep workload: DYAD on a quiet testbed (no PFS interference
/// noise — this measures the simulator, not the paper's jitter), pairs
/// packed so the node count approaches 10k at the top point, on an
/// oversubscribed leaf/spine fabric so the tier model is actually on
/// the hot path.
fn workload(pairs: u32, frames: u64) -> (WorkflowConfig, Calibration) {
    let pairs_per_node = pairs.div_ceil(10_000).max(1);
    let wf = WorkflowConfig::new(Solution::Dyad, pairs, Placement::Split { pairs_per_node })
        .with_frames(frames);
    let mut cal = Calibration::quiet();
    cal.fabric = cal.fabric.with_topology(TopologySpec::LeafSpine {
        radix: 32,
        oversubscription: 2.0,
    });
    (wf, cal)
}

fn run_point(pairs: u32, frames: u64, arena: &mut RunArena, heap_base: u64) -> Point {
    let (wf, cal) = workload(pairs, frames);
    let nodes = pairs.div_ceil(pairs.div_ceil(10_000).max(1)) as usize;
    let allocs_before = ALLOC_CALLS.load(Relaxed);
    let snap = ClusterSnapshot::prepare(&wf, &cal, 0x5CA1E);
    let (m, t) = run_once_warm(&snap, 0x5CA1E, arena);
    Point {
        pairs,
        frames,
        nodes,
        events: m.events,
        makespan_ns: m.makespan.nanos(),
        setup_secs: t.setup_secs,
        sim_secs: t.sim_secs,
        allocs: ALLOC_CALLS.load(Relaxed) - allocs_before,
        heap_delta_bytes: HEAP_HWM.load(Relaxed).saturating_sub(heap_base),
        peak_rss_bytes: rss_peak_bytes(),
    }
}

// The vendored serde_json stand-in has no `json!` macro, so build
// `Value` trees by hand through these helpers.
fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u64(v: u64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::U64(v))
}

fn num_f64(v: f64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::F64(v))
}

fn to_json(points: &[Point], heap_base: u64) -> String {
    let rows: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            obj(vec![
                ("pairs", num_u64(p.pairs as u64)),
                ("frames", num_u64(p.frames)),
                ("nodes", num_u64(p.nodes as u64)),
                ("events", num_u64(p.events)),
                ("makespan_ns", num_u64(p.makespan_ns)),
                ("setup_secs", num_f64(p.setup_secs)),
                ("sim_secs", num_f64(p.sim_secs)),
                ("events_per_sec_sim", num_f64(p.eps_sim())),
                ("events_per_sec_wall", num_f64(p.eps_wall())),
                ("allocs", num_u64(p.allocs)),
                ("allocs_per_event", num_f64(p.allocs_per_event())),
                ("heap_delta_bytes", num_u64(p.heap_delta_bytes)),
                ("heap_per_pair_bytes", num_f64(p.heap_per_pair())),
                ("peak_rss_bytes", num_u64(p.peak_rss_bytes)),
            ])
        })
        .collect();
    serde_json::to_string_pretty(&obj(vec![
        ("bench", serde_json::Value::String("scale".to_string())),
        ("pr", num_u64(9)),
        ("heap_baseline_bytes", num_u64(heap_base)),
        ("points", serde_json::Value::Array(rows)),
    ]))
    .expect("json")
}

/// Scale-free ratio gates, self-contained (no baseline file needed):
/// the sweep itself is the baseline, anchored at its first point —
/// except the setup gate, which compares consecutive points so a single
/// superlinear step (the PR 8 fault cliff) cannot hide behind a cheap
/// anchor.
fn enforce(points: &[Point]) -> bool {
    let eps_factor = env_f64("SCALE_EPS_FACTOR", 4.0);
    let rss_factor = env_f64("SCALE_RSS_FACTOR", 1.25);
    // 1.5x headroom over linear: setup points are sub-second and noisy
    // (observed run-to-run swings of ~30%), while the superlinear cliff
    // this guards against was a 10.5x consecutive ratio in BENCH_PR8.
    let setup_factor = env_f64("SCALE_SETUP_FACTOR", 1.5);
    let min_eps = env_f64("SCALE_MIN_EPS", 0.0);
    let first = &points[0];
    let mut ok = true;
    for (i, p) in points.iter().enumerate().skip(1) {
        let eps_ratio = first.eps_sim() / p.eps_sim().max(1e-9);
        if eps_ratio > eps_factor {
            eprintln!(
                "scale: GATE FAIL {}k pairs: {:.0} events/s (sim) is {:.2}x below the \
                 {}k-pair point ({:.0}); allowed factor {eps_factor}",
                p.pairs / 1000,
                p.eps_sim(),
                eps_ratio,
                first.pairs / 1000,
                first.eps_sim(),
            );
            ok = false;
        }
        let rss_ratio = p.heap_per_pair() / first.heap_per_pair().max(1e-9);
        if rss_ratio > rss_factor {
            eprintln!(
                "scale: GATE FAIL {}k pairs: {:.0} B/pair heap is {:.2}x the {}k-pair \
                 point ({:.0} B/pair); allowed factor {rss_factor}",
                p.pairs / 1000,
                p.heap_per_pair(),
                rss_ratio,
                first.pairs / 1000,
                first.heap_per_pair(),
            );
            ok = false;
        }
        // Setup must grow no faster than the pair count between
        // consecutive points (times the tolerance factor).
        let prev = &points[i - 1];
        let setup_ratio = p.setup_secs / prev.setup_secs.max(1e-9);
        let pair_ratio = p.pairs as f64 / prev.pairs as f64;
        if setup_ratio > setup_factor * pair_ratio {
            eprintln!(
                "scale: GATE FAIL {}k pairs: setup {:.2}s is {setup_ratio:.2}x the \
                 {}k-pair point ({:.2}s); allowed {:.2}x ({setup_factor} x pair ratio \
                 {pair_ratio:.2})",
                p.pairs / 1000,
                p.setup_secs,
                prev.pairs / 1000,
                prev.setup_secs,
                setup_factor * pair_ratio,
            );
            ok = false;
        }
    }
    if min_eps > 0.0 {
        for p in points {
            if p.eps_sim() < min_eps {
                eprintln!(
                    "scale: GATE FAIL {}k pairs: {:.0} events/s (sim) below floor {min_eps:.0}",
                    p.pairs / 1000,
                    p.eps_sim(),
                );
                ok = false;
            }
        }
    }
    ok
}

/// Canonical serialized report for the worker-identity check: every
/// trajectory-derived field, in a fixed order, no wall-clock noise.
fn report_bytes(m: &RunMetrics) -> String {
    let staging = serde_json::to_string(&m.staging).expect("staging json");
    let streaming = serde_json::to_string(&m.streaming).expect("streaming json");
    format!(
        "{{\"makespan_ns\":{},\"events\":{},\"staging\":{staging},\
         \"streaming\":{streaming},\
         \"kvs_commits\":{},\"kvs_lookups\":{},\"kvs_waits\":{}}}",
        m.makespan.nanos(),
        m.events,
        m.kvs.commits,
        m.kvs.lookups,
        m.kvs.waits,
    )
}

/// `--verify-workers`: the staging pool must be behavior-invisible.
/// Each point runs at `workers = 1` and `workers = 2`; the serialized
/// reports must be byte-identical. Returns false on any drift.
fn verify_workers(frames: u64) -> bool {
    let pairs_list: Vec<u32> = std::env::var("SCALE_VERIFY_PAIRS")
        .unwrap_or_else(|_| "4096,16384".to_string())
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .expect("SCALE_VERIFY_PAIRS entries must be u32")
        })
        .collect();
    let mut ok = true;
    for pairs in pairs_list {
        let (wf, cal) = workload(pairs, frames);
        ok &= verify_point(&format!("{pairs} pairs"), &wf, &cal);
    }
    // Streaming point: fan-out 4 groups on the same oversubscribed
    // leaf/spine fabric, packed 8 processes per node so the group spans
    // several leaves — the M:N window/ack release path must be just as
    // worker-invisible as the DYAD pipeline.
    let groups: u32 = std::env::var("SCALE_VERIFY_STREAM_GROUPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let wf = WorkflowConfig::new(
        Solution::Streaming,
        groups,
        Placement::Split { pairs_per_node: 8 },
    )
    .with_frames(frames)
    .with_fanout(4);
    let (_, cal) = workload(groups, frames);
    ok &= verify_point(&format!("{groups} stream groups (fanout 4)"), &wf, &cal);
    ok
}

/// One worker-identity comparison: run `wf` at `workers ∈ {1, 2}` and
/// require byte-identical serialized reports.
fn verify_point(label: &str, wf: &WorkflowConfig, cal: &Calibration) -> bool {
    let mut reports = Vec::new();
    for workers in [1usize, 2] {
        let snap = ClusterSnapshot::prepare(wf, cal, 0x5CA1E).with_workers(workers);
        let shards = snap.sim_config(0x5CA1E).shards;
        let mut arena = RunArena::new();
        let (m, _) = run_once_warm(&snap, 0x5CA1E, &mut arena);
        println!(
            "  {label:>7} workers={workers} ({shards} shards): makespan {} ns, {} events",
            m.makespan.nanos(),
            m.events
        );
        reports.push(report_bytes(&m));
    }
    if reports[0] == reports[1] {
        println!("  {label:>7}: workers=2 report byte-identical to workers=1");
        true
    } else {
        eprintln!(
            "scale: VERIFY FAIL {label}: workers=2 drifted from workers=1\n  \
             w1: {}\n  w2: {}",
            reports[0], reports[1]
        );
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let pairs_list: Vec<u32> = std::env::var("SCALE_PAIRS")
        .unwrap_or_else(|_| "4096,16384,65536,131072".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("SCALE_PAIRS entries must be u32"))
        .collect();
    let frames: u64 = std::env::var("SCALE_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    assert!(
        pairs_list.windows(2).all(|w| w[0] < w[1]),
        "SCALE_PAIRS must be ascending (the heap attribution depends on it)"
    );

    if args.iter().any(|a| a == "--verify-workers") {
        println!("SCALE — worker-pool determinism check");
        if !verify_workers(frames) {
            std::process::exit(1);
        }
        println!("  worker identity: OK");
        return;
    }

    println!("SCALE — leaf/spine scale-ceiling benchmark");
    prefault(*pairs_list.last().expect("SCALE_PAIRS must be non-empty"));
    let heap_base = HEAP_HWM.load(Relaxed);
    let mut arena = RunArena::new();
    let mut points = Vec::new();
    for &pairs in &pairs_list {
        let p = run_point(pairs, frames, &mut arena, heap_base);
        println!(
            "  {:>7} pairs {:>6} nodes | setup {:>6.2}s sim {:>7.2}s | {:>11} events | \
             {:>10.0} ev/s sim ({:>8.0} wall) | {:>4.2} allocs/ev | {:>7.0} B/pair heap",
            p.pairs,
            p.nodes,
            p.setup_secs,
            p.sim_secs,
            p.events,
            p.eps_sim(),
            p.eps_wall(),
            p.allocs_per_event(),
            p.heap_per_pair(),
        );
        points.push(p);
    }

    let out_dir = flag_value("--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let out = format!("{out_dir}/BENCH_PR9.json");
    std::fs::write(&out, to_json(&points, heap_base)).expect("write BENCH_PR9.json");
    println!("  [saved {out}]");

    let enforce_requested = args.iter().any(|a| a == "--enforce")
        || std::env::var("SCALE_ENFORCE").is_ok_and(|v| v == "1");
    if enforce_requested {
        if !enforce(&points) {
            std::process::exit(1);
        }
        println!("  scale gates: OK");
    }
}
