//! `scale` — scale-ceiling benchmark (PR 8).
//!
//! Sweeps producer/consumer pairs (default {4k, 16k, 64k, 128k}) over a
//! leaf/spine cluster that approaches 10k nodes at the top point, and
//! records per-point events/s, wall clock and peak RSS per pair into
//! `BENCH_PR8.json`. The sweep runs ascending so the monotone VmHWM
//! high-water mark attributes footprint growth to each point: a point's
//! RSS-per-pair is its post-run high-water delta over the pre-sweep
//! baseline divided by its pair count.
//!
//! Modes / knobs:
//!
//! * `scale [--out DIR]` — run the sweep, print a table, write
//!   `BENCH_PR8.json`.
//! * `scale --enforce` (or `SCALE_ENFORCE=1`) — additionally fail
//!   (exit 1) unless the scale-free ratios hold across the sweep:
//!   sim-phase events/s within `SCALE_EPS_FACTOR` (default 4.0) of the
//!   first point, and RSS/pair within `SCALE_RSS_FACTOR` (default 1.25)
//!   of the first point.
//! * `SCALE_PAIRS` — comma-separated pair counts
//!   (default `4096,16384,65536,131072`; CI runs `4096,16384` with the
//!   tighter `SCALE_EPS_FACTOR=2.0` and a 1e6 `SCALE_MIN_EPS` floor).
//! * `SCALE_FRAMES` — frames per pair (default 3).
//! * `SCALE_MIN_EPS` — absolute sim-phase events/s floor applied to
//!   every point (default 0 = disabled).
//!
//! The default `SCALE_EPS_FACTOR` of 4.0 reflects measured behavior on
//! a 1-vCPU host: throughput holds ≥1M events/s through 32k pairs, then
//! degrades to ~0.5M at 128k as the working set (~3.5 GB) overruns the
//! cache — per-event cost is flat in allocations (~1.2/event at every
//! point) but rises from ~0.5 µs to ~1.9 µs in stall time. RSS/pair
//! *decreases* with scale, so the memory gate stays tight at 1.25x.
//!
//! Methodology notes (see EXPERIMENTS.md): events/s is reported for the
//! sim phase (`RunTimings::sim_secs`, the event-loop cost the scale
//! ceiling is about) *and* wall-inclusive (setup + sim), so setup-bound
//! points are visible rather than hidden. Runs go through the warm-arena
//! path with one arena across the sweep, like the campaign executor.


use mdflow::prelude::*;

/// One measured sweep point.
struct Point {
    pairs: u32,
    frames: u64,
    nodes: usize,
    events: u64,
    makespan_ns: u64,
    setup_secs: f64,
    sim_secs: f64,
    /// VmHWM after this point minus the pre-sweep baseline.
    rss_delta_bytes: u64,
}

impl Point {
    fn eps_sim(&self) -> f64 {
        self.events as f64 / self.sim_secs.max(1e-9)
    }
    fn eps_wall(&self) -> f64 {
        self.events as f64 / (self.setup_secs + self.sim_secs).max(1e-9)
    }
    fn rss_per_pair(&self) -> f64 {
        self.rss_delta_bytes as f64 / self.pairs as f64
    }
}

fn rss_peak_bytes() -> u64 {
    // VmHWM is linux-only; other platforms report 0 rather than lying.
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
            })
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The sweep workload: DYAD on a quiet testbed (no PFS interference
/// noise — this measures the simulator, not the paper's jitter), pairs
/// packed so the node count approaches 10k at the top point, on an
/// oversubscribed leaf/spine fabric so the tier model is actually on
/// the hot path.
fn workload(pairs: u32, frames: u64) -> (WorkflowConfig, Calibration) {
    let pairs_per_node = pairs.div_ceil(10_000).max(1);
    let wf = WorkflowConfig::new(Solution::Dyad, pairs, Placement::Split { pairs_per_node })
        .with_frames(frames);
    let mut cal = Calibration::quiet();
    cal.fabric = cal.fabric.with_topology(TopologySpec::LeafSpine {
        radix: 32,
        oversubscription: 2.0,
    });
    (wf, cal)
}

fn run_point(pairs: u32, frames: u64, arena: &mut RunArena, rss_base: u64) -> Point {
    let (wf, cal) = workload(pairs, frames);
    let nodes = pairs.div_ceil(pairs.div_ceil(10_000).max(1)) as usize;
    let snap = ClusterSnapshot::prepare(&wf, &cal, 0x5CA1E);
    let (m, t) = run_once_warm(&snap, 0x5CA1E, arena);
    Point {
        pairs,
        frames,
        nodes,
        events: m.events,
        makespan_ns: m.makespan.nanos(),
        setup_secs: t.setup_secs,
        sim_secs: t.sim_secs,
        rss_delta_bytes: rss_peak_bytes().saturating_sub(rss_base),
    }
}

// The vendored serde_json stand-in has no `json!` macro, so build
// `Value` trees by hand through these helpers.
fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u64(v: u64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::U64(v))
}

fn num_f64(v: f64) -> serde_json::Value {
    serde_json::Value::Number(serde_json::Number::F64(v))
}

fn to_json(points: &[Point], rss_base: u64) -> String {
    let rows: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            obj(vec![
                ("pairs", num_u64(p.pairs as u64)),
                ("frames", num_u64(p.frames)),
                ("nodes", num_u64(p.nodes as u64)),
                ("events", num_u64(p.events)),
                ("makespan_ns", num_u64(p.makespan_ns)),
                ("setup_secs", num_f64(p.setup_secs)),
                ("sim_secs", num_f64(p.sim_secs)),
                ("events_per_sec_sim", num_f64(p.eps_sim())),
                ("events_per_sec_wall", num_f64(p.eps_wall())),
                ("rss_delta_bytes", num_u64(p.rss_delta_bytes)),
                ("rss_per_pair_bytes", num_f64(p.rss_per_pair())),
            ])
        })
        .collect();
    serde_json::to_string_pretty(&obj(vec![
        ("bench", serde_json::Value::String("scale".to_string())),
        ("pr", num_u64(8)),
        ("rss_baseline_bytes", num_u64(rss_base)),
        ("points", serde_json::Value::Array(rows)),
    ]))
    .expect("json")
}

/// Scale-free ratio gates, self-contained (no baseline file needed):
/// the sweep itself is the baseline, anchored at its first point.
fn enforce(points: &[Point]) -> bool {
    let eps_factor = env_f64("SCALE_EPS_FACTOR", 4.0);
    let rss_factor = env_f64("SCALE_RSS_FACTOR", 1.25);
    let min_eps = env_f64("SCALE_MIN_EPS", 0.0);
    let first = &points[0];
    let mut ok = true;
    for p in &points[1..] {
        let eps_ratio = first.eps_sim() / p.eps_sim().max(1e-9);
        if eps_ratio > eps_factor {
            eprintln!(
                "scale: GATE FAIL {}k pairs: {:.0} events/s (sim) is {:.2}x below the \
                 {}k-pair point ({:.0}); allowed factor {eps_factor}",
                p.pairs / 1000,
                p.eps_sim(),
                eps_ratio,
                first.pairs / 1000,
                first.eps_sim(),
            );
            ok = false;
        }
        let rss_ratio = p.rss_per_pair() / first.rss_per_pair().max(1e-9);
        if rss_ratio > rss_factor {
            eprintln!(
                "scale: GATE FAIL {}k pairs: {:.0} B/pair RSS is {:.2}x the {}k-pair \
                 point ({:.0} B/pair); allowed factor {rss_factor}",
                p.pairs / 1000,
                p.rss_per_pair(),
                rss_ratio,
                first.pairs / 1000,
                first.rss_per_pair(),
            );
            ok = false;
        }
    }
    if min_eps > 0.0 {
        for p in points {
            if p.eps_sim() < min_eps {
                eprintln!(
                    "scale: GATE FAIL {}k pairs: {:.0} events/s (sim) below floor {min_eps:.0}",
                    p.pairs / 1000,
                    p.eps_sim(),
                );
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let pairs_list: Vec<u32> = std::env::var("SCALE_PAIRS")
        .unwrap_or_else(|_| "4096,16384,65536,131072".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("SCALE_PAIRS entries must be u32"))
        .collect();
    let frames: u64 = std::env::var("SCALE_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    assert!(
        pairs_list.windows(2).all(|w| w[0] < w[1]),
        "SCALE_PAIRS must be ascending (the RSS attribution depends on it)"
    );

    println!("SCALE — leaf/spine scale-ceiling benchmark");
    let rss_base = rss_peak_bytes();
    let mut arena = RunArena::new();
    let mut points = Vec::new();
    for &pairs in &pairs_list {
        let p = run_point(pairs, frames, &mut arena, rss_base);
        println!(
            "  {:>7} pairs {:>6} nodes | setup {:>6.2}s sim {:>7.2}s | {:>11} events | \
             {:>10.0} ev/s sim ({:>8.0} wall) | {:>7.0} B/pair RSS",
            p.pairs,
            p.nodes,
            p.setup_secs,
            p.sim_secs,
            p.events,
            p.eps_sim(),
            p.eps_wall(),
            p.rss_per_pair(),
        );
        points.push(p);
    }

    let out_dir = flag_value("--out").unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let out = format!("{out_dir}/BENCH_PR8.json");
    std::fs::write(&out, to_json(&points, rss_base)).expect("write BENCH_PR8.json");
    println!("  [saved {out}]");

    let enforce_requested =
        args.iter().any(|a| a == "--enforce") || std::env::var("SCALE_ENFORCE").is_ok_and(|v| v == "1");
    if enforce_requested {
        if !enforce(&points) {
            std::process::exit(1);
        }
        println!("  scale gates: OK");
    }
}
