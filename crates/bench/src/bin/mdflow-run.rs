//! `mdflow-run` — run a custom workflow configuration from the command
//! line (the downstream-user entry point for one-off experiments).
//!
//! ```text
//! mdflow-run [--solution dyad|xfs|lustre|dyad-on-pfs|streaming]
//!            [--model jac|apoa1|f1|stmv]
//!            [--pairs N] [--nodes single|split] [--per-node N]
//!            [--stride N] [--frames N] [--reps N] [--seed N]
//!            [--sync coarse|fine|polling] [--no-warm-sync]
//!            [--fanout K] [--fanin K] [--window W] [--agg N]
//!            [--group broadcast|partitioned] [--no-reclaim]
//!            [--kvs-shards N] [--kvs-replication R]
//!            [--topology flat|leaf-spine] [--radix N] [--oversubscription X]
//!            [--quiet-testbed] [--json]
//! ```

use mdflow::calibration::Calibration;
use mdflow::prelude::*;

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for {name}: {v}"))),
            None => default,
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2)
}

const HELP: &str = "\
mdflow-run — run one MD-workflow data-movement experiment

options:
  --solution dyad|xfs|lustre|dyad-on-pfs|streaming
                                           data-management solution [dyad]
  --model    jac|apoa1|f1|stmv             molecular model [jac]
  --pairs    N                             producer-consumer pairs [4]
  --nodes    single|split                  placement [split; xfs forces single]
  --per-node N                             pairs per node when split [8]
  --stride   N                             steps between frames [model default]
  --frames   N                             frames per pair [128]
  --reps     N                             repetitions [10]
  --seed     N                             base seed [0xD1AD]
  --sync     coarse|fine|polling           manual sync protocol [coarse]
  --no-warm-sync                           disable DYAD's warm fast path
  --fanout   K                             streaming: 1 pub -> K subs per group [1]
  --fanin    K                             streaming: K pubs -> 1 reducer per group [1]
  --window   W                             streaming: max unacked in-flight steps [4]
  --agg      N                             streaming: frames aggregated per step [1]
  --group    broadcast|partitioned         streaming fan-out group mode [broadcast]
  --no-reclaim                             streaming: head-of-line stall on subscriber
                                           crash instead of reclaiming window slots
  --kvs-shards N                           KVS metadata-plane shards [1]
  --kvs-replication R                      replicas per key (<= shards) [1]
  --topology flat|leaf-spine               switch topology [flat]
  --radix N                                nodes per leaf switch [16]
  --oversubscription X                     leaf uplink oversubscription [1.0]
  --quiet-testbed                          no PFS interference / jitter
  --json                                   print the full report as JSON
";

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        print!("{HELP}");
        return;
    }
    let solution = match args.value("--solution").unwrap_or("dyad") {
        "dyad" => Solution::Dyad,
        "xfs" => Solution::Xfs,
        "lustre" => Solution::Lustre,
        "dyad-on-pfs" => Solution::DyadOnPfs,
        "streaming" => Solution::Streaming,
        other => die(&format!("unknown solution {other}")),
    };
    let model = match args.value("--model").unwrap_or("jac") {
        "jac" => Model::Jac,
        "apoa1" => Model::ApoA1,
        "f1" => Model::F1Atpase,
        "stmv" => Model::Stmv,
        other => die(&format!("unknown model {other}")),
    };
    let pairs: u32 = args.num("--pairs", 4);
    let per_node: u32 = args.num("--per-node", 8);
    let placement = match args.value("--nodes") {
        Some("single") => Placement::SingleNode,
        Some("split") | None if solution != Solution::Xfs => Placement::Split {
            pairs_per_node: per_node,
        },
        Some("split") => die("xfs cannot run split across nodes (paper §III-B)"),
        None => Placement::SingleNode,
        Some(other) => die(&format!("unknown placement {other}")),
    };
    let mut wf = WorkflowConfig::new(solution, pairs, placement).with_model(model);
    if let Some(stride) = args.value("--stride") {
        wf = wf.with_stride(stride.parse().unwrap_or_else(|_| die("bad --stride")));
    }
    wf = wf.with_frames(args.num("--frames", 128));
    wf.manual_sync = match args.value("--sync").unwrap_or("coarse") {
        "coarse" => ManualSync::Coarse,
        "fine" => ManualSync::Fine,
        "polling" => ManualSync::Polling,
        other => die(&format!("unknown sync protocol {other}")),
    };
    wf.dyad_warm_sync = !args.flag("--no-warm-sync");
    let fanout: u32 = args.num("--fanout", 1);
    let fanin: u32 = args.num("--fanin", 1);
    if (fanout > 1 || fanin > 1) && solution != Solution::Streaming {
        die("--fanout/--fanin require --solution streaming");
    }
    if fanout > 1 && fanin > 1 {
        die("streaming groups are 1→K (--fanout) or K→1 (--fanin), not both");
    }
    wf = wf
        .with_fanout(fanout)
        .with_fanin(fanin)
        .with_stream_window(args.num("--window", 4))
        .with_agg_frames(args.num("--agg", 1));
    wf = match args.value("--group").unwrap_or("broadcast") {
        "broadcast" => wf.with_group_mode(GroupMode::Broadcast),
        "partitioned" => wf.with_group_mode(GroupMode::Partitioned),
        other => die(&format!("unknown group mode {other}")),
    };
    wf = wf.with_window_reclaim(!args.flag("--no-reclaim"));
    let shards: u32 = args.num("--kvs-shards", 1);
    let replication: u32 = args.num("--kvs-replication", 1);
    if shards < 1 {
        die("--kvs-shards must be at least 1");
    }
    if replication < 1 || replication > shards {
        die("--kvs-replication must be in 1..=kvs-shards");
    }
    wf = wf.with_kvs_shards(shards).with_kvs_replication(replication);

    let mut study = StudyConfig::paper(wf);
    study.repetitions = args.num("--reps", 10);
    study.seed = args.num("--seed", 0xD1ADu64);
    if args.flag("--quiet-testbed") {
        study.calibration = Calibration::quiet();
    }
    match args.value("--topology").unwrap_or("flat") {
        "flat" => {}
        "leaf-spine" => {
            let radix: u32 = args.num("--radix", 16);
            let oversubscription: f64 = args.num("--oversubscription", 1.0);
            if radix < 1 {
                die("--radix must be at least 1");
            }
            if !(oversubscription > 0.0 && oversubscription.is_finite()) {
                die("--oversubscription must be positive and finite");
            }
            study.calibration.fabric =
                study
                    .calibration
                    .fabric
                    .with_topology(mdflow::prelude::TopologySpec::LeafSpine {
                        radix,
                        oversubscription,
                    });
        }
        other => die(&format!("unknown topology {other}")),
    }

    eprintln!(
        "running {} × {} pairs × {} frames × {} reps ({} / stride {})...",
        study.workflow.solution,
        study.workflow.pairs,
        study.workflow.frames,
        study.repetitions,
        study.workflow.model,
        study.workflow.stride,
    );
    let report = run_study_jobs(&study, default_jobs());
    if args.flag("--json") {
        println!("{}", report.to_json());
        return;
    }
    println!(
        "production:  {:>12} movement + {:>12} idle = {:>12} per frame",
        fmt(report.production_movement.mean),
        fmt(report.production_idle.mean),
        fmt(report.production_total()),
    );
    println!(
        "consumption: {:>12} movement + {:>12} idle = {:>12} per frame",
        fmt(report.consumption_movement.mean),
        fmt(report.consumption_idle.mean),
        fmt(report.consumption_total()),
    );
    println!(
        "makespan:    {:.2} s (±{:.2})",
        report.makespan.mean, report.makespan.std
    );
    if solution == Solution::Streaming {
        println!(
            "streaming:   group sync {:>12}/frame | {:.1} window stalls ({:.3} s stalled)",
            fmt(report.group_sync_secs.mean),
            report.window_stalls.mean,
            report.window_stall_secs.mean,
        );
    }
}

fn fmt(s: f64) -> String {
    if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}
