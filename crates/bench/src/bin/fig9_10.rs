//! Figures 9 and 10: Thicket call-tree analysis of the consumer side for
//! JAC vs STMV (2 nodes, 16 pairs, Table II strides).
//!
//! Figure 9 (DYAD): moving 45.3× more data (STMV vs JAC) costs only
//! ~33.6× more data-movement time, and the KVS synchronization
//! (`dyad_fetch`) gets ~2.1× cheaper per call for STMV (fewer, larger
//! transfers stress the KVS less).
//!
//! Figure 10 (Lustre): data movement (`consume/read_single_buf`)
//! grows ~12.3× for the 45.3× larger model, while `explicit_sync` stays
//! roughly constant — synchronization, not movement, limits Lustre.

use bench::{print_ratio, save_json, BackendOverride, Scale};
use mdflow::calibration::Calibration;
use mdflow::prelude::*;
use thicket::{AggProfile, Ensemble, Query};

fn consumer_ensemble(solution: Solution, model: Model, scale: Scale) -> AggProfile {
    let mut wf = WorkflowConfig::new(solution, 16, Placement::Split { pairs_per_node: 16 })
        .with_model(model)
        .with_frames(scale.frames);
    if let Some(o) = BackendOverride::from_env() {
        wf = o.apply(wf);
    }
    let cal = Calibration::corona();
    // Repetitions share one snapshot and recycle one arena: the STMV
    // template (~30 MB) is synthesized once per figure cell, not per rep.
    let snap = ClusterSnapshot::prepare(&wf, &cal, 0xF1905u64 ^ 0x7E3A);
    let mut arena = RunArena::new();
    let mut ens = Ensemble::new();
    for rep in 0..scale.reps {
        let (run, _) = run_once_warm(&snap, 0xF1905 + rep as u64, &mut arena);
        for p in run.consumers {
            ens.push(p);
        }
    }
    ens.aggregate()
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "FIGURES 9 & 10 — Thicket call trees, 2 nodes, 16 pairs, {} frames, {} reps",
        scale.frames, scale.reps
    );

    // ---- Figure 9: DYAD -------------------------------------------------
    let dyad_jac = consumer_ensemble(Solution::Dyad, Model::Jac, scale);
    let dyad_stmv = consumer_ensemble(Solution::Dyad, Model::Stmv, scale);
    println!("\n[Figure 9a] DYAD consumer call tree, JAC:");
    print!("{}", dyad_jac.render_tree());
    println!("\n[Figure 9b] DYAD consumer call tree, STMV:");
    print!("{}", dyad_stmv.render_tree());

    // Under `--backend streaming` every cell runs the streaming data
    // plane, so the call-tree queries follow its region names.
    let streaming = BackendOverride::from_env().is_some_and(|o| o.solution == Solution::Streaming);
    let (movement, store, read, fetch) = if streaming {
        (
            Query::parse("stream_consume/stream_get_data"),
            Query::parse("stream_consume/stream_cons_store"),
            Query::parse("stream_consume/read_single_buf"),
            Query::parse("stream_consume/stream_sync"),
        )
    } else {
        (
            Query::parse("dyad_consume/dyad_get_data"),
            Query::parse("dyad_consume/dyad_cons_store"),
            Query::parse("dyad_consume/read_single_buf"),
            Query::parse("dyad_consume/dyad_fetch"),
        )
    };
    let move_jac =
        dyad_jac.query_time(&movement) + dyad_jac.query_time(&store) + dyad_jac.query_time(&read);
    let move_stmv = dyad_stmv.query_time(&movement)
        + dyad_stmv.query_time(&store)
        + dyad_stmv.query_time(&read);
    let data_ratio = Model::Stmv.frame_bytes() as f64 / Model::Jac.frame_bytes() as f64;
    println!("\nFigure 9 analysis:");
    print_ratio("data moved, STMV vs JAC", "45.3x", data_ratio);
    print_ratio(
        "DYAD data-movement time, STMV vs JAC",
        "33.6x",
        move_stmv / move_jac,
    );
    // Per-call KVS sync cost, excluding the one cold wait (compare the
    // warm per-call cost via total/The count includes the cold sync, so
    // compare totals: the paper reports 2.1x cheaper for STMV).
    let fetch_jac = dyad_jac.query_time(&fetch);
    let fetch_stmv = dyad_stmv.query_time(&fetch);
    print_ratio(
        "KVS sync (dyad_fetch) cheaper for STMV",
        "2.1x",
        fetch_jac / fetch_stmv.max(1e-12),
    );

    // ---- Figure 10: Lustre ----------------------------------------------
    let lus_jac = consumer_ensemble(Solution::Lustre, Model::Jac, scale);
    let lus_stmv = consumer_ensemble(Solution::Lustre, Model::Stmv, scale);
    println!("\n[Figure 10a] Lustre consumer call tree, JAC:");
    print!("{}", lus_jac.render_tree());
    println!("\n[Figure 10b] Lustre consumer call tree, STMV:");
    print!("{}", lus_stmv.render_tree());

    let (lread, lsync) = if streaming {
        (
            Query::parse("stream_consume/stream_get_data"),
            Query::parse("stream_consume/stream_sync"),
        )
    } else {
        (
            Query::parse("consume/read_single_buf"),
            Query::parse("consume/explicit_sync"),
        )
    };
    println!("\nFigure 10 analysis:");
    print_ratio(
        "Lustre data-movement time, STMV vs JAC",
        "12.3x",
        lus_stmv.query_time(&lread) / lus_jac.query_time(&lread).max(1e-12),
    );
    let sync_ratio = lus_stmv.query_time(&lsync) / lus_jac.query_time(&lsync).max(1e-12);
    print_ratio(
        "Lustre explicit_sync, STMV vs JAC (≈constant)",
        "~1x",
        sync_ratio,
    );

    println!("\nregion-by-region scaling, JAC → STMV (Thicket compare):");
    println!("[DYAD]");
    print!("{}", dyad_jac.compare_table(&dyad_stmv));
    println!("[Lustre]");
    print!("{}", lus_jac.compare_table(&lus_stmv));

    save_json(
        "fig9_10",
        &format!(
            "{{\"dyad_jac\":{},\"dyad_stmv\":{},\"lustre_jac\":{},\"lustre_stmv\":{}}}",
            dyad_jac.to_json(),
            dyad_stmv.to_json(),
            lus_jac.to_json(),
            lus_stmv.to_json()
        ),
    );
}
