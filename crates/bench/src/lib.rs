//! Shared plumbing for the experiment regenerators: one binary per paper
//! table/figure lives in `src/bin/`, each printing the paper's series
//! (movement/idle per bar) plus paper-vs-measured headline ratios, and
//! emitting machine-readable JSON for EXPERIMENTS.md.

use mdflow::prelude::*;

/// Environment-tunable experiment scale so the full suite can run both
/// at paper fidelity and in quick CI mode.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Repetitions per configuration (paper: 10).
    pub reps: u32,
    /// Frames per pair (paper: 128).
    pub frames: u64,
}

impl Scale {
    /// Read `MDFLOW_REPS` / `MDFLOW_FRAMES` from the environment,
    /// defaulting to the paper's 10 × 128.
    pub fn from_env() -> Scale {
        let reps = std::env::var("MDFLOW_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let frames = std::env::var("MDFLOW_FRAMES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        Scale { reps, frames }
    }

    /// Quick mode for tests.
    pub fn quick() -> Scale {
        Scale {
            reps: 2,
            frames: 16,
        }
    }
}

/// Run one workflow configuration at the given scale, fanning
/// repetitions across all available workers (`MDFLOW_JOBS` overrides)
/// through the warm-started campaign executor. Seeding matches the
/// serial `run_study` path, so results are byte-identical to it.
pub fn run(wf: WorkflowConfig, scale: Scale) -> StudyReport {
    let study = study_at(wf, scale);
    run_study_jobs(&study, default_jobs())
}

/// The study configuration `run` executes for `wf` at `scale` — exposed
/// so batch drivers can collect a whole suite's studies and push them
/// through one executor invocation. Applies the global `--backend`
/// override, so every figure binary gains the streaming axis for free.
pub fn study_at(wf: WorkflowConfig, scale: Scale) -> StudyConfig {
    let wf = match BackendOverride::from_env() {
        Some(o) => o.apply(wf),
        None => wf,
    };
    StudyConfig::paper(wf.with_frames(scale.frames)).with_repetitions(scale.reps)
}

/// Backend override for the figure regenerators (the PR 10 streaming
/// axis): `--backend streaming` on any figure binary's command line (or
/// `MDFLOW_BACKEND=streaming`) reruns every scripted workload on the
/// streaming data plane, shaped by `--fanout K` / `--fanin K` /
/// `--window W` / `--agg N` (env `MDFLOW_FANOUT`, `MDFLOW_FANIN`,
/// `MDFLOW_WINDOW`, `MDFLOW_AGG`). The other solution names force that
/// backend instead; with no override each figure runs its scripted
/// solutions untouched.
#[derive(Debug, Clone, Copy)]
pub struct BackendOverride {
    /// Forced solution.
    pub solution: Solution,
    /// Streaming fan-out (1 → K groups).
    pub fanout: u32,
    /// Streaming fan-in (K → 1 reduction groups).
    pub fanin: u32,
    /// Streaming bounded in-flight window.
    pub window: Option<u32>,
    /// Streaming frames aggregated per step.
    pub agg: Option<u64>,
}

/// `--flag value` from this process's argv, else env fallback.
fn arg_or_env(flag: &str, env: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

impl BackendOverride {
    /// Parse the override from argv/env; `None` leaves the figure's
    /// scripted solutions in place. Announces itself once so override
    /// runs are never mistaken for the scripted series.
    pub fn from_env() -> Option<BackendOverride> {
        let name = arg_or_env("--backend", "MDFLOW_BACKEND")?;
        let solution = match name.as_str() {
            "streaming" => Solution::Streaming,
            "dyad" => Solution::Dyad,
            "xfs" => Solution::Xfs,
            "lustre" => Solution::Lustre,
            "dyad-on-pfs" => Solution::DyadOnPfs,
            other => panic!("unknown --backend {other}"),
        };
        let num = |flag: &str, env: &str| {
            arg_or_env(flag, env).map(|v| v.parse::<u64>().expect("numeric flag"))
        };
        let o = BackendOverride {
            solution,
            fanout: num("--fanout", "MDFLOW_FANOUT").unwrap_or(1) as u32,
            fanin: num("--fanin", "MDFLOW_FANIN").unwrap_or(1) as u32,
            window: num("--window", "MDFLOW_WINDOW").map(|w| w as u32),
            agg: num("--agg", "MDFLOW_AGG"),
        };
        assert!(
            o.fanout == 1 || o.fanin == 1,
            "streaming groups are 1→K or K→1, not K→K"
        );
        static ANNOUNCE: std::sync::Once = std::sync::Once::new();
        ANNOUNCE.call_once(|| {
            eprintln!(
                "  [backend override: {} fanout={} fanin={}]",
                name, o.fanout, o.fanin
            );
        });
        Some(o)
    }

    /// Rewrite `wf` onto the forced backend, keeping its model, frame
    /// count, schedule and placement (XFS's single-node shapes stay
    /// single-node under streaming — every group collapses onto one
    /// node, the streaming analogue of the figure).
    pub fn apply(self, mut wf: WorkflowConfig) -> WorkflowConfig {
        wf.solution = self.solution;
        if self.solution == Solution::Streaming {
            wf = wf.with_fanout(self.fanout).with_fanin(self.fanin);
            if let Some(w) = self.window {
                wf = wf.with_stream_window(w);
            }
            if let Some(a) = self.agg {
                wf = wf.with_agg_frames(a);
            }
        }
        wf
    }
}

/// Format seconds with an appropriate unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Print one figure bar: label, movement, idle, total.
pub fn print_bar(label: &str, r: &StudyReport) {
    println!(
        "  {label:<28} prod: move {:>11} idle {:>11} | cons: move {:>11} idle {:>11} | cons total {:>11}",
        fmt_secs(r.production_movement.mean),
        fmt_secs(r.production_idle.mean),
        fmt_secs(r.consumption_movement.mean),
        fmt_secs(r.consumption_idle.mean),
        fmt_secs(r.consumption_total()),
    );
}

/// Print a paper-vs-measured headline ratio row.
pub fn print_ratio(what: &str, paper: &str, measured: f64) {
    println!("  {what:<58} paper: {paper:<14} measured: {measured:.1}x");
}

/// Append a JSON experiment record to `target/experiments/<name>.json`.
pub fn save_json(name: &str, payload: &str) {
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, payload) {
        eprintln!("warning: could not save {path:?}: {e}");
    } else {
        println!("  [saved {path:?}]");
    }
}

/// Serialize a list of labelled reports.
pub fn reports_json(rows: &[(String, &StudyReport)]) -> String {
    let objs: Vec<serde_json::Value> = rows
        .iter()
        .map(|(label, r)| {
            let mut v: serde_json::Value = serde_json::from_str(&r.to_json()).expect("report json");
            v["label"] = serde_json::Value::String(label.clone());
            v
        })
        .collect();
    serde_json::to_string_pretty(&objs).expect("json")
}

/// Render a grouped horizontal bar chart of `(label, movement, idle)`
/// rows (seconds) as ASCII — the reproduced view of the paper's stacked
/// red/blue bar figures. Bars are log-scaled when values span more than
/// two decades so µs-scale movement stays visible next to near-second
/// idle bars.
pub fn render_bars(title: &str, rows: &[(String, f64, f64)]) -> String {
    const WIDTH: f64 = 56.0;
    let mut out = format!(
        "  {title}
"
    );
    let max = rows
        .iter()
        .map(|(_, m, i)| m + i)
        .fold(f64::MIN_POSITIVE, f64::max);
    let min = rows
        .iter()
        .map(|(_, m, i)| (m + i).max(1e-9))
        .fold(f64::INFINITY, f64::min);
    let log_scale = max / min > 100.0;
    let scale = |v: f64| -> usize {
        if v <= 0.0 {
            return 0;
        }
        let frac = if log_scale {
            ((v.max(1e-9) / min).ln() / (max / min).ln()).clamp(0.0, 1.0)
        } else {
            v / max
        };
        (frac * WIDTH).round() as usize
    };
    for (label, movement, idle) in rows {
        let total = movement + idle;
        let total_w = scale(total).max(1);
        let move_w = ((movement / total.max(1e-12)) * total_w as f64).round() as usize;
        let move_w = move_w.min(total_w);
        out.push_str(&format!(
            "  {label:<26} |{}{}| {}
",
            "#".repeat(move_w),
            "-".repeat(total_w - move_w),
            fmt_secs(total)
        ));
    }
    out.push_str(&format!(
        "  {:<26}  ('#' movement, '-' idle{})
",
        "",
        if log_scale { ", log scale" } else { "" }
    ));
    out
}

/// Convenience: chart rows from labelled reports (consumption view).
pub fn consumption_chart(title: &str, rows: &[(String, StudyReport)]) -> String {
    let bars: Vec<(String, f64, f64)> = rows
        .iter()
        .map(|(l, r)| {
            (
                l.clone(),
                r.consumption_movement.mean,
                r.consumption_idle.mean,
            )
        })
        .collect();
    render_bars(title, &bars)
}

/// Convenience: chart rows from labelled reports (production view).
pub fn production_chart(title: &str, rows: &[(String, StudyReport)]) -> String {
    let bars: Vec<(String, f64, f64)> = rows
        .iter()
        .map(|(l, r)| {
            (
                l.clone(),
                r.production_movement.mean,
                r.production_idle.mean,
            )
        })
        .collect();
    render_bars(title, &bars)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_secs(0.0000025), "2.5 µs");
    }

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_env();
        assert!(s.reps >= 1);
        assert!(s.frames >= 1);
    }

    #[test]
    fn bars_render_proportionally() {
        let rows = vec![
            ("a".to_string(), 0.001, 0.0),
            ("b".to_string(), 0.001, 0.001),
        ];
        let chart = render_bars("test", &rows);
        assert!(chart.contains("a"));
        assert!(chart.contains('#'));
        // b's bar (2 ms) is longer than a's (1 ms).
        let lens: Vec<usize> = chart
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.matches(['#', '-']).count())
            .collect();
        assert!(lens[1] > lens[0], "{chart}");
    }

    #[test]
    fn log_scale_keeps_small_bars_visible() {
        let rows = vec![
            ("tiny".to_string(), 1e-6, 0.0),
            ("huge".to_string(), 0.0, 1.0),
        ];
        let chart = render_bars("log", &rows);
        assert!(chart.contains("log scale"));
        for line in chart.lines().filter(|l| l.contains('|')) {
            assert!(line.matches(['#', '-']).count() >= 1, "{chart}");
        }
    }
}
