//! # faults — seeded, deterministic fault injection
//!
//! The paper evaluates DYAD on healthy runs only; production MD campaigns
//! on Corona see node reboots, flaky NVMe devices, fabric flaps and
//! overloaded Lustre servers mid-campaign. This crate supplies the three
//! pieces every other layer builds recovery semantics on:
//!
//! * [`FaultPlan`] — a schedule of [`FaultEvent`]s, either hand-written or
//!   generated probabilistically from a [`ChaosSpec`] and a seed. The plan
//!   is pure data: generating it twice from the same spec and seed yields
//!   a byte-identical [`FaultPlan::describe`] listing.
//! * [`FaultBoard`] — the armed runtime form. [`FaultBoard::arm`] turns
//!   each event into cancellable simulator timers ([`Ctx::call_after`])
//!   that flip shared state on and off; subsystems consult the board on
//!   their hot paths (`node_up`, `nvme_factor`, `mds_stall_until`, …) and
//!   block on [`FaultBoard::hold_until_up`] while their node is down.
//! * [`RetryPolicy`] — exponential backoff with a multiplicative jitter
//!   band and per-attempt timeouts, used by transport and KVS retries.
//!
//! Everything is deterministic: fault times come from the plan, jitter
//! comes from caller-provided [`Ctx::rng`] streams, and an *empty* plan
//! arms nothing — zero timers, zero RNG draws — so a run with no faults
//! is event-for-event identical to a run without the fault layer at all.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simcore::sync::Notify;
use simcore::{Ctx, SimDuration, SimTime};

/// One class of injected failure. Every variant carries the window length
/// for which the condition holds; the instant it starts comes from the
/// enclosing [`FaultEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The node's services vanish (RPCs to it fail) and frames staged on
    /// its managed burst-buffer allocation are lost. After `down_for` the
    /// node restarts and registered recovery hooks run.
    NodeCrash {
        /// Crashed node (cluster index).
        node: u32,
        /// Outage length before the restart hook fires.
        down_for: SimDuration,
    },
    /// The node's NVMe serves reads/writes `factor`× slower.
    NvmeDegrade {
        /// Affected node.
        node: u32,
        /// Service-time multiplier (> 1 slows the device).
        factor: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// The node's NVMe returns I/O errors for new operations.
    NvmeError {
        /// Affected node.
        node: u32,
        /// Window length.
        duration: SimDuration,
    },
    /// The fabric link to the node flaps: traffic to and from it fails.
    LinkDown {
        /// Node whose NIC/link is down.
        node: u32,
        /// Window length.
        duration: SimDuration,
    },
    /// One Lustre OST serves bulk I/O `factor`× slower (degraded RAID
    /// rebuild, overloaded OSS, …).
    OstDegrade {
        /// OST index (0-based, dense).
        ost: u32,
        /// Service-time multiplier (> 1 slows the target).
        factor: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// The Lustre MDS stops answering; metadata ops stall until the
    /// window ends.
    MdsStall {
        /// Window length.
        duration: SimDuration,
    },
    /// The KVS namespace broker answers slowly — each request is held an
    /// extra `delay`, long enough to trip client per-attempt timeouts.
    KvsDelay {
        /// Extra per-request service delay while the window is open.
        delay: SimDuration,
        /// Window length.
        duration: SimDuration,
        /// Target broker shard, or `None` to degrade every broker (the
        /// pre-mesh global semantics). Chaos plans can thus slow one
        /// shard of a mesh without touching the rest.
        broker: Option<u32>,
    },
    /// A KVS broker shard dies permanently: it answers every request
    /// with a shard-down error (including flushing parked waits) for the
    /// rest of the run. Replicated meshes fail over; a single broker
    /// terminates through the typed-failure path.
    KvsShardCrash {
        /// Shard index (0 = the legacy single broker).
        shard: u32,
    },
}

impl FaultKind {
    /// Short class label used in schedules and stats.
    pub fn class(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::NvmeDegrade { .. } => "nvme_degrade",
            FaultKind::NvmeError { .. } => "nvme_error",
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::OstDegrade { .. } => "ost_degrade",
            FaultKind::MdsStall { .. } => "mds_stall",
            FaultKind::KvsDelay { .. } => "kvs_delay",
            FaultKind::KvsShardCrash { .. } => "kvs_shard_crash",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::NodeCrash { node, down_for } => {
                write!(f, "node_crash node={node} down_for={}ns", down_for.nanos())
            }
            FaultKind::NvmeDegrade {
                node,
                factor,
                duration,
            } => write!(
                f,
                "nvme_degrade node={node} factor={factor:.3} for={}ns",
                duration.nanos()
            ),
            FaultKind::NvmeError { node, duration } => {
                write!(f, "nvme_error node={node} for={}ns", duration.nanos())
            }
            FaultKind::LinkDown { node, duration } => {
                write!(f, "link_down node={node} for={}ns", duration.nanos())
            }
            FaultKind::OstDegrade {
                ost,
                factor,
                duration,
            } => write!(
                f,
                "ost_degrade ost={ost} factor={factor:.3} for={}ns",
                duration.nanos()
            ),
            FaultKind::MdsStall { duration } => {
                write!(f, "mds_stall for={}ns", duration.nanos())
            }
            // The global form keeps the pre-mesh byte format: schedules
            // that never address a broker describe identically to PR 5.
            FaultKind::KvsDelay {
                delay,
                duration,
                broker: None,
            } => write!(
                f,
                "kvs_delay delay={}ns for={}ns",
                delay.nanos(),
                duration.nanos()
            ),
            FaultKind::KvsDelay {
                delay,
                duration,
                broker: Some(b),
            } => write!(
                f,
                "kvs_delay delay={}ns for={}ns broker={b}",
                delay.nanos(),
                duration.nanos()
            ),
            FaultKind::KvsShardCrash { shard } => {
                write!(f, "kvs_shard_crash shard={shard}")
            }
        }
    }
}

/// A fault scheduled at an absolute simulation offset.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault starts, relative to simulation start.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// Probabilistic chaos generator parameters: expected number of events per
/// class over a horizon. [`FaultPlan::generate`] expands a spec + seed
/// into a concrete, reproducible schedule.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Schedule horizon; all events start inside `[0, horizon)`.
    pub horizon: SimDuration,
    /// Number of compute nodes eligible for node/NVMe/link faults.
    pub n_nodes: u32,
    /// Number of OSTs eligible for `OstDegrade` (0 disables the class).
    pub n_osts: u32,
    /// Expected event count per enabled class over the horizon.
    pub events_per_class: f64,
    /// Mean fault window as a fraction of the horizon (windows are drawn
    /// uniformly in `[0.5, 1.5] × mean`).
    pub mean_window_frac: f64,
    /// Number of KVS broker shards eligible for `KvsShardCrash`
    /// (0 disables the class — the legacy single broker is never killed
    /// by a generated plan, only by a scheduled one).
    pub n_kvs_shards: u32,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            horizon: SimDuration::from_secs(1),
            n_nodes: 2,
            n_osts: 0,
            events_per_class: 1.0,
            mean_window_frac: 0.1,
            n_kvs_shards: 0,
        }
    }
}

/// An ordered schedule of faults. Pure data; arm it with
/// [`FaultBoard::arm`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: arming it creates no timers and changes nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit events (sorted by start time on build,
    /// ties kept in push order).
    pub fn scheduled(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Add one event, keeping the schedule sorted.
    pub fn push(&mut self, at: SimDuration, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
    }

    /// Expand a [`ChaosSpec`] into a concrete schedule. Same spec + seed
    /// ⇒ byte-identical plan; the draw order is fixed (class by class,
    /// event by event) so adding a class never perturbs earlier classes.
    pub fn generate(spec: &ChaosSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFAu64.rotate_left(56));
        let horizon_ns = spec.horizon.nanos().max(1);
        let mean_window = spec.horizon.mul_f64(spec.mean_window_frac.max(0.0));
        let mut events = Vec::new();
        let n_events = spec.events_per_class.round().max(0.0) as u32;
        let window = |rng: &mut StdRng| {
            let frac: f64 = rng.random_range(0.5..1.5);
            mean_window.mul_f64(frac).max(SimDuration::from_micros(1))
        };
        for class in 0..8u32 {
            for _ in 0..n_events {
                let at = SimDuration::from_nanos(rng.random_range(0..horizon_ns));
                let kind = match class {
                    0 if spec.n_nodes > 0 => FaultKind::NodeCrash {
                        node: rng.random_range(0..spec.n_nodes),
                        down_for: window(&mut rng),
                    },
                    1 if spec.n_nodes > 0 => FaultKind::NvmeDegrade {
                        node: rng.random_range(0..spec.n_nodes),
                        factor: rng.random_range(2.0..8.0),
                        duration: window(&mut rng),
                    },
                    2 if spec.n_nodes > 0 => FaultKind::NvmeError {
                        node: rng.random_range(0..spec.n_nodes),
                        duration: window(&mut rng),
                    },
                    3 if spec.n_nodes > 0 => FaultKind::LinkDown {
                        node: rng.random_range(0..spec.n_nodes),
                        duration: window(&mut rng),
                    },
                    4 if spec.n_osts > 0 => FaultKind::OstDegrade {
                        ost: rng.random_range(0..spec.n_osts),
                        factor: rng.random_range(2.0..6.0),
                        duration: window(&mut rng),
                    },
                    5 if spec.n_osts > 0 => FaultKind::MdsStall {
                        duration: window(&mut rng),
                    },
                    // Generated delay windows stay global (`broker: None`)
                    // so pre-mesh chaos schedules are bit-identical; only
                    // scheduled plans address individual brokers.
                    6 => FaultKind::KvsDelay {
                        delay: SimDuration::from_millis(rng.random_range(5..50)),
                        duration: window(&mut rng),
                        broker: None,
                    },
                    // Appended after every pre-existing class: the draw
                    // order is sequential, so plans generated without
                    // shards (n_kvs_shards = 0) keep their exact events.
                    7 if spec.n_kvs_shards > 0 => FaultKind::KvsShardCrash {
                        shard: rng.random_range(0..spec.n_kvs_shards),
                    },
                    _ => continue,
                };
                events.push(FaultEvent { at, kind });
            }
        }
        FaultPlan::scheduled(events)
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The schedule, sorted by start time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Canonical one-event-per-line text form. Byte-stable for a given
    /// plan — the chaos suite compares these across same-seed reruns.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{} {}\n", e.at.nanos(), e.kind));
        }
        out
    }
}

/// Counters for faults actually injected (a scheduled fault may be a
/// no-op if, say, its node index exceeds the topology).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total fault windows opened.
    pub injected: u64,
    /// Node crash windows opened.
    pub crashes: u64,
    /// Node restarts completed.
    pub restarts: u64,
    /// NVMe degrade windows.
    pub nvme_degrades: u64,
    /// NVMe error windows.
    pub nvme_errors: u64,
    /// Link-down windows.
    pub link_downs: u64,
    /// OST degrade windows.
    pub ost_degrades: u64,
    /// MDS stall windows.
    pub mds_stalls: u64,
    /// KVS delay windows.
    pub kvs_delays: u64,
    /// KVS broker shards killed.
    pub kvs_shard_crashes: u64,
}

/// Recovery-hook callback invoked with the node index at crash / restart
/// instants.
pub type NodeHook = Box<dyn Fn(u32)>;

#[derive(Default)]
struct BoardInner {
    node_down: Vec<u32>,   // outage nesting depth per node
    link_down: Vec<u32>,   // link flap nesting depth per node
    nvme_error: Vec<u32>,  // error-window nesting depth per node
    nvme_factor: Vec<f64>, // multiplicative slowdown per node (1.0 = healthy)
    ost_factor: Vec<f64>,  // multiplicative slowdown per OST
    mds_stall_until: Option<SimTime>,
    kvs_delay: Option<SimDuration>,
    kvs_delay_depth: u32,
    // Per-broker delay windows, keyed by shard id (BTreeMap: iteration
    // order is deterministic). Each entry is (delay, nesting depth).
    kvs_broker_delay: std::collections::BTreeMap<u32, (SimDuration, u32)>,
    // Permanently-dead broker shards, grown on demand (true = dead).
    kvs_shard_down: Vec<bool>,
    stats: FaultStats,
    crash_hooks: Vec<NodeHook>,
    restart_hooks: Vec<NodeHook>,
    kvs_shard_hooks: Vec<NodeHook>,
}

/// Armed runtime fault state, shared by every subsystem of one run.
///
/// Cloning is cheap (an `Rc`). All mutation happens from simulator timers
/// armed by [`FaultBoard::arm`]; subsystems only read, except through the
/// registered recovery hooks.
#[derive(Clone)]
pub struct FaultBoard {
    ctx: Ctx,
    inner: Rc<RefCell<BoardInner>>,
    up: Rc<Vec<Notify>>, // per-node restart signal
}

impl FaultBoard {
    /// Build an idle board for a topology of `n_nodes` nodes and `n_osts`
    /// OSTs. Nothing fires until [`FaultBoard::arm`].
    pub fn new(ctx: &Ctx, n_nodes: usize, n_osts: usize) -> Self {
        FaultBoard {
            ctx: ctx.clone(),
            inner: Rc::new(RefCell::new(BoardInner {
                node_down: vec![0; n_nodes],
                link_down: vec![0; n_nodes],
                nvme_error: vec![0; n_nodes],
                nvme_factor: vec![1.0; n_nodes],
                ost_factor: vec![1.0; n_osts],
                ..BoardInner::default()
            })),
            up: Rc::new((0..n_nodes).map(|_| Notify::new()).collect()),
        }
    }

    /// Register a hook that runs at the instant a node crashes (before
    /// any retry observes the outage). Used by staging to mark frames on
    /// the node's burst-buffer allocation as lost.
    pub fn on_crash(&self, hook: impl Fn(u32) + 'static) {
        self.inner.borrow_mut().crash_hooks.push(Box::new(hook));
    }

    /// Register a hook that runs at the instant a node restarts. Used by
    /// staging to re-publish spilled frames.
    pub fn on_restart(&self, hook: impl Fn(u32) + 'static) {
        self.inner.borrow_mut().restart_hooks.push(Box::new(hook));
    }

    /// Register a hook that runs at the instant a KVS broker shard is
    /// killed (invoked with the shard index). The mesh servers use it to
    /// flush parked waiters so no client hangs on a dead shard.
    pub fn on_kvs_shard_crash(&self, hook: impl Fn(u32) + 'static) {
        self.inner.borrow_mut().kvs_shard_hooks.push(Box::new(hook));
    }

    /// Arm every event in `plan` as simulator timers. An empty plan arms
    /// nothing. Call once, before `Sim::run`.
    pub fn arm(&self, plan: &FaultPlan) {
        for e in plan.events() {
            let board = self.clone();
            let kind = e.kind.clone();
            self.ctx.call_after(e.at, move || board.apply(kind));
        }
    }

    fn apply(&self, kind: FaultKind) {
        let n_nodes = self.inner.borrow().node_down.len() as u32;
        let n_osts = self.inner.borrow().ost_factor.len() as u32;
        {
            let mut b = self.inner.borrow_mut();
            b.stats.injected += 1;
        }
        match kind {
            FaultKind::NodeCrash { node, down_for } if node < n_nodes => {
                let hooks_run = {
                    let mut b = self.inner.borrow_mut();
                    b.stats.crashes += 1;
                    b.node_down[node as usize] += 1;
                    b.node_down[node as usize] == 1
                };
                if hooks_run {
                    let hooks = std::mem::take(&mut self.inner.borrow_mut().crash_hooks);
                    for h in &hooks {
                        h(node);
                    }
                    self.inner.borrow_mut().crash_hooks = hooks;
                }
                let board = self.clone();
                self.ctx.call_after(down_for, move || board.restart(node));
            }
            FaultKind::NvmeDegrade {
                node,
                factor,
                duration,
            } if node < n_nodes => {
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.nvme_degrades += 1;
                    b.nvme_factor[node as usize] *= factor.max(1.0);
                }
                let board = self.clone();
                self.ctx.call_after(duration, move || {
                    board.inner.borrow_mut().nvme_factor[node as usize] /= factor.max(1.0);
                });
            }
            FaultKind::NvmeError { node, duration } if node < n_nodes => {
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.nvme_errors += 1;
                    b.nvme_error[node as usize] += 1;
                }
                let board = self.clone();
                self.ctx.call_after(duration, move || {
                    board.inner.borrow_mut().nvme_error[node as usize] -= 1;
                });
            }
            FaultKind::LinkDown { node, duration } if node < n_nodes => {
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.link_downs += 1;
                    b.link_down[node as usize] += 1;
                }
                let board = self.clone();
                self.ctx.call_after(duration, move || {
                    board.inner.borrow_mut().link_down[node as usize] -= 1;
                });
            }
            FaultKind::OstDegrade {
                ost,
                factor,
                duration,
            } if ost < n_osts => {
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.ost_degrades += 1;
                    b.ost_factor[ost as usize] *= factor.max(1.0);
                }
                let board = self.clone();
                self.ctx.call_after(duration, move || {
                    board.inner.borrow_mut().ost_factor[ost as usize] /= factor.max(1.0);
                });
            }
            FaultKind::MdsStall { duration } => {
                let until = self.ctx.now() + duration;
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.mds_stalls += 1;
                    b.mds_stall_until = Some(match b.mds_stall_until {
                        Some(t) if t > until => t,
                        _ => until,
                    });
                }
                let board = self.clone();
                self.ctx.call_after(duration, move || {
                    let now = board.ctx.now();
                    let mut b = board.inner.borrow_mut();
                    if b.mds_stall_until.is_some_and(|t| t <= now) {
                        b.mds_stall_until = None;
                    }
                });
            }
            FaultKind::KvsDelay {
                delay,
                duration,
                broker: None,
            } => {
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.kvs_delays += 1;
                    b.kvs_delay_depth += 1;
                    b.kvs_delay = Some(match b.kvs_delay {
                        Some(d) if d > delay => d,
                        _ => delay,
                    });
                }
                let board = self.clone();
                self.ctx.call_after(duration, move || {
                    let mut b = board.inner.borrow_mut();
                    b.kvs_delay_depth -= 1;
                    if b.kvs_delay_depth == 0 {
                        b.kvs_delay = None;
                    }
                });
            }
            FaultKind::KvsDelay {
                delay,
                duration,
                broker: Some(broker),
            } => {
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.kvs_delays += 1;
                    let e = b
                        .kvs_broker_delay
                        .entry(broker)
                        .or_insert((SimDuration::ZERO, 0));
                    e.0 = e.0.max(delay);
                    e.1 += 1;
                }
                let board = self.clone();
                self.ctx.call_after(duration, move || {
                    let mut b = board.inner.borrow_mut();
                    if let Some(e) = b.kvs_broker_delay.get_mut(&broker) {
                        e.1 -= 1;
                        if e.1 == 0 {
                            b.kvs_broker_delay.remove(&broker);
                        }
                    }
                });
            }
            FaultKind::KvsShardCrash { shard } => {
                {
                    let mut b = self.inner.borrow_mut();
                    b.stats.kvs_shard_crashes += 1;
                    if b.kvs_shard_down.len() <= shard as usize {
                        b.kvs_shard_down.resize(shard as usize + 1, false);
                    }
                    b.kvs_shard_down[shard as usize] = true;
                }
                // Permanent: no close timer. Run the flush hooks so
                // waiters parked in the dead shard fail typed now.
                let hooks = std::mem::take(&mut self.inner.borrow_mut().kvs_shard_hooks);
                for h in &hooks {
                    h(shard);
                }
                self.inner.borrow_mut().kvs_shard_hooks = hooks;
            }
            // Out-of-range targets: counted as injected, otherwise no-ops.
            _ => {}
        }
    }

    fn restart(&self, node: u32) {
        let back_up = {
            let mut b = self.inner.borrow_mut();
            b.stats.restarts += 1;
            b.node_down[node as usize] -= 1;
            b.node_down[node as usize] == 0
        };
        if back_up {
            let hooks = std::mem::take(&mut self.inner.borrow_mut().restart_hooks);
            for h in &hooks {
                h(node);
            }
            self.inner.borrow_mut().restart_hooks = hooks;
            self.up[node as usize].notify_all();
        }
    }

    /// Is the node's software stack running?
    pub fn node_up(&self, node: u32) -> bool {
        self.inner
            .borrow()
            .node_down
            .get(node as usize)
            .is_none_or(|d| *d == 0)
    }

    /// Can traffic flow between two nodes right now? (Both ends up and
    /// neither link flapped.)
    pub fn reachable(&self, a: u32, b: u32) -> bool {
        let inner = self.inner.borrow();
        let ok = |n: u32| {
            inner.node_down.get(n as usize).is_none_or(|d| *d == 0)
                && inner.link_down.get(n as usize).is_none_or(|d| *d == 0)
        };
        ok(a) && ok(b)
    }

    /// Park until the node's stack is running again; returns immediately
    /// if it already is. Models a paused job step during an outage.
    pub async fn hold_until_up(&self, node: u32) {
        while !self.node_up(node) {
            self.up[node as usize].wait().await;
        }
    }

    /// Current NVMe service-time multiplier for the node (1.0 = healthy).
    pub fn nvme_factor(&self, node: u32) -> f64 {
        *self
            .inner
            .borrow()
            .nvme_factor
            .get(node as usize)
            .unwrap_or(&1.0)
    }

    /// Is the node's NVMe currently returning I/O errors?
    pub fn nvme_error(&self, node: u32) -> bool {
        self.inner
            .borrow()
            .nvme_error
            .get(node as usize)
            .is_some_and(|d| *d > 0)
    }

    /// Current service-time multiplier for an OST (1.0 = healthy).
    pub fn ost_factor(&self, ost: u32) -> f64 {
        *self
            .inner
            .borrow()
            .ost_factor
            .get(ost as usize)
            .unwrap_or(&1.0)
    }

    /// If the MDS is stalled, the instant the stall lifts.
    pub fn mds_stall_until(&self) -> Option<SimTime> {
        let b = self.inner.borrow();
        match b.mds_stall_until {
            Some(t) if t > self.ctx.now() => Some(t),
            _ => None,
        }
    }

    /// Extra per-request KVS service delay, if a delay window is open.
    /// This is the *global* window only; brokers consult
    /// [`FaultBoard::kvs_delay_for`], which folds in per-broker windows.
    pub fn kvs_delay(&self) -> Option<SimDuration> {
        self.inner.borrow().kvs_delay
    }

    /// Extra per-request service delay for one broker shard: the larger
    /// of the global window and any window addressed to `broker`.
    pub fn kvs_delay_for(&self, broker: u32) -> Option<SimDuration> {
        let b = self.inner.borrow();
        let scoped = b.kvs_broker_delay.get(&broker).map(|(d, _)| *d);
        match (b.kvs_delay, scoped) {
            (Some(g), Some(s)) => Some(g.max(s)),
            (g, s) => g.or(s),
        }
    }

    /// Is the KVS broker shard still alive? (Shards die permanently;
    /// there is no restart for a killed broker.)
    pub fn kvs_shard_up(&self, shard: u32) -> bool {
        !self
            .inner
            .borrow()
            .kvs_shard_down
            .get(shard as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Snapshot of injection counters.
    pub fn stats(&self) -> FaultStats {
        self.inner.borrow().stats
    }
}

/// Exponential backoff with jitter and per-attempt timeouts.
///
/// Attempt `k` (0-based) waits `min(cap, base · 2ᵏ)` scaled by a uniform
/// jitter draw in `[1 − jitter_frac, 1 + jitter_frac]` before retrying.
/// `max_attempts` bounds the total number of attempts (first try
/// included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Nominal delay before the first retry.
    pub base: SimDuration,
    /// Upper bound on the nominal (pre-jitter) delay.
    pub cap: SimDuration,
    /// Total attempts allowed, first try included. Must be ≥ 1.
    pub max_attempts: u32,
    /// Half-width of the multiplicative jitter band, in `[0, 1]`.
    pub jitter_frac: f64,
    /// Per-attempt timeout for the guarded operation.
    pub attempt_timeout: SimDuration,
}

impl RetryPolicy {
    /// Defaults tuned for the simulated fabric: first retry after 100 µs,
    /// capped at 50 ms, 8 attempts, ±25 % jitter, 20 ms per attempt.
    pub fn transport_default() -> Self {
        RetryPolicy {
            base: SimDuration::from_micros(100),
            cap: SimDuration::from_millis(50),
            max_attempts: 8,
            jitter_frac: 0.25,
            attempt_timeout: SimDuration::from_millis(20),
        }
    }

    /// The nominal (pre-jitter) backoff before retry `attempt` (0-based):
    /// `min(cap, base · 2^attempt)`, monotone non-decreasing in `attempt`.
    pub fn nominal_backoff(&self, attempt: u32) -> SimDuration {
        let mult = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let shifted = self.base.nanos().saturating_mul(mult);
        SimDuration::from_nanos(shifted.min(self.cap.nanos()))
    }

    /// The jittered backoff before retry `attempt`: the nominal delay
    /// scaled by a uniform draw in `[1 − jitter_frac, 1 + jitter_frac]`.
    /// With `jitter_frac == 0` no RNG draw is made.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let nominal = self.nominal_backoff(attempt);
        let j = self.jitter_frac.clamp(0.0, 1.0);
        if j == 0.0 {
            return nominal;
        }
        let scale: f64 = rng.random_range((1.0 - j)..(1.0 + j));
        nominal.mul_f64(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    fn plan_one(at_ms: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_millis(at_ms),
            kind,
        }])
    }

    #[test]
    fn generate_is_seed_deterministic_and_seed_sensitive() {
        let spec = ChaosSpec {
            n_nodes: 4,
            n_osts: 3,
            events_per_class: 2.0,
            ..ChaosSpec::default()
        };
        let a = FaultPlan::generate(&spec, 42);
        let b = FaultPlan::generate(&spec, 42);
        let c = FaultPlan::generate(&spec, 43);
        assert_eq!(a.describe(), b.describe());
        assert_ne!(a.describe(), c.describe());
        assert!(!a.is_empty());
        // Sorted by start time.
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn empty_plan_arms_no_timers() {
        let sim = Sim::new(0);
        let board = FaultBoard::new(&sim.ctx(), 2, 0);
        board.arm(&FaultPlan::empty());
        let report = sim.run();
        assert_eq!(report.events_processed, 0);
        assert_eq!(board.stats(), FaultStats::default());
    }

    #[test]
    fn crash_window_opens_and_closes() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 2, 0);
        board.arm(&plan_one(
            10,
            FaultKind::NodeCrash {
                node: 1,
                down_for: SimDuration::from_millis(5),
            },
        ));
        let b2 = board.clone();
        let h = sim.spawn(async move {
            let ctx = ctx;
            ctx.sleep(SimDuration::from_millis(12)).await;
            let mid = b2.node_up(1);
            b2.hold_until_up(1).await;
            (mid, ctx.now().nanos())
        });
        sim.run();
        let (mid, t) = h.try_take().unwrap();
        assert!(!mid);
        assert_eq!(t, 15_000_000);
        assert_eq!(board.stats().crashes, 1);
        assert_eq!(board.stats().restarts, 1);
        assert!(board.node_up(1));
    }

    #[test]
    fn crash_and_restart_hooks_fire_once_each() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 2, 0);
        let log: Rc<RefCell<Vec<(u32, &'static str)>>> = Default::default();
        let l1 = log.clone();
        board.on_crash(move |n| l1.borrow_mut().push((n, "crash")));
        let l2 = log.clone();
        board.on_restart(move |n| l2.borrow_mut().push((n, "restart")));
        board.arm(&plan_one(
            1,
            FaultKind::NodeCrash {
                node: 0,
                down_for: SimDuration::from_millis(2),
            },
        ));
        sim.run();
        assert_eq!(*log.borrow(), vec![(0, "crash"), (0, "restart")]);
    }

    #[test]
    fn degrade_windows_scale_and_restore() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 1, 2);
        let mut plan = FaultPlan::empty();
        plan.push(
            SimDuration::from_millis(1),
            FaultKind::NvmeDegrade {
                node: 0,
                factor: 4.0,
                duration: SimDuration::from_millis(2),
            },
        );
        plan.push(
            SimDuration::from_millis(1),
            FaultKind::OstDegrade {
                ost: 1,
                factor: 3.0,
                duration: SimDuration::from_millis(2),
            },
        );
        board.arm(&plan);
        let b2 = board.clone();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(2)).await;
            (b2.nvme_factor(0), b2.ost_factor(1))
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (4.0, 3.0));
        assert_eq!(board.nvme_factor(0), 1.0);
        assert_eq!(board.ost_factor(1), 1.0);
    }

    #[test]
    fn link_flap_breaks_reachability_both_ways() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 3, 0);
        board.arm(&plan_one(
            1,
            FaultKind::LinkDown {
                node: 1,
                duration: SimDuration::from_millis(1),
            },
        ));
        let b2 = board.clone();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_micros(1500)).await;
            (b2.reachable(0, 1), b2.reachable(1, 2), b2.reachable(0, 2))
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (false, false, true));
        assert!(board.reachable(0, 1));
    }

    #[test]
    fn kvs_and_mds_windows_expose_delays() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 1, 1);
        let mut plan = FaultPlan::empty();
        plan.push(
            SimDuration::from_millis(1),
            FaultKind::KvsDelay {
                delay: SimDuration::from_millis(7),
                duration: SimDuration::from_millis(3),
                broker: None,
            },
        );
        plan.push(
            SimDuration::from_millis(1),
            FaultKind::MdsStall {
                duration: SimDuration::from_millis(4),
            },
        );
        board.arm(&plan);
        let b2 = board.clone();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(2)).await;
            (b2.kvs_delay(), b2.mds_stall_until())
        });
        sim.run();
        let (delay, stall) = h.try_take().unwrap();
        assert_eq!(delay, Some(SimDuration::from_millis(7)));
        assert_eq!(stall, Some(SimTime::from_nanos(5_000_000)));
        assert_eq!(board.kvs_delay(), None);
        assert_eq!(board.mds_stall_until(), None);
    }

    #[test]
    fn broker_scoped_kvs_delay_leaves_other_brokers_alone() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 2, 0);
        let mut plan = FaultPlan::empty();
        plan.push(
            SimDuration::from_millis(1),
            FaultKind::KvsDelay {
                delay: SimDuration::from_millis(9),
                duration: SimDuration::from_millis(3),
                broker: Some(1),
            },
        );
        board.arm(&plan);
        let b2 = board.clone();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(2)).await;
            (b2.kvs_delay_for(0), b2.kvs_delay_for(1), b2.kvs_delay())
        });
        sim.run();
        let (b0, b1, global) = h.try_take().unwrap();
        assert_eq!(b0, None, "broker 0 must be unaffected");
        assert_eq!(b1, Some(SimDuration::from_millis(9)));
        assert_eq!(global, None, "a scoped window never leaks globally");
        assert_eq!(board.kvs_delay_for(1), None, "window closed");
        assert_eq!(board.stats().kvs_delays, 1);
    }

    #[test]
    fn broker_delay_folds_global_and_scoped_windows_as_max() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 1, 0);
        let mut plan = FaultPlan::empty();
        plan.push(
            SimDuration::from_millis(1),
            FaultKind::KvsDelay {
                delay: SimDuration::from_millis(4),
                duration: SimDuration::from_millis(5),
                broker: None,
            },
        );
        plan.push(
            SimDuration::from_millis(1),
            FaultKind::KvsDelay {
                delay: SimDuration::from_millis(2),
                duration: SimDuration::from_millis(5),
                broker: Some(0),
            },
        );
        board.arm(&plan);
        let b2 = board.clone();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(2)).await;
            b2.kvs_delay_for(0)
        });
        sim.run();
        // The scoped 2 ms window is shadowed by the 4 ms global one.
        assert_eq!(h.try_take().unwrap(), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn kvs_shard_crash_is_permanent_and_fires_hooks_once() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 2, 0);
        let log: Rc<RefCell<Vec<u32>>> = Default::default();
        let l = log.clone();
        board.on_kvs_shard_crash(move |s| l.borrow_mut().push(s));
        board.arm(&plan_one(5, FaultKind::KvsShardCrash { shard: 2 }));
        assert!(board.kvs_shard_up(2), "alive before the event");
        sim.run();
        assert!(!board.kvs_shard_up(2), "dead after the event, forever");
        assert!(board.kvs_shard_up(0), "other shards unaffected");
        assert_eq!(*log.borrow(), vec![2]);
        assert_eq!(board.stats().kvs_shard_crashes, 1);
        assert_eq!(board.stats().restarts, 0, "shards never restart");
    }

    #[test]
    fn generated_plans_without_shards_are_unperturbed_by_the_new_class() {
        // Class 7 draws are appended after every pre-existing class, so
        // the same (spec, seed) with n_kvs_shards = 0 must reproduce the
        // exact schedule PR 5 generated.
        let spec = ChaosSpec {
            n_nodes: 3,
            n_osts: 2,
            events_per_class: 2.0,
            ..ChaosSpec::default()
        };
        let plan = FaultPlan::generate(&spec, 0xD1AD);
        assert!(!plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::KvsShardCrash { .. })));
        let with_shards = FaultPlan::generate(
            &ChaosSpec {
                n_kvs_shards: 4,
                ..spec.clone()
            },
            0xD1AD,
        );
        // Every pre-existing event survives verbatim; only shard crashes
        // are added.
        let old: Vec<&FaultEvent> = plan.events().iter().collect();
        let kept: Vec<&FaultEvent> = with_shards
            .events()
            .iter()
            .filter(|e| !matches!(e.kind, FaultKind::KvsShardCrash { .. }))
            .collect();
        assert_eq!(old, kept);
        assert_eq!(with_shards.len(), plan.len() + 2);
    }

    #[test]
    fn backoff_without_jitter_is_nominal_and_capped() {
        let p = RetryPolicy {
            base: SimDuration::from_micros(100),
            cap: SimDuration::from_millis(1),
            max_attempts: 10,
            jitter_frac: 0.0,
            attempt_timeout: SimDuration::from_millis(5),
        };
        assert_eq!(p.nominal_backoff(0).nanos(), 100_000);
        assert_eq!(p.nominal_backoff(1).nanos(), 200_000);
        assert_eq!(p.nominal_backoff(3).nanos(), 800_000);
        assert_eq!(p.nominal_backoff(4).nanos(), 1_000_000); // capped
        assert_eq!(p.nominal_backoff(63).nanos(), 1_000_000);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.backoff(2, &mut rng), p.nominal_backoff(2));
    }
}

#[cfg(test)]
mod retry_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // Nominal backoff is monotone non-decreasing and never exceeds
        // the cap, for any (base, cap, attempt) combination.
        #[test]
        fn nominal_backoff_is_monotone_and_capped(
            base_us in 1u64..10_000,
            cap_us in 1u64..1_000_000,
            attempt in 0u32..80,
        ) {
            let p = RetryPolicy {
                base: SimDuration::from_micros(base_us),
                cap: SimDuration::from_micros(cap_us),
                max_attempts: 8,
                jitter_frac: 0.0,
                attempt_timeout: SimDuration::from_millis(1),
            };
            let d = p.nominal_backoff(attempt);
            prop_assert!(d <= p.cap);
            if attempt > 0 {
                prop_assert!(d >= p.nominal_backoff(attempt - 1));
            }
            // Below the cap the law is exactly base · 2^attempt.
            let mult = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
            let exact = (base_us * 1_000).saturating_mul(mult);
            if exact < p.cap.nanos() {
                prop_assert_eq!(d.nanos(), exact);
            }
        }

        // Jittered backoff stays inside the configured multiplicative
        // band around the nominal delay.
        #[test]
        fn jitter_stays_in_band(
            base_us in 1u64..10_000,
            cap_us in 100u64..1_000_000,
            attempt in 0u32..40,
            jitter in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let p = RetryPolicy {
                base: SimDuration::from_micros(base_us),
                cap: SimDuration::from_micros(cap_us),
                max_attempts: 8,
                jitter_frac: jitter,
                attempt_timeout: SimDuration::from_millis(1),
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let d = p.backoff(attempt, &mut rng).as_secs_f64();
            let nominal = p.nominal_backoff(attempt).as_secs_f64();
            // mul_f64 rounds to whole nanoseconds: allow half-ulp slack.
            let slack = 0.51e-9;
            prop_assert!(d >= nominal * (1.0 - jitter) - slack,
                "d={d} below band floor {}", nominal * (1.0 - jitter));
            prop_assert!(d <= nominal * (1.0 + jitter) + slack,
                "d={d} above band ceiling {}", nominal * (1.0 + jitter));
        }

        // A retry loop driven by the policy performs at most
        // `max_attempts` attempts for any policy parameters, and exactly
        // `max_attempts` when every attempt fails.
        #[test]
        fn attempts_never_exceed_limit(
            base_us in 1u64..1_000,
            cap_us in 1u64..10_000,
            max_attempts in 1u32..12,
            jitter in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let p = RetryPolicy {
                base: SimDuration::from_micros(base_us),
                cap: SimDuration::from_micros(cap_us),
                max_attempts,
                jitter_frac: jitter,
                attempt_timeout: SimDuration::from_millis(1),
            };
            let mut rng = StdRng::seed_from_u64(seed);
            // Mirror the retry loop shape used by transport: attempt,
            // then back off unless the attempt budget is exhausted.
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                let failed = true; // worst case: everything fails
                if !failed || attempts >= p.max_attempts {
                    break;
                }
                let _ = p.backoff(attempts - 1, &mut rng);
            }
            prop_assert_eq!(attempts, p.max_attempts);
        }
    }
}
