//! Structural and dynamical observables beyond the contact analysis:
//! radial distribution functions and mean-squared displacement — the
//! standard "is this trajectory physical?" kernels an in situ pipeline
//! runs alongside the event detectors.

use rayon::prelude::*;

/// The radial distribution function g(r) of a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Rdf {
    /// Bin width (Δr).
    pub dr: f64,
    /// g(r) values at `r = (i + 0.5)·dr`.
    pub g: Vec<f64>,
}

impl Rdf {
    /// Compute g(r) up to `r_max` in `bins` bins under periodic
    /// boundary conditions (minimum image; `r_max` should be at most
    /// half the box).
    pub fn compute(positions: &[[f64; 3]], box_lengths: [f32; 3], r_max: f64, bins: usize) -> Rdf {
        assert!(bins > 0 && r_max > 0.0);
        let n = positions.len();
        let dr = r_max / bins as f64;
        let bl = [
            box_lengths[0] as f64,
            box_lengths[1] as f64,
            box_lengths[2] as f64,
        ];
        // Histogram pair distances (parallel over i, merge per-thread).
        let hist: Vec<u64> = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut h = vec![0u64; bins];
                for j in (i + 1)..n {
                    let mut r2 = 0.0;
                    for k in 0..3 {
                        let mut d = positions[i][k] - positions[j][k];
                        if bl[k] > 0.0 {
                            d -= bl[k] * (d / bl[k]).round();
                        }
                        r2 += d * d;
                    }
                    let r = r2.sqrt();
                    if r < r_max {
                        h[(r / dr) as usize] += 1;
                    }
                }
                h
            })
            .reduce(
                || vec![0u64; bins],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        // Normalize by the ideal-gas shell count.
        let volume = bl[0] * bl[1] * bl[2];
        let density = n as f64 / volume;
        let mut g = Vec::with_capacity(bins);
        for (i, &count) in hist.iter().enumerate() {
            let r_lo = i as f64 * dr;
            let r_hi = r_lo + dr;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            let ideal_pairs = 0.5 * n as f64 * density * shell;
            g.push(if ideal_pairs > 0.0 {
                count as f64 / ideal_pairs
            } else {
                0.0
            });
        }
        Rdf { dr, g }
    }

    /// The location of the first peak of g(r) (the nearest-neighbour
    /// shell): the first local maximum rising above 1.5. `None` for
    /// structureless (ideal-gas-like) input.
    pub fn first_peak(&self) -> Option<f64> {
        let start = self.g.iter().position(|&v| v > 1.5)?;
        let mut idx = start;
        while idx + 1 < self.g.len() && self.g[idx + 1] > self.g[idx] {
            idx += 1;
        }
        Some((idx as f64 + 0.5) * self.dr)
    }
}

/// Mean-squared-displacement accumulator: feed frames in order, read
/// MSD(t) relative to the first frame. Unwraps periodic boundary
/// crossings so diffusion is measured correctly.
#[derive(Debug, Clone, Default)]
pub struct Msd {
    reference: Vec<[f64; 3]>,
    unwrapped: Vec<[f64; 3]>,
    previous: Vec<[f64; 3]>,
    /// MSD value per recorded frame (first frame = 0).
    pub series: Vec<f64>,
}

impl Msd {
    /// Empty accumulator.
    pub fn new() -> Msd {
        Msd::default()
    }

    /// Add the next frame (positions wrapped into the box).
    pub fn push(&mut self, positions: &[[f64; 3]], box_lengths: [f32; 3]) {
        let bl = [
            box_lengths[0] as f64,
            box_lengths[1] as f64,
            box_lengths[2] as f64,
        ];
        if self.reference.is_empty() {
            self.reference = positions.to_vec();
            self.unwrapped = positions.to_vec();
            self.previous = positions.to_vec();
            self.series.push(0.0);
            return;
        }
        assert_eq!(
            positions.len(),
            self.reference.len(),
            "MSD frames must have a fixed atom count"
        );
        // Unwrap: the true displacement this step is the minimum-image
        // displacement from the previous wrapped position.
        for (i, p) in positions.iter().enumerate() {
            for k in 0..3 {
                let mut d = p[k] - self.previous[i][k];
                if bl[k] > 0.0 {
                    d -= bl[k] * (d / bl[k]).round();
                }
                self.unwrapped[i][k] += d;
            }
        }
        self.previous = positions.to_vec();
        let msd = self
            .unwrapped
            .par_iter()
            .zip(self.reference.par_iter())
            .map(|(u, r)| {
                let mut s = 0.0;
                for k in 0..3 {
                    let d = u[k] - r[k];
                    s += d * d;
                }
                s
            })
            .sum::<f64>()
            / positions.len() as f64;
        self.series.push(msd);
    }

    /// Estimated diffusion coefficient from the last half of the series
    /// (Einstein relation, `MSD = 6·D·t` with `dt` between frames).
    pub fn diffusion_coefficient(&self, dt: f64) -> Option<f64> {
        if self.series.len() < 4 || dt <= 0.0 {
            return None;
        }
        let half = self.series.len() / 2;
        // Least-squares slope of MSD vs t over the tail.
        let pts: Vec<(f64, f64)> = self.series[half..]
            .iter()
            .enumerate()
            .map(|(i, &m)| (((half + i) as f64) * dt, m))
            .collect();
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        Some(slope / 6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdf_of_ideal_gas_is_flat_around_one() {
        // Uniform random points: g(r) ≈ 1 away from r = 0.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let box_len = 20.0f32;
        let positions: Vec<[f64; 3]> = (0..2000)
            .map(|_| {
                [
                    rng.random_range(0.0..box_len as f64),
                    rng.random_range(0.0..box_len as f64),
                    rng.random_range(0.0..box_len as f64),
                ]
            })
            .collect();
        let rdf = Rdf::compute(&positions, [box_len; 3], 8.0, 40);
        // Skip the first couple of noisy near-zero bins.
        for (i, &g) in rdf.g.iter().enumerate().skip(4) {
            assert!((g - 1.0).abs() < 0.25, "bin {i}: g = {g}");
        }
        assert_eq!(rdf.first_peak(), None);
    }

    #[test]
    fn rdf_of_a_lattice_peaks_at_the_spacing() {
        // Simple cubic lattice, spacing 2: strong peak at r = 2.
        let mut positions = Vec::new();
        for x in 0..6 {
            for y in 0..6 {
                for z in 0..6 {
                    positions.push([x as f64 * 2.0, y as f64 * 2.0, z as f64 * 2.0]);
                }
            }
        }
        let rdf = Rdf::compute(&positions, [12.0; 3], 3.5, 35);
        let peak = rdf.first_peak().expect("lattice has structure");
        assert!((peak - 2.0).abs() < 0.15, "first peak at {peak}");
    }

    #[test]
    fn msd_of_static_positions_is_zero() {
        let pos = vec![[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let mut msd = Msd::new();
        for _ in 0..5 {
            msd.push(&pos, [10.0; 3]);
        }
        assert_eq!(msd.series.len(), 5);
        assert!(msd.series.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn msd_of_ballistic_motion_is_quadratic() {
        // Every atom moves +0.1 in x per frame: MSD(t) = (0.1 t)^2.
        let mut msd = Msd::new();
        for t in 0..10 {
            let pos: Vec<[f64; 3]> = (0..4)
                .map(|i| {
                    let x: f64 = i as f64 * 3.0 + 0.1 * t as f64;
                    [x.rem_euclid(12.0), 1.0, 1.0]
                })
                .collect();
            msd.push(&pos, [12.0; 3]);
        }
        for (t, &m) in msd.series.iter().enumerate() {
            let expect = (0.1 * t as f64).powi(2);
            assert!((m - expect).abs() < 1e-9, "t={t}: {m} vs {expect}");
        }
    }

    #[test]
    fn msd_unwraps_periodic_crossings() {
        // An atom marching +0.4/frame through a 2.0 box: wrapped
        // positions jump, unwrapped displacement must keep growing.
        let mut msd = Msd::new();
        for t in 0..12 {
            let x: f64 = (0.4 * t as f64).rem_euclid(2.0);
            msd.push(&[[x, 0.5, 0.5]], [2.0; 3]);
        }
        let expect = (0.4 * 11.0f64).powi(2);
        let last = *msd.series.last().unwrap();
        assert!((last - expect).abs() < 1e-9, "{last} vs {expect}");
    }

    #[test]
    fn diffusion_coefficient_from_linear_msd() {
        // Construct MSD = 6 D t exactly with D = 0.5, dt = 0.1.
        let mut msd = Msd::new();
        msd.series = (0..20).map(|t| 6.0 * 0.5 * (t as f64) * 0.1).collect();
        let d = msd.diffusion_coefficient(0.1).unwrap();
        assert!((d - 0.5).abs() < 1e-9, "D = {d}");
    }

    #[test]
    fn rdf_on_real_md_configuration() {
        use mdsim::{EngineConfig, MdEngine};
        let mut e = MdEngine::new(EngineConfig {
            n_atoms: 343,
            density: 0.8,
            ..EngineConfig::default()
        });
        e.run(100);
        let rdf = Rdf::compute(e.positions(), [e.box_len() as f32; 3], 3.0, 60);
        // A Lennard-Jones liquid has its first shell near r ≈ 1.1 σ.
        let peak = rdf.first_peak().expect("LJ liquid is structured");
        assert!((0.95..1.35).contains(&peak), "first peak at {peak}");
    }
}
