//! # analytics — in situ analysis of MD frames
//!
//! The consumer side of the paper's workflows (Figure 1): frames are
//! deserialized and analyzed as they arrive, without a post-processing
//! pass. Implemented kernels:
//!
//! * **contact matrix** over a selection of atoms (pairwise distance
//!   threshold, minimum-image convention);
//! * **largest eigenvalue** of the contact matrix by power iteration —
//!   Figure 1's per-helix eigenvalue traces that flag conformational
//!   events;
//! * **radius of gyration**;
//! * **RMSD** against a reference frame (translation-removed);
//! * a [`Pipeline`] tying these together per frame, with rayon used for
//!   the distance kernels.
//!
//! All kernels operate on real [`mdsim::Frame`] data.

#![warn(missing_docs)]

mod structure;

pub use structure::{Msd, Rdf};

use mdsim::Frame;
use rayon::prelude::*;

/// A dense symmetric contact matrix over `n` selected atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct ContactMatrix {
    n: usize,
    data: Vec<f64>,
}

impl ContactMatrix {
    /// Build from `positions` (already selected), marking pairs closer
    /// than `threshold` (minimum-image over `box_lengths`). The diagonal
    /// is 1.
    pub fn build(positions: &[[f64; 3]], box_lengths: [f32; 3], threshold: f64) -> Self {
        let n = positions.len();
        let t2 = threshold * threshold;
        let bl = [
            box_lengths[0] as f64,
            box_lengths[1] as f64,
            box_lengths[2] as f64,
        ];
        let data: Vec<f64> = (0..n * n)
            .into_par_iter()
            .map(|idx| {
                let (i, j) = (idx / n, idx % n);
                if i == j {
                    return 1.0;
                }
                let mut r2 = 0.0;
                for k in 0..3 {
                    let mut d = positions[i][k] - positions[j][k];
                    if bl[k] > 0.0 {
                        d -= bl[k] * (d / bl[k]).round();
                    }
                    r2 += d * d;
                }
                if r2 < t2 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        ContactMatrix { n, data }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry (i, j).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Number of contacts (off-diagonal 1s, counted once per pair).
    pub fn contact_count(&self) -> usize {
        let mut c = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.get(i, j) > 0.5 {
                    c += 1;
                }
            }
        }
        c
    }

    /// Largest eigenvalue by power iteration (the matrix is symmetric
    /// non-negative, so the dominant eigenvalue is real and the
    /// iteration converges). Returns 0 for the empty matrix.
    pub fn largest_eigenvalue(&self, iterations: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n;
        let mut v = vec![1.0f64 / (n as f64).sqrt(); n];
        let mut lambda = 0.0;
        for _ in 0..iterations {
            let w: Vec<f64> = (0..n)
                .into_par_iter()
                .map(|i| {
                    let row = &self.data[i * n..(i + 1) * n];
                    row.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>()
                })
                .collect();
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return 0.0;
            }
            lambda = norm;
            v = w.into_iter().map(|x| x / norm).collect();
        }
        lambda
    }
}

/// Radius of gyration of a set of positions (no periodic wrapping; use a
/// compact selection).
pub fn radius_of_gyration(positions: &[[f64; 3]]) -> f64 {
    if positions.is_empty() {
        return 0.0;
    }
    let n = positions.len() as f64;
    let mut com = [0.0f64; 3];
    for p in positions {
        for k in 0..3 {
            com[k] += p[k];
        }
    }
    for c in &mut com {
        *c /= n;
    }
    let sum: f64 = positions
        .iter()
        .map(|p| {
            let mut r2 = 0.0;
            for k in 0..3 {
                let d = p[k] - com[k];
                r2 += d * d;
            }
            r2
        })
        .sum();
    (sum / n).sqrt()
}

/// Root-mean-square deviation between two equal-length position sets
/// after removing the translation between their centroids.
pub fn rmsd(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmsd requires equal selections");
    if a.is_empty() {
        return 0.0;
    }
    let n = a.len() as f64;
    let mut ca = [0.0f64; 3];
    let mut cb = [0.0f64; 3];
    for (pa, pb) in a.iter().zip(b) {
        for k in 0..3 {
            ca[k] += pa[k];
            cb[k] += pb[k];
        }
    }
    for k in 0..3 {
        ca[k] /= n;
        cb[k] /= n;
    }
    let sum: f64 = a
        .par_iter()
        .zip(b.par_iter())
        .map(|(pa, pb)| {
            let mut r2 = 0.0;
            for k in 0..3 {
                let d = (pa[k] - ca[k]) - (pb[k] - cb[k]);
                r2 += d * d;
            }
            r2
        })
        .sum();
    (sum / n).sqrt()
}

/// Result of analyzing one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameAnalysis {
    /// MD step of the analyzed frame.
    pub step: u64,
    /// Largest eigenvalue of the selection's contact matrix.
    pub largest_eigenvalue: f64,
    /// Number of contacts in the selection.
    pub contacts: usize,
    /// Radius of gyration of the selection.
    pub radius_of_gyration: f64,
    /// RMSD vs the first frame seen (0 for the first frame).
    pub rmsd_to_first: f64,
}

/// A per-consumer analysis pipeline: selects the first `selection` atoms
/// of each frame (a "helix" stand-in), tracks the largest eigenvalue of
/// their contact matrix over time — the quantity Figure 1 plots — plus
/// Rg and RMSD against the first frame.
pub struct Pipeline {
    selection: usize,
    contact_threshold: f64,
    power_iterations: usize,
    reference: Option<Vec<[f64; 3]>>,
    history: Vec<FrameAnalysis>,
}

impl Pipeline {
    /// Analyze the first `selection` atoms with the given contact
    /// threshold.
    pub fn new(selection: usize, contact_threshold: f64) -> Self {
        Pipeline {
            selection,
            contact_threshold,
            power_iterations: 50,
            reference: None,
            history: Vec::new(),
        }
    }

    /// Analyze one frame, returning and recording the result.
    pub fn analyze(&mut self, frame: &Frame) -> FrameAnalysis {
        let sel = frame.positions.len().min(self.selection);
        let pos = &frame.positions[..sel];
        let cm = ContactMatrix::build(pos, frame.box_lengths, self.contact_threshold);
        let reference = self.reference.get_or_insert_with(|| pos.to_vec());
        let result = FrameAnalysis {
            step: frame.step,
            largest_eigenvalue: cm.largest_eigenvalue(self.power_iterations),
            contacts: cm.contact_count(),
            radius_of_gyration: radius_of_gyration(pos),
            rmsd_to_first: rmsd(pos, reference),
        };
        self.history.push(result.clone());
        result
    }

    /// Everything analyzed so far, in arrival order.
    pub fn history(&self) -> &[FrameAnalysis] {
        &self.history
    }

    /// Detect sudden eigenvalue changes (the events Figure 1's arrows
    /// mark): indices where |λ(t) − λ(t−1)| exceeds `jump`.
    pub fn eigenvalue_events(&self, jump: f64) -> Vec<usize> {
        self.history
            .windows(2)
            .enumerate()
            .filter(|(_, w)| (w[1].largest_eigenvalue - w[0].largest_eigenvalue).abs() > jump)
            .map(|(i, _)| i + 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::Model;

    fn frame_with(positions: Vec<[f64; 3]>) -> Frame {
        Frame {
            model: Model::Jac,
            step: 1,
            box_lengths: [100.0; 3],
            ids: (0..positions.len() as u32).collect(),
            positions,
        }
    }

    #[test]
    fn contact_matrix_flags_close_pairs() {
        let pos = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [10.0, 0.0, 0.0]];
        let cm = ContactMatrix::build(&pos, [100.0; 3], 2.0);
        assert_eq!(cm.get(0, 1), 1.0);
        assert_eq!(cm.get(1, 0), 1.0);
        assert_eq!(cm.get(0, 2), 0.0);
        assert_eq!(cm.get(0, 0), 1.0);
        assert_eq!(cm.contact_count(), 1);
    }

    #[test]
    fn contact_matrix_respects_periodicity() {
        // Two atoms separated by 9.5 in a 10-box are 0.5 apart.
        let pos = vec![[0.25, 0.0, 0.0], [9.75, 0.0, 0.0]];
        let cm = ContactMatrix::build(&pos, [10.0; 3], 1.0);
        assert_eq!(cm.get(0, 1), 1.0);
    }

    #[test]
    fn eigenvalue_of_all_ones_matrix_is_n() {
        // All atoms mutually in contact -> matrix of ones -> λmax = n.
        let pos = vec![[0.0; 3]; 6];
        let cm = ContactMatrix::build(&pos, [100.0; 3], 1.0);
        let l = cm.largest_eigenvalue(100);
        assert!((l - 6.0).abs() < 1e-9, "λ = {l}");
    }

    #[test]
    fn eigenvalue_of_identity_is_one() {
        // No contacts -> identity matrix -> λmax = 1.
        let pos: Vec<[f64; 3]> = (0..5).map(|i| [i as f64 * 10.0, 0.0, 0.0]).collect();
        let cm = ContactMatrix::build(&pos, [1000.0; 3], 1.0);
        let l = cm.largest_eigenvalue(100);
        assert!((l - 1.0).abs() < 1e-9, "λ = {l}");
    }

    #[test]
    fn rg_of_known_configuration() {
        // Two points 2 apart: Rg = 1.
        let pos = vec![[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]];
        assert!((radius_of_gyration(&pos) - 1.0).abs() < 1e-12);
        assert_eq!(radius_of_gyration(&[]), 0.0);
    }

    #[test]
    fn rmsd_is_translation_invariant_and_zero_on_self() {
        let a = vec![[0.0, 0.0, 0.0], [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let b: Vec<[f64; 3]> = a.iter().map(|p| [p[0] + 7.0, p[1] - 2.0, p[2]]).collect();
        assert!(rmsd(&a, &a) < 1e-12);
        assert!(rmsd(&a, &b) < 1e-12, "translation should not count");
        let c: Vec<[f64; 3]> = a
            .iter()
            .enumerate()
            .map(|(i, p)| [p[0] + i as f64, p[1], p[2]])
            .collect();
        assert!(rmsd(&a, &c) > 0.1);
    }

    #[test]
    fn pipeline_tracks_history_and_reference() {
        let mut pl = Pipeline::new(10, 1.5);
        let f1 = frame_with((0..10).map(|i| [i as f64, 0.0, 0.0]).collect());
        let f2 = frame_with((0..10).map(|i| [i as f64 * 1.5, 0.0, 0.0]).collect());
        let r1 = pl.analyze(&f1);
        let r2 = pl.analyze(&f2);
        assert_eq!(r1.rmsd_to_first, 0.0);
        assert!(r2.rmsd_to_first > 0.0);
        assert_eq!(pl.history().len(), 2);
        // Chain of contacts in f1 (spacing 1 < 1.5); none in f2.
        assert!(r1.contacts >= 9);
        assert_eq!(r2.contacts, 0);
        assert!(r1.largest_eigenvalue > r2.largest_eigenvalue);
    }

    #[test]
    fn eigenvalue_events_detects_jumps() {
        let mut pl = Pipeline::new(8, 1.5);
        // 3 frames tightly packed, then an expanded one.
        for _ in 0..3 {
            pl.analyze(&frame_with((0..8).map(|i| [i as f64, 0.0, 0.0]).collect()));
        }
        pl.analyze(&frame_with(
            (0..8).map(|i| [i as f64 * 5.0, 0.0, 0.0]).collect(),
        ));
        let events = pl.eigenvalue_events(0.5);
        assert_eq!(events, vec![3]);
    }

    #[test]
    fn pipeline_on_real_md_trajectory() {
        use mdsim::{CaptureHook, EngineConfig, MdEngine};
        let mut engine = MdEngine::new(EngineConfig {
            n_atoms: 125,
            ..EngineConfig::default()
        });
        let mut hook = CaptureHook::new(Model::Jac, 5);
        let mut pl = Pipeline::new(30, 1.6);
        let mut frames = Vec::new();
        hook.run(&mut engine, 25, &mut |f: Frame| frames.push(f));
        for f in &frames {
            pl.analyze(f);
        }
        assert_eq!(pl.history().len(), 5);
        for h in pl.history() {
            assert!(h.largest_eigenvalue >= 1.0);
            assert!(h.radius_of_gyration > 0.0);
        }
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_positions(n: usize) -> impl Strategy<Value = Vec<[f64; 3]>> {
            proptest::collection::vec(
                (0.0f64..50.0, 0.0f64..50.0, 0.0f64..50.0).prop_map(|(x, y, z)| [x, y, z]),
                1..n,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn eigenvalue_bounded_by_matrix_size(pos in arb_positions(20)) {
                let cm = ContactMatrix::build(&pos, [50.0; 3], 3.0);
                let l = cm.largest_eigenvalue(60);
                // Row sums bound the spectral radius; diagonal gives >= ~1.
                prop_assert!(l <= pos.len() as f64 + 1e-9);
                prop_assert!(l >= 1.0 - 1e-9);
            }

            #[test]
            fn rmsd_symmetry(pos in arb_positions(20)) {
                let shifted: Vec<[f64;3]> =
                    pos.iter().map(|p| [p[0] + 1.0, p[1], p[2] - 3.0]).collect();
                let d1 = rmsd(&pos, &shifted);
                let d2 = rmsd(&shifted, &pos);
                prop_assert!((d1 - d2).abs() < 1e-9);
                prop_assert!(d1 < 1e-9); // pure translation
            }

            #[test]
            fn rg_scales_linearly(pos in arb_positions(20), k in 0.1f64..10.0) {
                let scaled: Vec<[f64;3]> =
                    pos.iter().map(|p| [p[0] * k, p[1] * k, p[2] * k]).collect();
                let r1 = radius_of_gyration(&pos);
                let r2 = radius_of_gyration(&scaled);
                prop_assert!((r2 - r1 * k).abs() < 1e-6 * (1.0 + r2));
            }
        }
    }
}
