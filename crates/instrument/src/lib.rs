//! # instrument — Caliper-like performance annotation
//!
//! The paper instruments its workflow with Caliper [21]: nested annotated
//! regions whose inclusive times are collected per call path. This crate
//! provides the same model for simulated processes:
//!
//! * a [`Recorder`] per process maintains a region stack;
//! * [`Recorder::region`] returns an RAII guard — the region spans until
//!   the guard drops, across any number of awaits;
//! * the result is a [`Profile`]: a call-path tree with per-node call
//!   counts, inclusive simulated time, and derived exclusive time,
//!   ready for Thicket-style ensemble aggregation.
//!
//! Metric annotations ([`Recorder::annotate`]) attach numeric values
//! (e.g. bytes moved, KVS polls) to the current path.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use simcore::intern::{intern, Symbol};
use simcore::trace::{SpanGuard, Tracer};
use simcore::{Ctx, SimDuration, SimTime};

/// A node of the finalized call-path tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Times the region was entered.
    pub count: u64,
    /// Total simulated time spent inside the region (inclusive).
    pub inclusive: SimDuration,
    /// Numeric annotations attached at this path (summed).
    pub metrics: BTreeMap<String, f64>,
    /// Child regions by name.
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// Inclusive time minus the inclusive time of all children.
    pub fn exclusive(&self) -> SimDuration {
        let child_sum: SimDuration = self
            .children
            .values()
            .map(|c| c.inclusive)
            .fold(SimDuration::ZERO, |a, b| a + b);
        self.inclusive.saturating_sub(child_sum)
    }
}

/// A finalized per-process call-path profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Synthetic root; its children are the top-level regions.
    pub root: ProfileNode,
}

impl Profile {
    /// Look up a node by path, e.g. `&["dyad_consume", "dyad_fetch"]`.
    pub fn node(&self, path: &[&str]) -> Option<&ProfileNode> {
        let mut cur = &self.root;
        for comp in path {
            cur = cur.children.get(*comp)?;
        }
        Some(cur)
    }

    /// Inclusive time at a path (zero if absent).
    pub fn inclusive(&self, path: &[&str]) -> SimDuration {
        self.node(path).map(|n| n.inclusive).unwrap_or_default()
    }

    /// Flatten to `(path, node)` pairs in depth-first order.
    pub fn flatten(&self) -> Vec<(Vec<String>, &ProfileNode)> {
        let mut out = Vec::new();
        fn walk<'a>(
            node: &'a ProfileNode,
            path: &mut Vec<String>,
            out: &mut Vec<(Vec<String>, &'a ProfileNode)>,
        ) {
            for (name, child) in &node.children {
                path.push(name.clone());
                out.push((path.clone(), child));
                walk(child, path, out);
                path.pop();
            }
        }
        walk(&self.root, &mut Vec::new(), &mut out);
        out
    }

    /// Sum a numeric annotation over the whole tree, wherever it was
    /// attached. Used to aggregate sparse counters (retries, fallbacks,
    /// typed failures) without knowing their region paths.
    pub fn sum_metric(&self, key: &str) -> f64 {
        fn walk(node: &ProfileNode, key: &str) -> f64 {
            node.metrics.get(key).copied().unwrap_or(0.0)
                + node.children.values().map(|c| walk(c, key)).sum::<f64>()
        }
        walk(&self.root, key)
    }

    /// Merge another profile into this one (summing counts and times).
    pub fn merge(&mut self, other: &Profile) {
        fn merge_node(into: &mut ProfileNode, from: &ProfileNode) {
            into.count += from.count;
            into.inclusive += from.inclusive;
            for (k, v) in &from.metrics {
                *into.metrics.entry(k.clone()).or_insert(0.0) += v;
            }
            for (name, child) in &from.children {
                merge_node(into.children.entry(name.clone()).or_default(), child);
            }
        }
        merge_node(&mut self.root, &other.root);
    }
}

/// Internal tree node: region names stay interned while recording so
/// the per-region hot path never allocates; [`Recorder::finish`]
/// resolves symbols back to strings when building the public
/// [`Profile`].
///
/// Metrics and children live in insertion-ordered vecs rather than hash
/// maps: real region trees are a handful of entries wide, so a linear
/// scan over `u32` symbols beats two hash probes, and a `Vec` carries
/// none of the map's bucket overhead — at 100k+ pairs the recorder trees
/// are a measurable share of peak RSS (see DESIGN.md §11).
#[derive(Default)]
struct RecNode {
    count: u64,
    inclusive: SimDuration,
    metrics: Vec<(Symbol, f64)>,
    children: Vec<(Symbol, RecNode)>,
}

impl RecNode {
    /// Child node for `name`, created on first use (insertion order).
    fn child(&mut self, name: Symbol) -> &mut RecNode {
        let idx = match self.children.iter().position(|(k, _)| *k == name) {
            Some(i) => i,
            None => {
                self.children.push((name, RecNode::default()));
                self.children.len() - 1
            }
        };
        &mut self.children[idx].1
    }

    /// Accumulator slot for metric `key`, created on first use.
    fn metric(&mut self, key: Symbol) -> &mut f64 {
        let idx = match self.metrics.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                self.metrics.push((key, 0.0));
                self.metrics.len() - 1
            }
        };
        &mut self.metrics[idx].1
    }

    fn to_profile(&self) -> ProfileNode {
        ProfileNode {
            count: self.count,
            inclusive: self.inclusive,
            metrics: self
                .metrics
                .iter()
                .map(|(k, v)| (k.resolve().to_string(), *v))
                .collect(),
            children: self
                .children
                .iter()
                .map(|(k, v)| (k.resolve().to_string(), v.to_profile()))
                .collect(),
        }
    }
}

struct RecState {
    root: RecNode,
    /// Names of the currently open regions, outermost first.
    stack: Vec<Symbol>,
}

/// A per-process region recorder.
#[derive(Clone)]
pub struct Recorder {
    ctx: Ctx,
    state: Rc<RefCell<RecState>>,
    tracer: Tracer,
    track: Rc<String>,
}

impl Recorder {
    /// Create a recorder bound to the simulation clock.
    pub fn new(ctx: &Ctx) -> Self {
        Recorder::traced(ctx, Tracer::disabled(), "process")
    }

    /// Create a recorder that additionally mirrors every region into a
    /// [`Tracer`] as a span on timeline `track` — a Chrome/Perfetto
    /// trace of the run falls out for free.
    pub fn traced(ctx: &Ctx, tracer: Tracer, track: &str) -> Self {
        Recorder {
            ctx: ctx.clone(),
            state: Rc::new(RefCell::new(RecState {
                root: RecNode::default(),
                stack: Vec::new(),
            })),
            tracer,
            track: Rc::new(track.to_string()),
        }
    }

    /// Enter a region; it closes when the returned guard drops. Regions
    /// must be closed in LIFO order (guards enforce this naturally when
    /// kept in scope).
    pub fn region(&self, name: &str) -> RegionGuard {
        self.state.borrow_mut().stack.push(intern(name));
        let span = if self.tracer.is_enabled() {
            Some(self.tracer.span(&self.ctx, &self.track, "region", name))
        } else {
            None
        };
        RegionGuard {
            rec: self.clone(),
            start: self.ctx.now(),
            closed: false,
            span,
        }
    }

    /// Run `f` inside a region (synchronous convenience).
    pub fn scope<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let _g = self.region(name);
        f()
    }

    /// Attach a numeric metric to the current path (summed across calls).
    pub fn annotate(&self, key: &str, value: f64) {
        let mut st = self.state.borrow_mut();
        // Split-borrow so the stack can be read while the tree is walked
        // mutably — no clone of the path on this hot call.
        let RecState { root, stack } = &mut *st;
        let node = Self::node_at(root, stack);
        *node.metric(intern(key)) += value;
    }

    fn node_at<'a>(root: &'a mut RecNode, path: &[Symbol]) -> &'a mut RecNode {
        let mut cur = root;
        for comp in path {
            cur = cur.child(*comp);
        }
        cur
    }

    fn close_region(&self, start: SimTime) {
        let now = self.ctx.now();
        let mut st = self.state.borrow_mut();
        assert!(!st.stack.is_empty(), "region closed with empty stack");
        let RecState { root, stack } = &mut *st;
        let node = Self::node_at(root, stack);
        node.count += 1;
        node.inclusive += now - start;
        st.stack.pop();
    }

    /// Finalize into a [`Profile`]. Panics if regions are still open.
    pub fn finish(self) -> Profile {
        let st = self.state.borrow();
        assert!(
            st.stack.is_empty(),
            "finish() with open regions: {:?}",
            st.stack.iter().map(|s| s.resolve()).collect::<Vec<_>>()
        );
        Profile {
            root: st.root.to_profile(),
        }
    }

    /// Snapshot without consuming (open regions are not included).
    pub fn snapshot(&self) -> Profile {
        Profile {
            root: self.state.borrow().root.to_profile(),
        }
    }
}

/// RAII guard returned by [`Recorder::region`].
pub struct RegionGuard {
    rec: Recorder,
    start: SimTime,
    closed: bool,
    span: Option<SpanGuard>,
}

impl RegionGuard {
    /// Close the region explicitly (otherwise closes on drop).
    pub fn end(mut self) {
        self.rec.close_region(self.start);
        self.closed = true;
        self.span.take();
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        if !self.closed {
            self.rec.close_region(self.start);
        }
    }
}

/// Calendar-shard load summary distilled from [`simcore::ShardStats`].
///
/// Built from *worker-invariant* counters only (events fired per shard),
/// so it is safe to surface in any report that must stay byte-identical
/// across worker counts. The worker-variant staging counter is
/// deliberately not carried here.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardLoad {
    /// Number of calendar shards the run was configured with.
    pub shards: u32,
    /// Events fired across all shards.
    pub fired_total: u64,
    /// Events fired by the busiest shard.
    pub fired_max: u64,
    /// `fired_max / (fired_total / shards)`: 1.0 is perfectly balanced,
    /// `shards` means one shard did everything. 0.0 when nothing fired.
    pub imbalance: f64,
}

impl ShardLoad {
    /// Summarize a run's per-shard counters.
    pub fn from_stats(stats: &[simcore::ShardStats]) -> ShardLoad {
        let shards = stats.len() as u32;
        let fired_total: u64 = stats.iter().map(|s| s.fired).sum();
        let fired_max = stats.iter().map(|s| s.fired).max().unwrap_or(0);
        let imbalance = if fired_total == 0 || shards == 0 {
            0.0
        } else {
            fired_max as f64 / (fired_total as f64 / shards as f64)
        };
        ShardLoad {
            shards,
            fired_total,
            fired_max,
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    #[test]
    fn nested_regions_build_a_tree() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec = Recorder::new(&ctx);
        let rec2 = rec.clone();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            let outer = rec2.region("consume");
            ctx2.sleep(SimDuration::from_micros(10)).await;
            {
                let inner = rec2.region("fetch");
                ctx2.sleep(SimDuration::from_micros(5)).await;
                inner.end();
            }
            {
                let inner = rec2.region("store");
                ctx2.sleep(SimDuration::from_micros(3)).await;
                inner.end();
            }
            outer.end();
        });
        sim.run();
        let p = rec.finish();
        let consume = p.node(&["consume"]).unwrap();
        assert_eq!(consume.count, 1);
        assert_eq!(consume.inclusive, SimDuration::from_micros(18));
        assert_eq!(
            p.inclusive(&["consume", "fetch"]),
            SimDuration::from_micros(5)
        );
        assert_eq!(
            p.inclusive(&["consume", "store"]),
            SimDuration::from_micros(3)
        );
        assert_eq!(consume.exclusive(), SimDuration::from_micros(10));
    }

    #[test]
    fn repeated_regions_accumulate() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec = Recorder::new(&ctx);
        let rec2 = rec.clone();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            for _ in 0..4 {
                let g = rec2.region("step");
                ctx2.sleep(SimDuration::from_micros(2)).await;
                g.end();
            }
        });
        sim.run();
        let p = rec.finish();
        let n = p.node(&["step"]).unwrap();
        assert_eq!(n.count, 4);
        assert_eq!(n.inclusive, SimDuration::from_micros(8));
    }

    #[test]
    fn annotations_attach_to_current_path() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec = Recorder::new(&ctx);
        let rec2 = rec.clone();
        sim.spawn(async move {
            let g = rec2.region("fetch");
            rec2.annotate("polls", 3.0);
            rec2.annotate("polls", 2.0);
            g.end();
        });
        sim.run();
        let p = rec.finish();
        assert_eq!(p.node(&["fetch"]).unwrap().metrics["polls"], 5.0);
    }

    #[test]
    fn guard_drop_closes_region() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec = Recorder::new(&ctx);
        let rec2 = rec.clone();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            let _g = rec2.region("auto");
            ctx2.sleep(SimDuration::from_micros(1)).await;
            // dropped here
        });
        sim.run();
        assert_eq!(rec.finish().node(&["auto"]).unwrap().count, 1);
    }

    #[test]
    fn merge_sums_profiles() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec1 = Recorder::new(&ctx);
        let rec2 = Recorder::new(&ctx);
        for rec in [&rec1, &rec2] {
            let rec = rec.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                let g = rec.region("w");
                ctx.sleep(SimDuration::from_micros(7)).await;
                g.end();
            });
        }
        sim.run();
        let mut p = rec1.finish();
        p.merge(&rec2.finish());
        let n = p.node(&["w"]).unwrap();
        assert_eq!(n.count, 2);
        assert_eq!(n.inclusive, SimDuration::from_micros(14));
    }

    #[test]
    fn flatten_lists_all_paths() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec = Recorder::new(&ctx);
        let rec2 = rec.clone();
        sim.spawn(async move {
            let a = rec2.region("a");
            let b = rec2.region("b");
            b.end();
            a.end();
            let c = rec2.region("c");
            c.end();
        });
        sim.run();
        let p = rec.finish();
        let paths: Vec<String> = p.flatten().iter().map(|(p, _)| p.join("/")).collect();
        assert_eq!(paths, vec!["a", "a/b", "c"]);
    }

    #[test]
    #[should_panic(expected = "open regions")]
    fn finish_with_open_region_panics() {
        let sim = Sim::new(0);
        let rec = Recorder::new(&sim.ctx());
        let g = rec.region("left-open");
        std::mem::forget(g);
        let _ = rec.finish();
    }
}
