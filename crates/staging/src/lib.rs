//! # staging — bounded NVMe staging lifecycle management
//!
//! The paper's DYAD results assume every frame stays on node-local NVMe
//! for the whole campaign. Corona's NVMe is 3.5 TB/node; an STMV
//! campaign at 28.5 MiB/frame with 8 producer/consumer pairs per node
//! (plus consumer-side cache copies) outgrows that within a few thousand
//! frames. This crate adds the production concern the paper motivates
//! but never ran: a per-node staged-data lifecycle manager sitting
//! between `dyad` and `localfs`/`pfs`.
//!
//! Every staged frame moves through a lifecycle:
//!
//! ```text
//! written → published → consumed-by-all-registered-consumers → retireable
//! ```
//!
//! Consumption is tracked with **acknowledgement keys** committed through
//! the same Flux-like [`kvs`] that carries frame metadata: consumer `c`
//! acks frame `p` by committing `__staging/ack/c<p>`. A background
//! **evictor** process (plain simulated time, one per node) enforces a
//! configurable staging budget with low/high watermarks:
//!
//! * above the low watermark it *retires* fully-acked frames
//!   (oldest-first), unlinking the local file, the KVS metadata, and the
//!   ack keys;
//! * if retirement cannot reach the low watermark it *spills*
//!   still-needed frames to the Lustre-like [`pfs`], republishing their
//!   metadata with [`FrameLocation::Pfs`] so consumer refetches fall
//!   back KVS → NVMe-RDMA → PFS transparently;
//! * producers exceeding the **high** watermark block in
//!   [`StagingManager::admit`] until the evictor frees space
//!   (backpressure), so the workflow degrades gracefully instead of
//!   dying with `NoSpace`.
//!
//! Frame metadata ([`FrameMeta`]) lives here rather than in `dyad`
//! because the evictor rewrites it on spill; `dyad` re-exports it.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cluster::NodeId;
use kvs::KvsHandle;
use localfs::LocalFs;
use pfs::PfsClient;
use simcore::intern::{intern, FxHashMap, Symbol};
use simcore::sync::Notify;
use simcore::{race, Ctx, SimDuration};

/// Where a published frame's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameLocation {
    /// On the owner's node-local NVMe (managed directory).
    Nvme,
    /// Spilled to (or written directly on) the parallel filesystem.
    Pfs,
    /// Tombstone: every copy of the bytes is gone (owner crashed before
    /// a spill, or the spill copy itself was dropped). Consumers surface
    /// a typed frame-lost error instead of blocking forever.
    Lost,
}

/// Frame metadata stored in the KVS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Node that produced the frame (and holds it while on NVMe).
    pub owner: NodeId,
    /// Payload size in bytes.
    pub size: u64,
    /// Current home of the bytes.
    pub location: FrameLocation,
}

impl FrameMeta {
    /// Encode for the KVS value.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        b.put_u32(self.owner.0);
        b.put_u64(self.size);
        b.put_u8(match self.location {
            FrameLocation::Nvme => 0,
            FrameLocation::Pfs => 1,
            FrameLocation::Lost => 2,
        });
        b.freeze()
    }

    /// Decode from a KVS value.
    pub fn decode(mut raw: Bytes) -> FrameMeta {
        let owner = NodeId(raw.get_u32());
        let size = raw.get_u64();
        let location = match raw.get_u8() {
            0 => FrameLocation::Nvme,
            2 => FrameLocation::Lost,
            _ => FrameLocation::Pfs,
        };
        FrameMeta {
            owner,
            size,
            location,
        }
    }
}

/// What the evictor may do with staged frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Never retire or spill — the unbounded baseline the paper ran.
    KeepAll,
    /// Retire/spill only under watermark pressure (default).
    #[default]
    WatermarkOnly,
    /// Retire fully-acked frames on every evictor pass even without
    /// pressure (minimises NVMe footprint; more KVS traffic).
    EagerRetire,
}

impl RetentionPolicy {
    /// Stable lowercase name (used in reports and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            RetentionPolicy::KeepAll => "keep_all",
            RetentionPolicy::WatermarkOnly => "watermark_only",
            RetentionPolicy::EagerRetire => "eager_retire",
        }
    }
}

/// Staging-manager tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct StagingSpec {
    /// NVMe bytes the workflow may stage on this node. `u64::MAX`
    /// means unbounded (watermarks never trigger).
    pub budget_bytes: u64,
    /// Fraction of the budget the evictor frees down to.
    pub low_watermark: f64,
    /// Fraction of the budget above which producers block.
    pub high_watermark: f64,
    /// Period of the background evictor pass.
    pub evict_interval: SimDuration,
    /// What the evictor may do.
    pub retention: RetentionPolicy,
}

impl Default for StagingSpec {
    fn default() -> Self {
        StagingSpec {
            budget_bytes: u64::MAX,
            low_watermark: 0.7,
            high_watermark: 0.9,
            evict_interval: SimDuration::from_millis(200),
            retention: RetentionPolicy::WatermarkOnly,
        }
    }
}

/// Why a frame is on this node's NVMe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Produced here; the KVS metadata points at this copy.
    Produced,
    /// Consumer-side cache copy of a remote frame; evictable without
    /// acks (a refetch can always rebuild it).
    Cache,
}

/// Lifecycle state of a tracked frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// Bytes written to NVMe, metadata not yet committed.
    Written,
    /// Metadata committed; consumers can find it.
    Published,
    /// Moved to the PFS; local copy gone.
    Spilled,
    /// Every copy gone (node crash before spill, or spill copy dropped).
    /// Not consumable and holds no bytes; the evictor must skip it.
    Lost,
}

#[derive(Debug, Clone)]
struct Staged {
    path: Symbol,
    size: u64,
    kind: FrameKind,
    state: FrameState,
    seq: u64,
}

/// One retirement decision, kept for auditing: the evictor must never
/// remove a frame before every registered consumer acked it, and tests
/// assert exactly that over this log.
#[derive(Debug, Clone)]
pub struct RetireRecord {
    /// Managed path of the retired frame.
    pub path: String,
    /// Registered consumers covering this path at retirement time.
    pub required_acks: usize,
    /// Ack keys observed present.
    pub acks_seen: usize,
    /// True when the copy removed was a spilled PFS copy.
    pub was_spilled: bool,
}

/// Counters exposed to `mdflow::report`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StagingStats {
    /// Frames ever tracked (produced + cached).
    pub frames_tracked: u64,
    /// Bytes of tracked frames currently on NVMe.
    pub staged_bytes: u64,
    /// High-water mark of `staged_bytes`.
    pub peak_staged_bytes: u64,
    /// Fully-acked frames retired.
    pub retired_frames: u64,
    /// Bytes retired.
    pub retired_bytes: u64,
    /// Still-needed frames spilled to the PFS.
    pub spilled_frames: u64,
    /// Bytes spilled.
    pub spilled_bytes: u64,
    /// Consumer-side cache copies evicted.
    pub cache_evictions: u64,
    /// `admit` calls that blocked on the high watermark.
    pub backpressure_stalls: u64,
    /// Total time producers spent blocked.
    pub backpressure_wait: SimDuration,
    /// Consumer fetches served from the PFS after a spill.
    pub pfs_fallbacks: u64,
    /// Consumption acks committed through this manager.
    pub acks_published: u64,
    /// Frames whose every copy was lost (crash before spill, or the
    /// spill copy dropped).
    pub frames_lost: u64,
    /// Bytes of lost frames.
    pub lost_bytes: u64,
    /// Metadata re-commits performed on node restart (spilled frames
    /// re-pointed at the PFS, lost frames tombstoned).
    pub republished_frames: u64,
}

struct Inner {
    // Paths are interned once on track; every later lifecycle hit
    // (publish, ack, evict scan) keys on the 4-byte symbol.
    frames: FxHashMap<Symbol, Staged>,
    /// Insertion order — eviction scans oldest-first.
    order: BTreeMap<u64, Symbol>,
    next_seq: u64,
    /// `(path prefix, consumer id)` registrations.
    consumers: Vec<(String, String)>,
    /// Bytes producers currently blocked in [`StagingManager::admit`]
    /// are waiting to write — extra pressure the evictor must relieve.
    pending_demand: u64,
    stats: StagingStats,
    retire_log: Vec<RetireRecord>,
}

/// Per-node staged-data lifecycle manager.
///
/// One per compute node; `dyad` calls into it on every produce/consume
/// and the background evictor (see [`StagingManager::spawn_evictor`])
/// enforces the budget.
pub struct StagingManager {
    ctx: Ctx,
    node: NodeId,
    fs: LocalFs,
    kvs: KvsHandle,
    pfs: Option<PfsClient>,
    spec: StagingSpec,
    inner: RefCell<Inner>,
    /// Producer hit the high watermark — wake the evictor early.
    pressure: Notify,
    /// Evictor freed space — wake blocked producers.
    release: Notify,
}

/// The KVS key consumer `consumer` commits to ack frame `path`.
pub fn ack_key(path: &str, consumer: &str) -> String {
    // `path` starts with '/', giving "__staging/ack/<consumer>/<path>".
    format!("__staging/ack/{consumer}{path}")
}

/// Where frame `path` lives on the PFS after a spill.
pub fn spill_path(path: &str) -> String {
    format!("/spill{path}")
}

impl StagingManager {
    /// Create a manager for `node`. `pfs` enables spilling; without it
    /// the evictor can only retire fully-acked frames.
    pub fn new(
        ctx: &Ctx,
        node: NodeId,
        fs: LocalFs,
        kvs: impl Into<KvsHandle>,
        pfs: Option<PfsClient>,
        spec: StagingSpec,
    ) -> Rc<StagingManager> {
        assert!(
            spec.low_watermark <= spec.high_watermark,
            "low watermark above high"
        );
        Rc::new(StagingManager {
            ctx: ctx.clone(),
            node,
            fs,
            kvs: kvs.into(),
            pfs,
            spec,
            inner: RefCell::new(Inner {
                frames: FxHashMap::default(),
                order: BTreeMap::new(),
                next_seq: 0,
                consumers: Vec::new(),
                pending_demand: 0,
                stats: StagingStats::default(),
                retire_log: Vec::new(),
            }),
            pressure: Notify::new(),
            release: Notify::new(),
        })
    }

    /// The node this manager serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The spec the manager was built with.
    pub fn spec(&self) -> StagingSpec {
        self.spec
    }

    /// The PFS client used for spills/fallback fetches, if any.
    pub fn pfs_client(&self) -> Option<&PfsClient> {
        self.pfs.as_ref()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StagingStats {
        self.inner.borrow().stats
    }

    /// The audit log of every retirement decision.
    pub fn retire_log(&self) -> Vec<RetireRecord> {
        self.inner.borrow().retire_log.clone()
    }

    /// Whether a finite budget is being enforced.
    pub fn is_bounded(&self) -> bool {
        self.spec.budget_bytes != u64::MAX && self.spec.retention != RetentionPolicy::KeepAll
    }

    fn high_bytes(&self) -> u64 {
        (self.spec.budget_bytes as f64 * self.spec.high_watermark) as u64
    }

    fn low_bytes(&self) -> u64 {
        (self.spec.budget_bytes as f64 * self.spec.low_watermark) as u64
    }

    /// Declare that `consumer` will consume every frame under `prefix`.
    /// The evictor refuses to retire such frames until the consumer's
    /// ack key appears.
    pub fn register_consumer(&self, prefix: &str, consumer: &str) {
        self.inner
            .borrow_mut()
            .consumers
            .push((prefix.to_string(), consumer.to_string()));
    }

    /// Consumer ids registered for `path`.
    pub fn consumers_for(&self, path: &str) -> Vec<String> {
        self.inner
            .borrow()
            .consumers
            .iter()
            .filter(|(p, _)| path.starts_with(p.as_str()))
            .map(|(_, c)| c.clone())
            .collect()
    }

    /// True when admitting `incoming` bytes would cross the high
    /// watermark (cheap, non-blocking — callers use it to decide
    /// whether to open a backpressure instrumentation region).
    pub fn would_block(&self, incoming: u64) -> bool {
        self.is_bounded() && self.fs.statvfs().used_bytes + incoming > self.high_bytes()
    }

    /// Has any tracked frame still on local NVMe (i.e. could an evictor
    /// pass possibly free space)? Spilled frames live on the PFS and
    /// lost frames hold no bytes anywhere — neither is local.
    fn has_local_frames(&self) -> bool {
        self.inner
            .borrow()
            .frames
            .values()
            .any(|f| matches!(f.state, FrameState::Written | FrameState::Published))
    }

    /// Producer-side admission control: block while staging `incoming`
    /// more bytes would exceed the high watermark, waking the evictor
    /// and waiting for it to free space. Guarantees progress: when no
    /// tracked frame remains on NVMe there is nothing the evictor could
    /// free, so the write is admitted (it may still hit `NoSpace` at
    /// the filesystem, exactly as a real over-committed node would).
    pub async fn admit(&self, incoming: u64) {
        if !self.is_bounded() {
            return;
        }
        let mut stalled = false;
        let start = self.ctx.now();
        loop {
            let used = self.fs.statvfs().used_bytes;
            if used + incoming <= self.high_bytes() || !self.has_local_frames() {
                break;
            }
            if !stalled {
                stalled = true;
                let mut inner = self.inner.borrow_mut();
                inner.stats.backpressure_stalls += 1;
                // Publish the demand so the evictor can see pressure
                // even when current usage sits below the low watermark
                // (small budgets: one frame can span the whole
                // low..high hysteresis band).
                inner.pending_demand += incoming;
            }
            self.pressure.notify_all();
            // Wake on release, or re-check after one evictor period in
            // case the pass could not reach the watermark.
            race(
                self.release.wait(),
                self.ctx.sleep(self.spec.evict_interval),
            )
            .await;
        }
        if stalled {
            let waited = self.ctx.now() - start;
            let mut inner = self.inner.borrow_mut();
            inner.stats.backpressure_wait += waited;
            inner.pending_demand -= incoming;
        }
    }

    fn track(&self, path: &str, size: u64, kind: FrameKind, state: FrameState) {
        let path = intern(path);
        let mut inner = self.inner.borrow_mut();
        if inner.frames.contains_key(&path) {
            return; // idempotent (refetch of an evicted cache copy)
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.order.insert(seq, path);
        inner.frames.insert(
            path,
            Staged {
                path,
                size,
                kind,
                state,
                seq,
            },
        );
        inner.stats.frames_tracked += 1;
        inner.stats.staged_bytes += size;
        inner.stats.peak_staged_bytes = inner.stats.peak_staged_bytes.max(inner.stats.staged_bytes);
    }

    /// A producer finished writing `path` (post-rename, pre-commit).
    pub fn frame_written(&self, path: &str, size: u64) {
        self.track(path, size, FrameKind::Produced, FrameState::Written);
    }

    /// The frame's KVS metadata was committed — it is now visible to
    /// consumers and enters the retention lifecycle.
    pub fn frame_published(&self, path: &str) {
        let mut inner = self.inner.borrow_mut();
        if let Some(f) = inner.frames.get_mut(&intern(path)) {
            if f.state == FrameState::Written {
                f.state = FrameState::Published;
            }
        }
    }

    /// A consumer-side cache copy of a remote frame landed on this
    /// node's NVMe. Tracked as [`FrameKind::Cache`]: evictable without
    /// acks once the budget tightens.
    pub fn cache_inserted(&self, path: &str, size: u64) {
        self.track(path, size, FrameKind::Cache, FrameState::Published);
    }

    /// Commit the consumption acknowledgement for (`path`, `consumer`).
    pub async fn publish_ack(&self, path: &str, consumer: &str) {
        self.kvs
            .commit(&ack_key(path, consumer), Bytes::from_static(b"1"))
            .await;
        self.inner.borrow_mut().stats.acks_published += 1;
    }

    /// Note a consumer fetch that fell back to the PFS copy.
    pub fn note_pfs_fallback(&self) {
        self.inner.borrow_mut().stats.pfs_fallbacks += 1;
    }

    /// Fallible [`StagingManager::publish_ack`]: under a fault plan the
    /// broker may be unreachable; the caller decides whether a lost ack
    /// is fatal (it is not — an unacked frame is merely retained longer).
    pub async fn try_publish_ack(
        &self,
        path: &str,
        consumer: &str,
    ) -> Result<(), transport::TransportError> {
        self.kvs
            .try_commit(&ack_key(path, consumer), Bytes::from_static(b"1"))
            .await?;
        self.inner.borrow_mut().stats.acks_published += 1;
        Ok(())
    }

    /// Lifecycle state of a tracked frame, if tracked.
    pub fn frame_state(&self, path: &str) -> Option<FrameState> {
        self.inner
            .borrow()
            .frames
            .get(&intern(path))
            .map(|f| f.state)
    }

    /// The node hosting this manager crashed: frames whose only copy
    /// was the local NVMe managed directory are lost (the crash took
    /// the staged data with it); consumer-side cache copies are dropped
    /// (refetchable). Spilled frames keep their PFS copy. Synchronous —
    /// safe to call from a fault-board crash hook; the doomed local
    /// files are unlinked by a spawned cleanup task.
    pub fn on_node_crash(self: &Rc<Self>) {
        let mut doomed = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let mut cache_gone = Vec::new();
            for f in inner.frames.values_mut() {
                if !matches!(f.state, FrameState::Written | FrameState::Published) {
                    continue;
                }
                doomed.push(f.path);
                match f.kind {
                    FrameKind::Produced => {
                        f.state = FrameState::Lost;
                        inner.stats.staged_bytes -= f.size;
                        inner.stats.frames_lost += 1;
                        inner.stats.lost_bytes += f.size;
                    }
                    FrameKind::Cache => cache_gone.push((f.path, f.seq, f.size)),
                }
            }
            for (path, seq, size) in cache_gone {
                inner.stats.staged_bytes -= size;
                inner.stats.cache_evictions += 1;
                inner.order.remove(&seq);
                inner.frames.remove(&path);
            }
        }
        if !doomed.is_empty() {
            let mgr = self.clone();
            self.ctx.spawn(async move {
                for p in doomed {
                    let _ = mgr.fs.unlink(&p.resolve()).await;
                }
            });
        }
    }

    /// The node restarted: re-publish metadata so consumers make
    /// progress — spilled frames are re-pointed at their PFS copy and
    /// lost frames are tombstoned ([`FrameLocation::Lost`]) so waiting
    /// consumers surface a typed error instead of blocking forever.
    pub async fn on_node_restart(&self) {
        let to_publish: Vec<(Symbol, u64, FrameState)> = {
            let inner = self.inner.borrow();
            inner
                .frames
                .values()
                .filter(|f| {
                    f.kind == FrameKind::Produced
                        && matches!(f.state, FrameState::Spilled | FrameState::Lost)
                })
                .map(|f| (f.path, f.size, f.state))
                .collect()
        };
        for (path, size, state) in to_publish {
            let location = match state {
                FrameState::Spilled => FrameLocation::Pfs,
                _ => FrameLocation::Lost,
            };
            let meta = FrameMeta {
                owner: self.node,
                size,
                location,
            };
            if self
                .kvs
                .try_commit(&path.resolve(), meta.encode())
                .await
                .is_ok()
            {
                self.inner.borrow_mut().stats.republished_frames += 1;
            }
        }
    }

    /// A spilled frame's PFS copy is gone (dropped by a crash or an
    /// external unlink). The frame becomes [`FrameState::Lost`] and its
    /// metadata is tombstoned so consumer fetches fail typed rather
    /// than reading a missing file.
    pub async fn mark_spill_lost(&self, path: &str) {
        let size = {
            let mut inner = self.inner.borrow_mut();
            let Some(f) = inner.frames.get_mut(&intern(path)) else {
                return;
            };
            if f.state != FrameState::Spilled {
                return;
            }
            f.state = FrameState::Lost;
            let size = f.size;
            inner.stats.frames_lost += 1;
            inner.stats.lost_bytes += size;
            size
        };
        let meta = FrameMeta {
            owner: self.node,
            size,
            location: FrameLocation::Lost,
        };
        let _ = self.kvs.try_commit(path, meta.encode()).await;
    }

    /// Spawn the background evictor: a per-node process in simulated
    /// time that runs a pass every `evict_interval`, or sooner when a
    /// producer signals watermark pressure. Runs for the lifetime of
    /// the simulation (drive it with `run_until`, as the runner does).
    pub fn spawn_evictor(self: &Rc<Self>) {
        if self.spec.retention == RetentionPolicy::KeepAll {
            return;
        }
        let mgr = self.clone();
        let ctx = self.ctx.clone();
        self.ctx.spawn(async move {
            loop {
                race(ctx.sleep(mgr.spec.evict_interval), mgr.pressure.wait()).await;
                mgr.evict_pass().await;
            }
        });
    }

    /// How many acks are present for `path` right now.
    async fn count_acks(&self, path: &str) -> (usize, usize) {
        let consumers = self.consumers_for(path);
        let mut seen = 0;
        for c in &consumers {
            if self.kvs.lookup(&ack_key(path, c)).await.is_some() {
                seen += 1;
            }
        }
        (seen, consumers.len())
    }

    /// Remove every trace of a fully-consumed frame: the data copy
    /// (NVMe or PFS), the KVS metadata, and the ack keys.
    async fn retire(&self, frame: &Staged, acks_seen: usize, required: usize) {
        let path = frame.path.resolve();
        match frame.state {
            FrameState::Spilled => {
                if let Some(pfs) = &self.pfs {
                    let _ = pfs.unlink(&spill_path(&path)).await;
                }
            }
            FrameState::Lost => {} // no copy anywhere
            _ => {
                let _ = self.fs.unlink(&path).await;
            }
        }
        if frame.kind == FrameKind::Produced {
            self.kvs.unlink(&path).await;
            for c in self.consumers_for(&path) {
                self.kvs.unlink(&ack_key(&path, &c)).await;
            }
        }
        let mut inner = self.inner.borrow_mut();
        let was_spilled = frame.state == FrameState::Spilled;
        if matches!(frame.state, FrameState::Written | FrameState::Published) {
            inner.stats.staged_bytes -= frame.size;
        }
        inner.stats.retired_frames += 1;
        inner.stats.retired_bytes += frame.size;
        inner.retire_log.push(RetireRecord {
            path: path.to_string(),
            required_acks: required,
            acks_seen,
            was_spilled,
        });
        inner.order.remove(&frame.seq);
        inner.frames.remove(&frame.path);
    }

    /// Move a still-needed frame to the PFS and republish its metadata
    /// so consumer refetches find it there.
    async fn spill(&self, frame: &Staged) -> bool {
        let Some(pfs) = &self.pfs else { return false };
        let path = frame.path.resolve();
        let Ok(fd) = self.fs.open(&path).await else {
            return false;
        };
        let segs = self.fs.read_segments(fd).await.unwrap_or_default();
        let _ = self.fs.close(fd).await;
        let spath = spill_path(&path);
        let Ok(sfd) = pfs.create(&spath).await else {
            return false;
        };
        if pfs.write_segments(sfd, segs).await.is_err() {
            let _ = pfs.close(sfd).await;
            return false;
        }
        let _ = pfs.close(sfd).await;
        // Republish before unlinking the local copy: a consumer that
        // reads the updated metadata goes straight to the PFS; one that
        // raced ahead with the old metadata gets a not-found from the
        // owner's data service and retries through the KVS.
        let meta = FrameMeta {
            owner: self.node,
            size: frame.size,
            location: FrameLocation::Pfs,
        };
        self.kvs.commit(&path, meta.encode()).await;
        let _ = self.fs.unlink(&path).await;
        let mut inner = self.inner.borrow_mut();
        inner.stats.staged_bytes -= frame.size;
        inner.stats.spilled_frames += 1;
        inner.stats.spilled_bytes += frame.size;
        if let Some(f) = inner.frames.get_mut(&frame.path) {
            f.state = FrameState::Spilled;
        }
        true
    }

    /// Drop a consumer-side cache copy (rebuildable via refetch).
    async fn evict_cache(&self, frame: &Staged) {
        let _ = self.fs.unlink(&frame.path.resolve()).await;
        let mut inner = self.inner.borrow_mut();
        inner.stats.staged_bytes -= frame.size;
        inner.stats.cache_evictions += 1;
        inner.order.remove(&frame.seq);
        inner.frames.remove(&frame.path);
    }

    /// Oldest-first snapshot of frames currently on local NVMe.
    /// Excludes spilled frames (bytes are on the PFS) and lost frames
    /// (bytes are nowhere — retiring or spilling one would corrupt the
    /// byte accounting and re-publish garbage).
    fn local_frames_oldest_first(&self) -> Vec<Staged> {
        let inner = self.inner.borrow();
        inner
            .order
            .values()
            .filter_map(|p| inner.frames.get(p))
            .filter(|f| matches!(f.state, FrameState::Written | FrameState::Published))
            .cloned()
            .collect()
    }

    /// One evictor pass: retire fully-acked frames first, then spill
    /// (or drop cache copies of) still-needed ones until usage reaches
    /// the low watermark.
    pub async fn evict_pass(&self) {
        let eager = self.spec.retention == RetentionPolicy::EagerRetire;
        let bounded = self.is_bounded();
        // Pressure = usage above the low watermark, or blocked
        // producers whose pending writes would cross the high one (a
        // tight budget can block a producer while usage still sits
        // below low — the demand term closes that livelock).
        let demand = self.inner.borrow().pending_demand;
        let under_pressure = |used: u64| {
            bounded && (used > self.low_bytes() || used.saturating_add(demand) > self.high_bytes())
        };

        let used0 = self.fs.statvfs().used_bytes;
        if !eager && !under_pressure(used0) {
            return;
        }

        // Phase 1 — retirement: published, fully-acked frames go first.
        for frame in self.local_frames_oldest_first() {
            let used = self.fs.statvfs().used_bytes;
            if !eager && !under_pressure(used) {
                break;
            }
            if frame.state != FrameState::Published {
                continue;
            }
            match frame.kind {
                FrameKind::Produced => {
                    let (seen, required) = self.count_acks(&frame.path.resolve()).await;
                    if required > 0 && seen == required {
                        self.retire(&frame, seen, required).await;
                    }
                }
                FrameKind::Cache => {
                    // Cache copies already served their consumer at
                    // least once only if acked by this node's own
                    // consumers — without that knowledge, treat them
                    // as pressure-only evictable (phase 2).
                }
            }
        }

        // Phase 2 — pressure relief: drop cache copies, then spill
        // still-needed produced frames to the PFS.
        if bounded {
            for frame in self.local_frames_oldest_first() {
                if !under_pressure(self.fs.statvfs().used_bytes) {
                    break;
                }
                match frame.kind {
                    FrameKind::Cache => self.evict_cache(&frame).await,
                    FrameKind::Produced => {
                        if frame.state == FrameState::Published {
                            self.spill(&frame).await;
                        }
                    }
                }
            }
        }

        // Unblock producers once below the high watermark (hysteresis:
        // the pass above aims for low, producers re-check against high).
        if !bounded || self.fs.statvfs().used_bytes <= self.high_bytes() {
            self.release.notify_all();
        }
    }
}

#[cfg(test)]
mod tests;
