use super::*;
use cluster::{Cluster, ClusterSpec};
use kvs::{KvsClient, KvsServer, KvsSpec};
use localfs::LocalFsSpec;
use pfs::{ParallelFs, PfsSpec};
use simcore::{Sim, SimTime};
use transport::{Transport, TransportSpec};

const KIB: u64 = 1024;

struct Rig {
    mgr: Rc<StagingManager>,
    fs: LocalFs,
    kvs: KvsClient,
    pfs: Option<ParallelFs>,
    #[allow(dead_code)]
    kvs_server: Rc<KvsServer>,
}

/// 3 nodes: node 0 runs the manager + KVS broker; nodes 1,2 host the
/// PFS (MDS + one OST) when `with_pfs`.
fn setup(sim: &Sim, spec: StagingSpec, with_pfs: bool) -> Rig {
    let ctx = sim.ctx();
    let cl = Cluster::build(&ctx, &ClusterSpec::corona(3));
    let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
    let kvs_server = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
    let fs = LocalFs::new(
        &ctx,
        cl.node(NodeId(0)).nvme.clone(),
        LocalFsSpec::default(),
    );
    let kvs = KvsClient::new(&ctx, &tp, NodeId(0), NodeId(0), KvsSpec::default());
    let pfs = with_pfs
        .then(|| ParallelFs::start(&ctx, &tp, NodeId(1), vec![NodeId(2)], PfsSpec::default()));
    let pfs_client = pfs.as_ref().map(|p| p.client(&ctx, NodeId(0)));
    let mgr = StagingManager::new(&ctx, NodeId(0), fs.clone(), kvs.clone(), pfs_client, spec);
    Rig {
        mgr,
        fs,
        kvs,
        pfs,
        kvs_server,
    }
}

/// Stage one published frame of `size` bytes at `path`.
async fn produce(rig: &Rig, path: &str, size: u64) {
    let dir = path.rsplit_once('/').map(|(d, _)| d).unwrap_or("/");
    rig.fs.mkdir_p(dir).await.unwrap();
    let fd = rig.fs.create(path).await.unwrap();
    rig.fs
        .write_bytes(fd, Bytes::from(vec![7u8; size as usize]))
        .await
        .unwrap();
    rig.fs.close(fd).await.unwrap();
    let meta = FrameMeta {
        owner: NodeId(0),
        size,
        location: FrameLocation::Nvme,
    };
    rig.mgr.frame_written(path, size);
    rig.kvs.commit(path, meta.encode()).await;
    rig.mgr.frame_published(path);
}

fn run_for(sim: &Sim, secs: u64) {
    sim.run_until(SimTime::from_nanos(secs * 1_000_000_000));
}

#[test]
fn meta_round_trips_with_location() {
    for loc in [FrameLocation::Nvme, FrameLocation::Pfs] {
        let m = FrameMeta {
            owner: NodeId(17),
            size: 987_654,
            location: loc,
        };
        assert_eq!(FrameMeta::decode(m.encode()), m);
    }
}

#[test]
fn unbounded_keepall_never_touches_frames() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: 64 * KIB,
        retention: RetentionPolicy::KeepAll,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, false);
    let mgr = rig.mgr.clone();
    let fs = rig.fs.clone();
    mgr.spawn_evictor(); // no-op under KeepAll
    {
        let rig2 = Rig {
            mgr: rig.mgr.clone(),
            fs: rig.fs.clone(),
            kvs: rig.kvs.clone(),
            pfs: None,
            kvs_server: rig.kvs_server.clone(),
        };
        sim.spawn(async move {
            for i in 0..8 {
                produce(&rig2, &format!("/dyad/f{i}"), 32 * KIB).await;
            }
        });
    }
    run_for(&sim, 5);
    assert_eq!(mgr.stats().retired_frames, 0);
    assert_eq!(mgr.stats().spilled_frames, 0);
    for i in 0..8 {
        assert!(fs.exists(&format!("/dyad/f{i}")));
    }
}

#[test]
fn evictor_retires_fully_acked_frames_under_pressure() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: 256 * KIB,
        low_watermark: 0.5,
        high_watermark: 0.9,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, false);
    let mgr = rig.mgr.clone();
    let fs = rig.fs.clone();
    mgr.register_consumer("/dyad/frames", "c0");
    mgr.spawn_evictor();
    {
        let mgr = mgr.clone();
        sim.spawn(async move {
            // 6 × 64 KiB = 384 KiB > budget; ack the first four.
            for i in 0..6 {
                produce(&rig, &format!("/dyad/frames/f{i}"), 64 * KIB).await;
            }
            for i in 0..4 {
                mgr.publish_ack(&format!("/dyad/frames/f{i}"), "c0").await;
            }
        });
    }
    run_for(&sim, 5);
    let st = mgr.stats();
    assert!(st.retired_frames >= 2, "retired {}", st.retired_frames);
    // Unacked frames survive: no PFS configured, so they cannot spill.
    assert!(fs.exists("/dyad/frames/f4"));
    assert!(fs.exists("/dyad/frames/f5"));
    // Every retirement was fully acked.
    for r in mgr.retire_log() {
        assert_eq!(
            r.acks_seen, r.required_acks,
            "premature retire of {}",
            r.path
        );
        assert!(r.required_acks > 0);
    }
}

#[test]
fn evictor_never_retires_unacked_frames() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: 128 * KIB,
        low_watermark: 0.3,
        high_watermark: 0.6,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, false);
    let mgr = rig.mgr.clone();
    let fs = rig.fs.clone();
    mgr.register_consumer("/dyad/frames", "c0");
    mgr.register_consumer("/dyad/frames", "c1");
    mgr.spawn_evictor();
    {
        let mgr = mgr.clone();
        sim.spawn(async move {
            for i in 0..4 {
                produce(&rig, &format!("/dyad/frames/f{i}"), 64 * KIB).await;
            }
            // Only one of two registered consumers acks.
            for i in 0..4 {
                mgr.publish_ack(&format!("/dyad/frames/f{i}"), "c0").await;
            }
        });
    }
    run_for(&sim, 5);
    assert_eq!(mgr.stats().retired_frames, 0);
    for i in 0..4 {
        assert!(
            fs.exists(&format!("/dyad/frames/f{i}")),
            "f{i} retired early"
        );
    }
}

#[test]
fn evictor_spills_unacked_frames_to_pfs_and_republishes() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: 128 * KIB,
        low_watermark: 0.4,
        high_watermark: 0.8,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, true);
    let mgr = rig.mgr.clone();
    let fs = rig.fs.clone();
    let kvs = rig.kvs.clone();
    let pfs_reader = rig.pfs.as_ref().unwrap().client(&sim.ctx(), NodeId(0));
    mgr.register_consumer("/dyad/frames", "c0");
    mgr.spawn_evictor();
    {
        sim.spawn(async move {
            for i in 0..4 {
                produce(&rig, &format!("/dyad/frames/f{i}"), 64 * KIB).await;
            }
        });
    }
    run_for(&sim, 5);
    let st = mgr.stats();
    assert!(st.spilled_frames >= 2, "spilled {}", st.spilled_frames);
    assert_eq!(st.retired_frames, 0);
    // The oldest frame moved: local copy gone, PFS copy present,
    // metadata points at the PFS.
    assert!(!fs.exists("/dyad/frames/f0"));
    let h = sim.spawn(async move {
        let v = kvs
            .lookup("/dyad/frames/f0")
            .await
            .expect("meta still published");
        let meta = FrameMeta::decode(v.value);
        let fd = pfs_reader
            .open(&spill_path("/dyad/frames/f0"))
            .await
            .unwrap();
        let data = pfs_reader.read_to_end(fd).await.unwrap();
        pfs_reader.close(fd).await.unwrap();
        (meta, data)
    });
    run_for(&sim, 10);
    let (meta, data) = h.try_take().unwrap();
    assert_eq!(meta.location, FrameLocation::Pfs);
    assert_eq!(meta.size, 64 * KIB);
    assert_eq!(data.len() as u64, 64 * KIB);
    assert!(data.iter().all(|&b| b == 7));
}

#[test]
fn admit_blocks_above_high_watermark_until_release() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: 128 * KIB,
        low_watermark: 0.4,
        high_watermark: 0.7,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, true);
    let mgr = rig.mgr.clone();
    let ctx = sim.ctx();
    mgr.register_consumer("/dyad/frames", "c0");
    mgr.spawn_evictor();
    let h = {
        let mgr = mgr.clone();
        sim.spawn(async move {
            // Fill past high (89.6 KiB): two 64 KiB frames.
            produce(&rig, "/dyad/frames/f0", 64 * KIB).await;
            produce(&rig, "/dyad/frames/f1", 64 * KIB).await;
            let before = ctx.now();
            mgr.admit(64 * KIB).await; // must stall until a spill frees room
            (ctx.now() - before).as_secs_f64()
        })
    };
    run_for(&sim, 30);
    let waited = h.try_take().expect("admit never returned");
    assert!(waited > 0.0, "admit did not block");
    let st = mgr.stats();
    assert_eq!(st.backpressure_stalls, 1);
    assert!(st.backpressure_wait.as_secs_f64() >= waited - 1e-9);
    assert!(st.spilled_frames >= 1);
}

#[test]
fn admit_is_free_when_unbounded() {
    let sim = Sim::new(0);
    let rig = setup(&sim, StagingSpec::default(), false);
    let mgr = rig.mgr.clone();
    let ctx = sim.ctx();
    let h = sim.spawn(async move {
        let before = ctx.now();
        mgr.admit(u64::MAX / 2).await;
        (ctx.now() - before).as_secs_f64()
    });
    run_for(&sim, 1);
    assert_eq!(h.try_take().unwrap(), 0.0);
    assert_eq!(rig.mgr.stats().backpressure_stalls, 0);
}

#[test]
fn admit_makes_progress_when_nothing_is_evictable() {
    // A frame bigger than the whole budget, nothing staged: admission
    // must not deadlock.
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: 64 * KIB,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, false);
    let mgr = rig.mgr.clone();
    mgr.spawn_evictor();
    let h = sim.spawn(async move {
        mgr.admit(256 * KIB).await;
        true
    });
    run_for(&sim, 5);
    assert_eq!(h.try_take(), Some(true));
    let _ = rig;
}

#[test]
fn cache_copies_evict_before_produced_frames_spill() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: 192 * KIB,
        low_watermark: 0.4,
        high_watermark: 0.8,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, true);
    let mgr = rig.mgr.clone();
    let fs = rig.fs.clone();
    mgr.register_consumer("/dyad/frames", "c0");
    mgr.spawn_evictor();
    {
        let mgr = mgr.clone();
        let fs = fs.clone();
        sim.spawn(async move {
            // An old consumer-side cache copy, then produced frames.
            fs.mkdir_p("/dyad/cache").await.unwrap();
            let fd = fs.create("/dyad/cache/r0").await.unwrap();
            fs.write_bytes(fd, Bytes::from(vec![1u8; 64 * KIB as usize]))
                .await
                .unwrap();
            fs.close(fd).await.unwrap();
            mgr.cache_inserted("/dyad/cache/r0", 64 * KIB);
            produce(&rig, "/dyad/frames/f0", 64 * KIB).await;
            produce(&rig, "/dyad/frames/f1", 64 * KIB).await;
        });
    }
    run_for(&sim, 5);
    let st = mgr.stats();
    assert!(st.cache_evictions >= 1, "cache copy not evicted");
    assert!(!fs.exists("/dyad/cache/r0"));
    // Dropping the cache copy brought usage to 128 KiB > low (76.8 KiB),
    // so the oldest produced frame spilled too — but never both produced
    // frames while the cache copy survived.
    assert!(fs.exists("/dyad/frames/f1"));
}

#[test]
fn eager_retire_frees_acked_frames_without_pressure() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: u64::MAX,
        retention: RetentionPolicy::EagerRetire,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, false);
    let mgr = rig.mgr.clone();
    let fs = rig.fs.clone();
    mgr.register_consumer("/dyad/frames", "c0");
    mgr.spawn_evictor();
    {
        let mgr = mgr.clone();
        sim.spawn(async move {
            produce(&rig, "/dyad/frames/f0", 32 * KIB).await;
            mgr.publish_ack("/dyad/frames/f0", "c0").await;
        });
    }
    run_for(&sim, 3);
    assert_eq!(mgr.stats().retired_frames, 1);
    assert!(!fs.exists("/dyad/frames/f0"));
}

#[test]
fn retire_removes_kvs_metadata_and_acks() {
    let sim = Sim::new(0);
    let spec = StagingSpec {
        budget_bytes: u64::MAX,
        retention: RetentionPolicy::EagerRetire,
        ..StagingSpec::default()
    };
    let rig = setup(&sim, spec, false);
    let mgr = rig.mgr.clone();
    let kvs = rig.kvs.clone();
    mgr.register_consumer("/dyad/frames", "c0");
    mgr.spawn_evictor();
    {
        let mgr = mgr.clone();
        sim.spawn(async move {
            produce(&rig, "/dyad/frames/f0", 16 * KIB).await;
            mgr.publish_ack("/dyad/frames/f0", "c0").await;
        });
    }
    run_for(&sim, 3);
    let h = sim.spawn(async move {
        let meta = kvs.lookup("/dyad/frames/f0").await;
        let ack = kvs.lookup(&ack_key("/dyad/frames/f0", "c0")).await;
        (meta.is_none(), ack.is_none())
    });
    run_for(&sim, 5);
    assert_eq!(h.try_take().unwrap(), (true, true));
}

#[test]
fn determinism_same_seed_same_eviction_history() {
    fn one_run(seed: u64) -> (u64, u64, Vec<String>) {
        let sim = Sim::new(seed);
        let spec = StagingSpec {
            budget_bytes: 256 * KIB,
            low_watermark: 0.4,
            high_watermark: 0.8,
            ..StagingSpec::default()
        };
        let rig = setup(&sim, spec, true);
        let mgr = rig.mgr.clone();
        mgr.register_consumer("/dyad/frames", "c0");
        mgr.spawn_evictor();
        {
            let mgr = mgr.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                for i in 0..10 {
                    produce(&rig, &format!("/dyad/frames/f{i}"), 48 * KIB).await;
                    if i % 2 == 0 {
                        mgr.publish_ack(&format!("/dyad/frames/f{i}"), "c0").await;
                    }
                    ctx.sleep(SimDuration::from_millis(150)).await;
                }
            });
        }
        run_for(&sim, 10);
        let st = mgr.stats();
        (
            st.retired_frames,
            st.spilled_frames,
            mgr.retire_log().into_iter().map(|r| r.path).collect(),
        )
    }
    assert_eq!(one_run(7), one_run(7));
    let (r42, s42, _) = one_run(42);
    assert!(r42 > 0 || s42 > 0, "scenario exercised no eviction");
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn eviction_never_precedes_full_acks(
            seed in 0u64..200,
            acked_mask in 0u16..1024,
            budget_frames in 2u64..6,
        ) {
            let sim = Sim::new(seed);
            let frame = 32 * KIB;
            let spec = StagingSpec {
                budget_bytes: budget_frames * frame,
                low_watermark: 0.4,
                high_watermark: 0.8,
                ..StagingSpec::default()
            };
            let rig = setup(&sim, spec, true);
            let mgr = rig.mgr.clone();
            mgr.register_consumer("/dyad/frames", "c0");
            mgr.register_consumer("/dyad/frames", "c1");
            mgr.spawn_evictor();
            {
                let mgr = mgr.clone();
                let ctx = sim.ctx();
                sim.spawn(async move {
                    for i in 0..10u32 {
                        produce(&rig, &format!("/dyad/frames/f{i}"), frame).await;
                        if acked_mask & (1 << i) != 0 {
                            mgr.publish_ack(&format!("/dyad/frames/f{i}"), "c0").await;
                            mgr.publish_ack(&format!("/dyad/frames/f{i}"), "c1").await;
                        }
                        ctx.sleep(SimDuration::from_millis(100)).await;
                    }
                });
            }
            run_for(&sim, 10);
            // The invariant: every retirement saw every required ack.
            for r in mgr.retire_log() {
                prop_assert!(r.acks_seen == r.required_acks,
                    "premature retire of {}", &r.path);
                prop_assert!(r.required_acks > 0);
            }
            // And no retired frame was one we never acked.
            for r in mgr.retire_log() {
                let idx: u32 = r.path.rsplit('f').next().unwrap().parse().unwrap();
                prop_assert!(acked_mask & (1 << idx) != 0,
                    "retired unacked frame {}", &r.path);
            }
        }
    }
}
