//! The paper's molecular models (Tables I and II).
//!
//! Frame sizes follow from the frame wire format (48-byte header +
//! 28 bytes per atom: a `u32` atom id plus three `f64` coordinates) and
//! match Table I's estimates to within the header: JAC = 644.2 KiB,
//! ApoA1 = 2.46 MiB, F1 ATPase = 8.75 MiB, STMV = 28.48 MiB.
//!
//! Steps/second values are Table I's (derived by the authors from the
//! NAMD benchmark suite); strides are Table II's, chosen so every model
//! emits a frame every ~0.82 s.

/// Bytes per atom on the wire: `u32` id + 3 × `f64` position.
pub const ATOM_BYTES: u64 = 28;
/// Frame header bytes (magic, version, model, step, atom count, box).
pub const HEADER_BYTES: u64 = 48;

/// The four molecular models of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// Joint Amber-CHARMM benchmark (DHFR), 23,558 atoms.
    Jac,
    /// Apolipoprotein A1, 92,224 atoms.
    ApoA1,
    /// F1 ATPase, 327,506 atoms.
    F1Atpase,
    /// Satellite tobacco mosaic virus, 1,066,628 atoms.
    Stmv,
}

impl Model {
    /// All four models, smallest first (Table I order).
    pub const ALL: [Model; 4] = [Model::Jac, Model::ApoA1, Model::F1Atpase, Model::Stmv];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Model::Jac => "JAC",
            Model::ApoA1 => "ApoA1",
            Model::F1Atpase => "F1 ATPase",
            Model::Stmv => "STMV",
        }
    }

    /// Stable numeric id used in the frame header.
    pub fn id(self) -> u32 {
        match self {
            Model::Jac => 1,
            Model::ApoA1 => 2,
            Model::F1Atpase => 3,
            Model::Stmv => 4,
        }
    }

    /// Model from its numeric id.
    pub fn from_id(id: u32) -> Option<Model> {
        Model::ALL.into_iter().find(|m| m.id() == id)
    }

    /// Number of atoms (Table I).
    pub fn atoms(self) -> u64 {
        match self {
            Model::Jac => 23_558,
            Model::ApoA1 => 92_224,
            Model::F1Atpase => 327_506,
            Model::Stmv => 1_066_628,
        }
    }

    /// Bytes of one serialized frame.
    pub fn frame_bytes(self) -> u64 {
        HEADER_BYTES + self.atoms() * ATOM_BYTES
    }

    /// MD throughput in steps per second (Table I).
    pub fn steps_per_second(self) -> f64 {
        match self {
            Model::Jac => 1072.92,
            Model::ApoA1 => 358.22,
            Model::F1Atpase => 115.74,
            Model::Stmv => 34.14,
        }
    }

    /// Milliseconds per MD step (Table II).
    pub fn ms_per_step(self) -> f64 {
        1000.0 / self.steps_per_second()
    }

    /// Stride (steps between frames) equalizing output frequency across
    /// models (Table II).
    pub fn stride(self) -> u64 {
        match self {
            Model::Jac => 880,
            Model::ApoA1 => 294,
            Model::F1Atpase => 92,
            Model::Stmv => 28,
        }
    }

    /// Seconds between frames at the Table II stride (~0.82 s for every
    /// model).
    pub fn frame_period_secs(self) -> f64 {
        self.stride() as f64 * self.ms_per_step() / 1000.0
    }

    /// Seconds between frames for an arbitrary stride.
    pub fn period_for_stride(self, stride: u64) -> f64 {
        stride as f64 * self.ms_per_step() / 1000.0
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_sizes_match_table_one() {
        // Table I: 644.21 KiB, 2.46 MiB, 8.75 MiB, 28.48 MiB.
        let kib = Model::Jac.frame_bytes() as f64 / 1024.0;
        assert!((kib - 644.21).abs() < 0.1, "JAC {kib} KiB");
        let mib = Model::ApoA1.frame_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mib - 2.46).abs() < 0.01, "ApoA1 {mib} MiB");
        let mib = Model::F1Atpase.frame_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mib - 8.75).abs() < 0.01, "F1 {mib} MiB");
        let mib = Model::Stmv.frame_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mib - 28.48).abs() < 0.01, "STMV {mib} MiB");
    }

    #[test]
    fn ms_per_step_matches_table_two() {
        assert!((Model::Jac.ms_per_step() - 0.93).abs() < 0.01);
        assert!((Model::ApoA1.ms_per_step() - 2.79).abs() < 0.01);
        assert!((Model::F1Atpase.ms_per_step() - 8.64).abs() < 0.01);
        assert!((Model::Stmv.ms_per_step() - 29.29).abs() < 0.01);
    }

    #[test]
    fn frame_periods_are_equalized_at_082s() {
        // Table II lists 0.82 s for every model. Recomputing from its own
        // steps/second and stride columns gives 0.79-0.82 s (F1 ATPase's
        // 92 × 8.64 ms = 0.795 s; the paper rounds). Accept that window.
        for m in Model::ALL {
            let p = m.frame_period_secs();
            assert!((0.79..=0.825).contains(&p), "{m}: {p}");
        }
    }

    #[test]
    fn stmv_to_jac_data_ratio_is_45x() {
        // The paper: "we move 45.3 times more data with STMV than JAC".
        let ratio = Model::Stmv.frame_bytes() as f64 / Model::Jac.frame_bytes() as f64;
        assert!((ratio - 45.3).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn ids_round_trip() {
        for m in Model::ALL {
            assert_eq!(Model::from_id(m.id()), Some(m));
        }
        assert_eq!(Model::from_id(99), None);
    }
}
