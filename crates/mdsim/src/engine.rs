//! A miniature molecular-dynamics engine.
//!
//! The paper's workflows capture frames from full MD codes (GROMACS,
//! NAMD, LAMMPS). For the reproduction we implement a compact but real
//! engine — a Lennard-Jones fluid in reduced units with cell-list
//! neighbour search, velocity-Verlet integration and a Berendsen
//! thermostat — so the examples and analytics operate on genuine
//! trajectories. The force loop is data-parallel with rayon, following
//! the HPC-parallel guidance for this workspace.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

use crate::frame::Frame;
use crate::models::Model;

/// Engine configuration, in reduced Lennard-Jones units.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of atoms.
    pub n_atoms: usize,
    /// Number density (atoms per unit volume).
    pub density: f64,
    /// Integration timestep.
    pub dt: f64,
    /// Interaction cutoff radius.
    pub cutoff: f64,
    /// Target reduced temperature.
    pub temperature: f64,
    /// Berendsen coupling constant (0 disables the thermostat).
    pub thermostat_tau: f64,
    /// RNG seed for initial velocities.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_atoms: 864,
            density: 0.8,
            dt: 0.002,
            cutoff: 2.5,
            temperature: 1.0,
            thermostat_tau: 0.1,
            seed: 42,
        }
    }
}

/// The MD engine state.
pub struct MdEngine {
    cfg: EngineConfig,
    box_len: f64,
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    forces: Vec<[f64; 3]>,
    step_count: u64,
    // Cell list scratch.
    cells_per_side: usize,
    cell_of: Vec<usize>,
    cells: Vec<Vec<u32>>,
}

impl MdEngine {
    /// Initialize atoms on a cubic lattice with Maxwell-Boltzmann
    /// velocities (zero net momentum).
    pub fn new(cfg: EngineConfig) -> Self {
        assert!(cfg.n_atoms > 0 && cfg.density > 0.0);
        let box_len = (cfg.n_atoms as f64 / cfg.density).cbrt();
        let per_side = (cfg.n_atoms as f64).cbrt().ceil() as usize;
        let spacing = box_len / per_side as f64;
        let mut pos = Vec::with_capacity(cfg.n_atoms);
        'fill: for x in 0..per_side {
            for y in 0..per_side {
                for z in 0..per_side {
                    if pos.len() == cfg.n_atoms {
                        break 'fill;
                    }
                    pos.push([
                        (x as f64 + 0.5) * spacing,
                        (y as f64 + 0.5) * spacing,
                        (z as f64 + 0.5) * spacing,
                    ]);
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = cfg.temperature.sqrt();
        let mut vel: Vec<[f64; 3]> = (0..cfg.n_atoms)
            .map(|_| {
                [
                    gaussian(&mut rng) * scale,
                    gaussian(&mut rng) * scale,
                    gaussian(&mut rng) * scale,
                ]
            })
            .collect();
        // Remove centre-of-mass drift.
        let mut com = [0.0f64; 3];
        for v in &vel {
            for k in 0..3 {
                com[k] += v[k];
            }
        }
        for c in &mut com {
            *c /= cfg.n_atoms as f64;
        }
        for v in &mut vel {
            for k in 0..3 {
                v[k] -= com[k];
            }
        }
        let cells_per_side = ((box_len / cfg.cutoff).floor() as usize).max(1);
        let mut engine = MdEngine {
            cfg,
            box_len,
            pos,
            vel,
            forces: vec![[0.0; 3]; cfg.n_atoms],
            step_count: 0,
            cells_per_side,
            cell_of: vec![0; cfg.n_atoms],
            cells: vec![Vec::new(); cells_per_side.pow(3)],
        };
        engine.rebuild_cells();
        engine.forces = engine.compute_forces();
        engine
    }

    /// Simulation box length.
    pub fn box_len(&self) -> f64 {
        self.box_len
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Atom positions.
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.pos
    }

    /// The forces of the current configuration (as used for the next
    /// half-kick). Exposed for cross-validation against alternative
    /// neighbour-search strategies.
    pub fn current_forces(&self) -> &[[f64; 3]] {
        &self.forces
    }

    fn cell_index(&self, p: &[f64; 3]) -> usize {
        let n = self.cells_per_side;
        let mut idx = 0usize;
        for coord in p {
            let mut c = ((coord / self.box_len) * n as f64).floor() as isize;
            c = c.rem_euclid(n as isize);
            idx = idx * n + c as usize;
        }
        idx
    }

    fn rebuild_cells(&mut self) {
        for c in &mut self.cells {
            c.clear();
        }
        let indices: Vec<usize> = self.pos.iter().map(|p| self.cell_index(p)).collect();
        for (i, ci) in indices.into_iter().enumerate() {
            self.cell_of[i] = ci;
            self.cells[ci].push(i as u32);
        }
    }

    /// Lennard-Jones forces via the cell list, computed in parallel.
    fn compute_forces(&self) -> Vec<[f64; 3]> {
        let n = self.cells_per_side as isize;
        let rc2 = self.cfg.cutoff * self.cfg.cutoff;
        let box_len = self.box_len;
        let pos = &self.pos;
        let cells = &self.cells;
        let cell_of = &self.cell_of;
        (0..self.pos.len())
            .into_par_iter()
            .map(|i| {
                let pi = pos[i];
                let ci = cell_of[i] as isize;
                let (cx, cy, cz) = (ci / (n * n), (ci / n) % n, ci % n);
                let mut f = [0.0f64; 3];
                // Unique neighbour cells: with fewer than 3 cells per
                // side the ±1 offsets alias, which would double-count
                // pairs and break energy conservation.
                let mut neigh: [usize; 27] = [usize::MAX; 27];
                let mut n_neigh = 0;
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        for dz in -1..=1 {
                            let nx = (cx + dx).rem_euclid(n);
                            let ny = (cy + dy).rem_euclid(n);
                            let nz = (cz + dz).rem_euclid(n);
                            let idx = (nx * n * n + ny * n + nz) as usize;
                            if !neigh[..n_neigh].contains(&idx) {
                                neigh[n_neigh] = idx;
                                n_neigh += 1;
                            }
                        }
                    }
                }
                for &idx in &neigh[..n_neigh] {
                    {
                        {
                            let cell = &cells[idx];
                            for &j in cell {
                                let j = j as usize;
                                if j == i {
                                    continue;
                                }
                                let pj = pos[j];
                                let mut r = [0.0f64; 3];
                                let mut r2 = 0.0;
                                for k in 0..3 {
                                    let mut d = pi[k] - pj[k];
                                    d -= box_len * (d / box_len).round();
                                    r[k] = d;
                                    r2 += d * d;
                                }
                                if r2 < rc2 && r2 > 1e-12 {
                                    let inv2 = 1.0 / r2;
                                    let inv6 = inv2 * inv2 * inv2;
                                    // F = 24ε(2(σ/r)^12 − (σ/r)^6)/r² · r
                                    let fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
                                    for k in 0..3 {
                                        f[k] += fmag * r[k];
                                    }
                                }
                            }
                        }
                    }
                }
                f
            })
            .collect()
    }

    /// Advance one velocity-Verlet step (with optional thermostat).
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        let half = 0.5 * dt;
        // First half-kick + drift.
        for i in 0..self.pos.len() {
            for k in 0..3 {
                self.vel[i][k] += half * self.forces[i][k];
                self.pos[i][k] += dt * self.vel[i][k];
                self.pos[i][k] = self.pos[i][k].rem_euclid(self.box_len);
            }
        }
        self.rebuild_cells();
        self.forces = self.compute_forces();
        // Second half-kick.
        for i in 0..self.pos.len() {
            for k in 0..3 {
                self.vel[i][k] += half * self.forces[i][k];
            }
        }
        // Berendsen thermostat.
        if self.cfg.thermostat_tau > 0.0 {
            let t_now = self.temperature();
            if t_now > 1e-12 {
                let lambda = (1.0
                    + dt / self.cfg.thermostat_tau * (self.cfg.temperature / t_now - 1.0))
                    .max(0.0)
                    .sqrt();
                for v in &mut self.vel {
                    for vk in v {
                        *vk *= lambda;
                    }
                }
            }
        }
        self.step_count += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Instantaneous reduced temperature (2·KE / 3N).
    pub fn temperature(&self) -> f64 {
        let ke: f64 = self
            .vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum();
        2.0 * ke / (3.0 * self.pos.len() as f64)
    }

    /// Total kinetic + potential energy (potential via the cell list,
    /// counted once per pair).
    pub fn total_energy(&self) -> f64 {
        let ke: f64 = self
            .vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum();
        let rc2 = self.cfg.cutoff * self.cfg.cutoff;
        let box_len = self.box_len;
        let pos = &self.pos;
        let pe: f64 = (0..pos.len())
            .into_par_iter()
            .map(|i| {
                let mut e = 0.0;
                for j in 0..pos.len() {
                    if j <= i {
                        continue;
                    }
                    let mut r2 = 0.0;
                    for (a, b) in pos[i].iter().zip(&pos[j]) {
                        let mut d = a - b;
                        d -= box_len * (d / box_len).round();
                        r2 += d * d;
                    }
                    if r2 < rc2 {
                        let inv6 = 1.0 / (r2 * r2 * r2);
                        e += 4.0 * inv6 * (inv6 - 1.0);
                    }
                }
                e
            })
            .sum();
        ke + pe
    }

    /// Net momentum (should stay ~0 without a thermostat).
    pub fn momentum(&self) -> [f64; 3] {
        let mut p = [0.0f64; 3];
        for v in &self.vel {
            for k in 0..3 {
                p[k] += v[k];
            }
        }
        p
    }

    /// Capture the current state as a serializable frame, labelled as
    /// belonging to `model`.
    pub fn capture(&self, model: Model) -> Frame {
        Frame {
            model,
            step: self.step_count,
            box_lengths: [self.box_len as f32; 3],
            ids: (0..self.pos.len() as u32).collect(),
            positions: self.pos.clone(),
        }
    }
}

/// Box-Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EngineConfig {
        EngineConfig {
            n_atoms: 125,
            density: 0.7,
            dt: 0.001,
            cutoff: 2.5,
            temperature: 0.8,
            thermostat_tau: 0.0, // NVE for conservation tests
            seed: 7,
        }
    }

    #[test]
    fn atoms_stay_in_box() {
        let mut e = MdEngine::new(small());
        e.run(50);
        let l = e.box_len();
        for p in e.positions() {
            for k in 0..3 {
                assert!(p[k] >= 0.0 && p[k] < l, "escaped: {p:?}");
            }
        }
    }

    #[test]
    fn momentum_is_conserved_without_thermostat() {
        let mut e = MdEngine::new(small());
        let p0 = e.momentum();
        e.run(100);
        let p1 = e.momentum();
        for k in 0..3 {
            assert!(p0[k].abs() < 1e-9);
            assert!(p1[k].abs() < 1e-6, "momentum drifted: {p1:?}");
        }
    }

    #[test]
    fn energy_roughly_conserved_in_nve() {
        let mut e = MdEngine::new(small());
        // Equilibrate a little first so the lattice relaxes.
        e.run(20);
        let e0 = e.total_energy();
        e.run(200);
        let e1 = e.total_energy();
        let drift = ((e1 - e0) / e0.abs()).abs();
        assert!(drift < 0.05, "energy drifted {drift} ({e0} -> {e1})");
    }

    #[test]
    fn thermostat_pulls_temperature_to_target() {
        let cfg = EngineConfig {
            thermostat_tau: 0.05,
            temperature: 1.2,
            n_atoms: 216,
            ..small()
        };
        let mut e = MdEngine::new(cfg);
        e.run(300);
        let t = e.temperature();
        assert!((t - 1.2).abs() < 0.15, "temperature {t}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = MdEngine::new(small());
        let mut b = MdEngine::new(small());
        a.run(50);
        b.run(50);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn captured_frames_round_trip() {
        let mut e = MdEngine::new(small());
        e.run(10);
        let f = e.capture(Model::Jac);
        assert_eq!(f.step, 10);
        let back = crate::frame::Frame::decode(f.encode()).unwrap();
        assert_eq!(back.positions.len(), 125);
        assert_eq!(back, f);
    }
}
