//! Verlet neighbour lists — the classic MD optimization (and the
//! counterpart of the engine's cell list): pair candidates within
//! `cutoff + skin` are cached and only rebuilt once any atom has moved
//! half the skin, amortizing the neighbour search over many steps.

use rayon::prelude::*;

/// A cached neighbour list with a skin buffer.
#[derive(Debug, Clone)]
pub struct VerletList {
    cutoff: f64,
    skin: f64,
    box_len: f64,
    /// Flattened neighbour indices per atom.
    neighbors: Vec<Vec<u32>>,
    /// Positions at build time (for displacement tracking).
    built_at: Vec<[f64; 3]>,
    /// Rebuild count (diagnostics).
    rebuilds: u64,
}

impl VerletList {
    /// Build a list for `positions` in a cubic periodic box.
    pub fn build(positions: &[[f64; 3]], box_len: f64, cutoff: f64, skin: f64) -> VerletList {
        assert!(cutoff > 0.0 && skin >= 0.0 && box_len > 0.0);
        let mut list = VerletList {
            cutoff,
            skin,
            box_len,
            neighbors: Vec::new(),
            built_at: Vec::new(),
            rebuilds: 0,
        };
        list.rebuild(positions);
        list
    }

    /// Recompute the candidate pairs (O(n²) search with minimum image;
    /// the point of the list is how rarely this runs).
    pub fn rebuild(&mut self, positions: &[[f64; 3]]) {
        let r_list = self.cutoff + self.skin;
        let r2 = r_list * r_list;
        let box_len = self.box_len;
        self.neighbors = (0..positions.len())
            .into_par_iter()
            .map(|i| {
                let mut n = Vec::new();
                for (j, pj) in positions.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let mut d2 = 0.0;
                    for k in 0..3 {
                        let mut d = positions[i][k] - pj[k];
                        d -= box_len * (d / box_len).round();
                        d2 += d * d;
                    }
                    if d2 < r2 {
                        n.push(j as u32);
                    }
                }
                n
            })
            .collect();
        self.built_at = positions.to_vec();
        self.rebuilds += 1;
    }

    /// Has any atom moved more than half the skin since the last build?
    pub fn needs_rebuild(&self, positions: &[[f64; 3]]) -> bool {
        let limit = (self.skin / 2.0) * (self.skin / 2.0);
        positions
            .par_iter()
            .zip(self.built_at.par_iter())
            .any(|(p, b)| {
                let mut d2 = 0.0;
                for k in 0..3 {
                    let mut d = p[k] - b[k];
                    d -= self.box_len * (d / self.box_len).round();
                    d2 += d * d;
                }
                d2 > limit
            })
    }

    /// Ensure the list is valid for `positions`, rebuilding if needed.
    /// Returns whether a rebuild happened.
    pub fn refresh(&mut self, positions: &[[f64; 3]]) -> bool {
        if self.needs_rebuild(positions) {
            self.rebuild(positions);
            true
        } else {
            false
        }
    }

    /// Times the list has been (re)built.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Neighbours of atom `i` (candidates within cutoff + skin).
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.neighbors[i]
    }

    /// Lennard-Jones forces using the cached list (parallel over atoms).
    /// Exactly matches the engine's cell-list forces as long as the list
    /// is fresh (every true pair within the cutoff is a candidate).
    pub fn lj_forces(&self, positions: &[[f64; 3]]) -> Vec<[f64; 3]> {
        let rc2 = self.cutoff * self.cutoff;
        let box_len = self.box_len;
        (0..positions.len())
            .into_par_iter()
            .map(|i| {
                let pi = positions[i];
                let mut f = [0.0f64; 3];
                for &j in &self.neighbors[i] {
                    let pj = positions[j as usize];
                    let mut r = [0.0f64; 3];
                    let mut r2 = 0.0;
                    for k in 0..3 {
                        let mut d = pi[k] - pj[k];
                        d -= box_len * (d / box_len).round();
                        r[k] = d;
                        r2 += d * d;
                    }
                    if r2 < rc2 && r2 > 1e-12 {
                        let inv2 = 1.0 / r2;
                        let inv6 = inv2 * inv2 * inv2;
                        let fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
                        for k in 0..3 {
                            f[k] += fmag * r[k];
                        }
                    }
                }
                f
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, MdEngine};

    fn engine() -> MdEngine {
        MdEngine::new(EngineConfig {
            n_atoms: 216,
            density: 0.7,
            thermostat_tau: 0.0,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn verlet_forces_match_cell_list_forces() {
        let mut e = engine();
        e.run(25);
        let list = VerletList::build(e.positions(), e.box_len(), 2.5, 0.4);
        let verlet = list.lj_forces(e.positions());
        let cell = e.current_forces();
        assert_eq!(verlet.len(), cell.len());
        for (i, (a, b)) in verlet.iter().zip(cell).enumerate() {
            for k in 0..3 {
                assert!(
                    (a[k] - b[k]).abs() < 1e-9,
                    "atom {i} axis {k}: {} vs {}",
                    a[k],
                    b[k]
                );
            }
        }
    }

    #[test]
    fn list_stays_valid_within_skin() {
        let mut e = engine();
        e.run(5);
        let mut list = VerletList::build(e.positions(), e.box_len(), 2.5, 0.8);
        let mut rebuilds = 0;
        for _ in 0..20 {
            e.step();
            if list.refresh(e.positions()) {
                rebuilds += 1;
            }
            // Whether rebuilt or not, forces must match the exact ones.
            let verlet = list.lj_forces(e.positions());
            let exact = e.current_forces();
            for (a, b) in verlet.iter().zip(exact) {
                for k in 0..3 {
                    assert!((a[k] - b[k]).abs() < 1e-9);
                }
            }
        }
        // The skin must have amortized at least some rebuilds.
        assert!(rebuilds < 20, "rebuilt every step: skin has no effect");
    }

    #[test]
    fn zero_skin_requires_constant_rebuilds() {
        let mut e = engine();
        e.run(5);
        let mut list = VerletList::build(e.positions(), e.box_len(), 2.5, 0.0);
        e.step();
        assert!(list.needs_rebuild(e.positions()));
        assert!(list.refresh(e.positions()));
        assert_eq!(list.rebuild_count(), 2);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let e = engine();
        let list = VerletList::build(e.positions(), e.box_len(), 2.5, 0.3);
        for i in 0..e.positions().len() {
            for &j in list.neighbors_of(i) {
                assert!(
                    list.neighbors_of(j as usize).contains(&(i as u32)),
                    "asymmetric pair ({i}, {j})"
                );
            }
        }
    }
}
