//! The paper's MD *emulation* mode.
//!
//! §IV-C: "a producer emulates the computation done by an MD simulation
//! using a fixed-duration MD sleep", with the per-step duration taken
//! from Table II. This module provides that emulator for the simulated
//! workflow: per-step durations (with optional jitter) and realistic
//! frame payloads.
//!
//! Payload strategy: one fully populated frame is generated per
//! (model, seed) as an immutable template; each emitted frame is a fresh
//! 48-byte header (carrying the real step number) plus a zero-copy slice
//! of the template body. Frames are therefore bit-exact, validated
//! end-to-end, and emitting them is O(1) regardless of model size —
//! which is what makes the 256-pair and STMV sweeps tractable.

use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::frame::{FrameHeader, MAGIC, VERSION};
use crate::models::{Model, ATOM_BYTES, HEADER_BYTES};

/// An immutable, fully populated frame body for one model.
///
/// Cloning is cheap (the body is a shared [`Bytes`] handle), which is
/// what lets a warm-started campaign generate one template per sweep
/// point and hand every repetition a copy instead of re-synthesizing
/// O(atoms) bytes per run.
#[derive(Clone)]
pub struct FrameTemplate {
    model: Model,
    /// Encoded atom records (28 bytes each), shared by every frame.
    body: Bytes,
    box_lengths: [f32; 3],
}

impl FrameTemplate {
    /// Generate a template with pseudo-random (but deterministic)
    /// positions on a lattice perturbed by `seed`.
    pub fn generate(model: Model, seed: u64) -> Self {
        let n = model.atoms();
        let box_len = (n as f64).cbrt() * 3.0;
        let mut body = BytesMut::with_capacity((n * ATOM_BYTES) as usize);
        // Cheap deterministic position synthesis (an xorshift stream):
        // full RNG quality is unnecessary, O(n) speed matters for STMV.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * box_len
        };
        for i in 0..n {
            body.put_u32_le(i as u32);
            body.put_f64_le(next());
            body.put_f64_le(next());
            body.put_f64_le(next());
        }
        FrameTemplate {
            model,
            body: body.freeze(),
            box_lengths: [box_len as f32; 3],
        }
    }

    /// The model this template belongs to.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Emit a frame for `step` as a `[header, body]` rope. The body is a
    /// zero-copy clone of the template; only 48 header bytes are fresh.
    pub fn frame_segments(&self, step: u64) -> Vec<Bytes> {
        let mut hdr = BytesMut::with_capacity(HEADER_BYTES as usize);
        hdr.put_u64_le(MAGIC);
        hdr.put_u32_le(VERSION);
        hdr.put_u32_le(self.model.id());
        hdr.put_u64_le(step);
        hdr.put_u64_le(self.model.atoms());
        for b in self.box_lengths {
            hdr.put_f32_le(b);
        }
        hdr.put_u32_le(0);
        vec![hdr.freeze(), self.body.clone()]
    }

    /// Validate that `segments` is a well-formed frame for this model at
    /// `step`, checking the header fields and total length.
    pub fn validate(&self, segments: &[Bytes], step: u64) -> bool {
        let Ok(h) = FrameHeader::decode_segments(segments) else {
            return false;
        };
        let total: u64 = segments.iter().map(|s| s.len() as u64).sum();
        h.model == self.model
            && h.step == step
            && h.atoms == self.model.atoms()
            && total == self.model.frame_bytes()
    }
}

/// Per-step duration source for the sleep-based MD emulator.
#[derive(Debug, Clone, Copy)]
pub struct StepClock {
    /// Mean milliseconds per MD step (Table II).
    pub ms_per_step: f64,
    /// Relative jitter: each stride's duration is drawn uniformly from
    /// `[1-jitter, 1+jitter] × nominal`. Models real step-time variance
    /// and desynchronizes initially aligned producers.
    pub jitter: f64,
}

impl StepClock {
    /// Clock for a model with the given jitter fraction.
    pub fn for_model(model: Model, jitter: f64) -> Self {
        StepClock {
            ms_per_step: model.ms_per_step(),
            jitter,
        }
    }

    /// Seconds a run of `stride` steps takes (one draw per stride, as
    /// the paper's emulator sleeps once per stride).
    pub fn stride_secs(&self, stride: u64, rng: &mut StdRng) -> f64 {
        let nominal = stride as f64 * self.ms_per_step / 1000.0;
        if self.jitter <= 0.0 {
            return nominal;
        }
        let k: f64 = rng.random_range(1.0 - self.jitter..1.0 + self.jitter);
        nominal * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn template_frames_have_exact_size_and_header() {
        let t = FrameTemplate::generate(Model::Jac, 11);
        let segs = t.frame_segments(880);
        let total: u64 = segs.iter().map(|s| s.len() as u64).sum();
        assert_eq!(total, Model::Jac.frame_bytes());
        let h = FrameHeader::decode_segments(&segs).unwrap();
        assert_eq!(h.model, Model::Jac);
        assert_eq!(h.step, 880);
        assert_eq!(h.atoms, Model::Jac.atoms());
    }

    #[test]
    fn frame_bodies_are_shared_not_copied() {
        let t = FrameTemplate::generate(Model::Jac, 11);
        let a = t.frame_segments(1);
        let b = t.frame_segments(2);
        assert_eq!(a[1].as_ptr(), b[1].as_ptr());
        assert_ne!(
            FrameHeader::decode_segments(&a).unwrap().step,
            FrameHeader::decode_segments(&b).unwrap().step
        );
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let t = FrameTemplate::generate(Model::Jac, 11);
        let segs = t.frame_segments(5);
        assert!(t.validate(&segs, 5));
        assert!(!t.validate(&segs, 6)); // wrong step
        let truncated = vec![segs[0].clone(), segs[1].slice(..100)];
        assert!(!t.validate(&truncated, 5)); // wrong length
        let other = FrameTemplate::generate(Model::ApoA1, 11);
        assert!(!other.validate(&segs, 5)); // wrong model
    }

    #[test]
    fn full_frames_decode_to_real_positions() {
        let t = FrameTemplate::generate(Model::Jac, 3);
        let segs = t.frame_segments(0);
        let f = crate::frame::Frame::decode_segments(&segs).unwrap();
        assert_eq!(f.positions.len() as u64, Model::Jac.atoms());
        // Positions are inside the synthetic box.
        let l = f.box_lengths[0] as f64;
        for p in f.positions.iter().take(100) {
            for c in p {
                assert!(*c >= 0.0 && *c <= l);
            }
        }
    }

    #[test]
    fn step_clock_nominal_and_jitter() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = StepClock::for_model(Model::Jac, 0.0);
        let s = c.stride_secs(880, &mut rng);
        assert!((s - 0.82).abs() < 0.005, "{s}");
        let c = StepClock::for_model(Model::Jac, 0.05);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..200 {
            let s = c.stride_secs(880, &mut rng);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        assert!(lo >= 0.82 * 0.94 && hi <= 0.82 * 1.06);
        assert!(hi - lo > 0.01, "jitter too small: {lo}..{hi}");
    }
}
