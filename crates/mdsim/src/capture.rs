//! Plumed-like frame capture: a hook that fires every `stride` MD steps
//! without disturbing the engine (Figure 1's "Plumed" box).

use crate::engine::MdEngine;
use crate::frame::Frame;
use crate::models::Model;

/// Receives captured frames.
pub trait FrameSink {
    /// Called with each captured frame.
    fn on_frame(&mut self, frame: Frame);
}

impl<F: FnMut(Frame)> FrameSink for F {
    fn on_frame(&mut self, frame: Frame) {
        self(frame)
    }
}

/// A stride-based capture hook in the Plumed mould.
pub struct CaptureHook {
    model: Model,
    stride: u64,
    captured: u64,
}

impl CaptureHook {
    /// Capture a frame every `stride` steps, labelled as `model`.
    pub fn new(model: Model, stride: u64) -> Self {
        assert!(stride > 0);
        CaptureHook {
            model,
            stride,
            captured: 0,
        }
    }

    /// Frames captured so far.
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// Advance the engine `steps` steps, invoking `sink` at each stride
    /// boundary (matching the paper: "Each producer process runs for a
    /// fixed number of steps before producing a snapshot").
    pub fn run(&mut self, engine: &mut MdEngine, steps: u64, sink: &mut dyn FrameSink) {
        for _ in 0..steps {
            engine.step();
            if engine.step_count().is_multiple_of(self.stride) {
                sink.on_frame(engine.capture(self.model));
                self.captured += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    #[test]
    fn captures_every_stride() {
        let mut engine = MdEngine::new(EngineConfig {
            n_atoms: 64,
            ..EngineConfig::default()
        });
        let mut hook = CaptureHook::new(Model::Jac, 10);
        let mut steps_seen = Vec::new();
        let mut sink = |f: Frame| steps_seen.push(f.step);
        hook.run(&mut engine, 35, &mut sink);
        assert_eq!(steps_seen, vec![10, 20, 30]);
        assert_eq!(hook.captured(), 3);
    }

    #[test]
    fn continues_across_calls() {
        let mut engine = MdEngine::new(EngineConfig {
            n_atoms: 64,
            ..EngineConfig::default()
        });
        let mut hook = CaptureHook::new(Model::Jac, 10);
        let mut count = 0u64;
        let mut sink = |_: Frame| count += 1;
        hook.run(&mut engine, 15, &mut sink);
        hook.run(&mut engine, 15, &mut sink);
        assert_eq!(count, 3); // steps 10, 20, 30
    }
}
