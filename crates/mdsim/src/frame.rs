//! The frame wire format: what producers serialize and consumers
//! deserialize.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   u64  magic  "MDFRAME\0"
//! 8   u32  format version (1)
//! 12  u32  model id
//! 16  u64  MD step the frame was captured at
//! 24  u64  atom count
//! 32  f32  box x, y, z
//! 44  u32  padding / reserved
//! 48  per atom: u32 id, f64 x, f64 y, f64 z   (28 bytes)
//! ```
//!
//! 48 + 28·atoms bytes total, matching Table I's frame sizes.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::models::{Model, ATOM_BYTES, HEADER_BYTES};

/// Magic number identifying a frame ("MDFRAME\0").
pub const MAGIC: u64 = 0x4D44_4652_414D_4500;
/// Current format version.
pub const VERSION: u32 = 1;

/// A decoded (or to-be-encoded) MD frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Which molecular model produced this frame.
    pub model: Model,
    /// MD step at capture time.
    pub step: u64,
    /// Simulation box lengths.
    pub box_lengths: [f32; 3],
    /// Atom ids.
    pub ids: Vec<u32>,
    /// Atom positions.
    pub positions: Vec<[f64; 3]>,
}

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than a header or truncated mid-atom.
    Truncated,
    /// Bad magic number.
    BadMagic,
    /// Unsupported version.
    BadVersion,
    /// Unknown model id.
    BadModel,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameError::Truncated => "frame buffer truncated",
            FrameError::BadMagic => "bad frame magic",
            FrameError::BadVersion => "unsupported frame version",
            FrameError::BadModel => "unknown model id",
        };
        f.write_str(s)
    }
}
impl std::error::Error for FrameError {}

impl Frame {
    /// Serialize to wire bytes. The result is exactly
    /// [`Model::frame_bytes`] long.
    pub fn encode(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity((HEADER_BYTES + ATOM_BYTES * self.ids.len() as u64) as usize);
        buf.put_u64_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.model.id());
        buf.put_u64_le(self.step);
        buf.put_u64_le(self.ids.len() as u64);
        for b in self.box_lengths {
            buf.put_f32_le(b);
        }
        buf.put_u32_le(0); // reserved
        for (id, pos) in self.ids.iter().zip(&self.positions) {
            buf.put_u32_le(*id);
            buf.put_f64_le(pos[0]);
            buf.put_f64_le(pos[1]);
            buf.put_f64_le(pos[2]);
        }
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut raw: Bytes) -> Result<Frame, FrameError> {
        let header = FrameHeader::decode(&raw)?;
        raw.advance(HEADER_BYTES as usize);
        let natoms = header.atoms as usize;
        if (raw.len() as u64) < ATOM_BYTES * header.atoms {
            return Err(FrameError::Truncated);
        }
        let mut ids = Vec::with_capacity(natoms);
        let mut positions = Vec::with_capacity(natoms);
        for _ in 0..natoms {
            ids.push(raw.get_u32_le());
            positions.push([raw.get_f64_le(), raw.get_f64_le(), raw.get_f64_le()]);
        }
        Ok(Frame {
            model: header.model,
            step: header.step,
            box_lengths: header.box_lengths,
            ids,
            positions,
        })
    }

    /// Decode a frame stored as a rope of segments (as returned by the
    /// zero-copy read paths) by concatenating once.
    pub fn decode_segments(segments: &[Bytes]) -> Result<Frame, FrameError> {
        if segments.len() == 1 {
            return Frame::decode(segments[0].clone());
        }
        let total: usize = segments.iter().map(|s| s.len()).sum();
        let mut flat = BytesMut::with_capacity(total);
        for s in segments {
            flat.extend_from_slice(s);
        }
        Frame::decode(flat.freeze())
    }
}

/// The fixed-size frame header, decodable without touching the body —
/// what the consumer-side workflow uses to validate frames cheaply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameHeader {
    /// Which molecular model produced this frame.
    pub model: Model,
    /// MD step at capture time.
    pub step: u64,
    /// Atom count.
    pub atoms: u64,
    /// Simulation box lengths.
    pub box_lengths: [f32; 3],
}

impl FrameHeader {
    /// Decode just the header from the first bytes of a frame.
    pub fn decode(raw: &Bytes) -> Result<FrameHeader, FrameError> {
        if (raw.len() as u64) < HEADER_BYTES {
            return Err(FrameError::Truncated);
        }
        let mut h = raw.slice(..HEADER_BYTES as usize);
        if h.get_u64_le() != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if h.get_u32_le() != VERSION {
            return Err(FrameError::BadVersion);
        }
        let model = Model::from_id(h.get_u32_le()).ok_or(FrameError::BadModel)?;
        let step = h.get_u64_le();
        let atoms = h.get_u64_le();
        let box_lengths = [h.get_f32_le(), h.get_f32_le(), h.get_f32_le()];
        Ok(FrameHeader {
            model,
            step,
            atoms,
            box_lengths,
        })
    }

    /// Decode the header from the first segment of a rope.
    pub fn decode_segments(segments: &[Bytes]) -> Result<FrameHeader, FrameError> {
        match segments.first() {
            Some(first) if first.len() as u64 >= HEADER_BYTES => FrameHeader::decode(first),
            Some(_) | None => {
                let mut flat = BytesMut::new();
                for s in segments {
                    flat.extend_from_slice(s);
                    if flat.len() as u64 >= HEADER_BYTES {
                        break;
                    }
                }
                FrameHeader::decode(&flat.freeze())
            }
        }
    }

    /// Total frame length implied by the header.
    pub fn frame_bytes(&self) -> u64 {
        HEADER_BYTES + ATOM_BYTES * self.atoms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_frame() -> Frame {
        Frame {
            model: Model::Jac,
            step: 880,
            box_lengths: [62.2, 62.2, 62.2],
            ids: (0..100).collect(),
            positions: (0..100)
                .map(|i| [i as f64 * 0.1, i as f64 * 0.2, i as f64 * 0.3])
                .collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let f = small_frame();
        let wire = f.encode();
        assert_eq!(wire.len() as u64, HEADER_BYTES + 100 * ATOM_BYTES);
        let back = Frame::decode(wire).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn full_model_frame_has_table_one_size() {
        let n = Model::Jac.atoms() as usize;
        let f = Frame {
            model: Model::Jac,
            step: 0,
            box_lengths: [1.0; 3],
            ids: (0..n as u32).collect(),
            positions: vec![[0.0; 3]; n],
        };
        assert_eq!(f.encode().len() as u64, Model::Jac.frame_bytes());
    }

    #[test]
    fn header_only_decode() {
        let wire = small_frame().encode();
        let h = FrameHeader::decode(&wire).unwrap();
        assert_eq!(h.model, Model::Jac);
        assert_eq!(h.step, 880);
        assert_eq!(h.atoms, 100);
        assert_eq!(h.frame_bytes(), wire.len() as u64);
    }

    #[test]
    fn decode_rejects_corruption() {
        let wire = small_frame().encode();
        // Truncated.
        assert_eq!(
            Frame::decode(wire.slice(..20)).unwrap_err(),
            FrameError::Truncated
        );
        // Bad magic.
        let mut bad = wire.to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(
            Frame::decode(Bytes::from(bad)).unwrap_err(),
            FrameError::BadMagic
        );
        // Bad version.
        let mut bad = wire.to_vec();
        bad[8] = 0xFF;
        assert_eq!(
            Frame::decode(Bytes::from(bad)).unwrap_err(),
            FrameError::BadVersion
        );
        // Bad model.
        let mut bad = wire.to_vec();
        bad[12] = 0xEE;
        assert_eq!(
            Frame::decode(Bytes::from(bad)).unwrap_err(),
            FrameError::BadModel
        );
        // Truncated body.
        assert_eq!(
            Frame::decode(wire.slice(..wire.len() - 1)).unwrap_err(),
            FrameError::Truncated
        );
    }

    #[test]
    fn segment_rope_decoding() {
        let f = small_frame();
        let wire = f.encode();
        // Split into header + body segments, as the zero-copy path does.
        let segs = vec![wire.slice(..48), wire.slice(48..)];
        assert_eq!(Frame::decode_segments(&segs).unwrap(), f);
        let h = FrameHeader::decode_segments(&segs).unwrap();
        assert_eq!(h.step, 880);
        // Pathological: header split across tiny segments.
        let segs: Vec<Bytes> = wire.chunks(7).map(Bytes::copy_from_slice).collect();
        assert_eq!(FrameHeader::decode_segments(&segs).unwrap(), h);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn round_trip_arbitrary_frames(
                step in any::<u64>(),
                n in 0usize..200,
                seed in any::<u32>(),
            ) {
                let f = Frame {
                    model: Model::ApoA1,
                    step,
                    box_lengths: [seed as f32, 1.0, 2.0],
                    ids: (0..n as u32).map(|i| i ^ seed).collect(),
                    positions: (0..n)
                        .map(|i| {
                            let x = (i as f64 + seed as f64).sin();
                            [x, x * 2.0, x * 3.0]
                        })
                        .collect(),
                };
                prop_assert_eq!(Frame::decode(f.encode()).unwrap(), f);
            }
        }
    }
}
