//! # mdsim — molecular models, frames, a mini-MD engine, and the
//! sleep-based MD emulator
//!
//! Everything the workflow needs on the *science* side of the paper:
//!
//! * [`Model`] — the four molecular models with Table I/II constants
//!   (atoms, frame bytes, steps/s, stride, frame period);
//! * [`Frame`] / [`FrameHeader`] — the frame wire format (48-byte header
//!   + 28 bytes/atom, reproducing Table I's frame sizes exactly);
//! * [`MdEngine`] + [`CaptureHook`] — a real Lennard-Jones MD engine
//!   with rayon-parallel forces and a Plumed-like stride capture hook,
//!   used by the examples and the analytics tests;
//! * [`FrameTemplate`] + [`StepClock`] — the paper's emulation mode
//!   (fixed ms/step sleeps, realistic frame payloads emitted zero-copy)
//!   used inside the discrete-event workflow.

#![warn(missing_docs)]

mod capture;
mod emulator;
mod engine;
mod frame;
mod models;
mod neighbor;

pub use capture::{CaptureHook, FrameSink};
pub use emulator::{FrameTemplate, StepClock};
pub use engine::{EngineConfig, MdEngine};
pub use frame::{Frame, FrameError, FrameHeader, MAGIC, VERSION};
pub use models::{Model, ATOM_BYTES, HEADER_BYTES};
pub use neighbor::VerletList;
