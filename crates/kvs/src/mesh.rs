//! # kvs::mesh — a sharded, replicated metadata plane
//!
//! The single [`crate::KvsServer`] broker is the protocol bottleneck
//! and single point of failure of the DYAD reproduction: every
//! produce/consume funnels through one FIFO service pool on one node.
//! This module scales that control plane out:
//!
//! * **Sharding** — N brokers partition the key namespace by
//!   *rendezvous (highest-random-weight) hashing*: every key scores
//!   each shard with a mixed hash and is owned by the top scorer. When
//!   the shard count grows from N to N+1, a key either keeps its owner
//!   or moves to the new shard — routing is stable except at rebalance
//!   boundaries (no mod-N reshuffle).
//! * **Replication** — with a replication factor R, a key's *preference
//!   list* is its top-R shards by the same score. The owner applies a
//!   commit/unlink locally, then synchronously ships a [`Delta`] to
//!   every other *live* member of the preference list and waits for the
//!   acks before acknowledging the client, so an acked write survives
//!   the permanent crash of any R−1 shards.
//! * **Causal delivery** — each delta carries `(origin, seq, deps)`
//!   where `deps` is the origin's per-key version vector before the
//!   write. A replica applies a delta only once its parents have
//!   applied; out-of-order arrivals buffer in a [`CausalBuffer`] and
//!   drain as their dependencies land.
//! * **Failover** — [`MeshKvsClient`] routes every operation to the
//!   first *live* shard of the key's preference list. A shard killed by
//!   a `KvsShardCrash` fault answers `ShardDown` (parked waits are
//!   flushed), the client maps that to `Unreachable`, and the fallible
//!   `try_*` paths walk down the preference list — so a replicated
//!   namespace heals while an unreplicated one fails typed.
//!
//! Shard 0 listens on the legacy [`crate::KVS_AM`] id; a mesh with one
//! shard and R=1 is event-for-event identical to the standalone broker.

use std::cell::RefCell;
use std::hash::Hash;
use std::rc::Rc;

use bytes::Bytes;
use cluster::NodeId;
use faults::FaultBoard;
use simcore::intern::{FxHashMap, Symbol};
use simcore::{splitmix64, Ctx};
use transport::{AmId, Transport, TransportError};

use crate::{
    handle, KvsClient, KvsServer, KvsSpec, KvsStats, Request, Response, Store, VersionedValue,
    KVS_AM,
};

/// The AM id shard `shard` listens on (`KVS_AM` for shard 0, so the
/// standalone broker *is* shard 0 of a one-shard mesh).
pub(crate) fn shard_am(shard: u32) -> AmId {
    AmId(KVS_AM.0 + shard)
}

// ---------------------------------------------------------------------------
// Routing: rendezvous hashing
// ---------------------------------------------------------------------------

fn fnv1a(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The rendezvous score of `key` on `shard`: a pure mix of the key hash
/// and the shard id. Owner = argmax over shards.
fn shard_score(key_hash: u64, shard: u32) -> u64 {
    splitmix64(key_hash ^ splitmix64(0x6D65_7368_0000_0000 | u64::from(shard)))
}

/// The shard owning `key` in a mesh of `shards` brokers.
///
/// Rendezvous property: growing the mesh from N to N+1 shards moves a
/// key only if the new shard out-scores all N incumbents — so routing
/// changes *only* at rebalance boundaries, never by mod-N reshuffle.
pub fn shard_for(key: &str, shards: u32) -> u32 {
    assert!(shards > 0, "mesh needs at least one shard");
    let h = fnv1a(key);
    let mut best = 0u32;
    let mut best_score = shard_score(h, 0);
    for s in 1..shards {
        let score = shard_score(h, s);
        if score > best_score {
            best = s;
            best_score = score;
        }
    }
    best
}

/// The preference list of `key`: its top-`r` shards by rendezvous score
/// (ties broken toward the lower shard id). The first entry is the
/// owner ([`shard_for`]); the rest are its replicas.
pub fn preference_list(key: &str, shards: u32, r: u32) -> Vec<u32> {
    assert!(shards > 0, "mesh needs at least one shard");
    let h = fnv1a(key);
    let mut scored: Vec<(u64, u32)> = (0..shards).map(|s| (shard_score(h, s), s)).collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.truncate(r.clamp(1, shards) as usize);
    scored.into_iter().map(|(_, s)| s).collect()
}

// ---------------------------------------------------------------------------
// Causal delta delivery
// ---------------------------------------------------------------------------

/// One replicated write: `key` was written at `origin` as that shard's
/// `seq`-th write to the key, causally after the writes in `deps`
/// (origin's per-key version vector before this write). `value: None`
/// is an unlink tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta<K> {
    /// Key the write applies to.
    pub key: K,
    /// Shard the write originated on.
    pub origin: u32,
    /// Per-(key, origin) sequence number.
    pub seq: u64,
    /// Causal parents: origin's per-key version vector before the write.
    pub deps: Vec<(u32, u64)>,
    /// New value, or `None` for an unlink.
    pub value: Option<Bytes>,
}

/// Per-key version vectors plus an out-of-order delta buffer.
///
/// Pure data structure (no simulation types) so causal delivery can be
/// property-tested over arbitrary arrival permutations. A delta is
/// *ready* when it is the next write from its origin (`seq ==
/// applied[origin] + 1`) and every causal parent has applied; offers
/// that are not ready buffer, and each application drains any buffered
/// children that became ready.
#[derive(Default)]
pub struct CausalBuffer<K: Hash + Eq + Clone> {
    /// Per-key version vector: for each origin shard, the highest
    /// contiguously-applied sequence number. Kept sorted by origin.
    applied: FxHashMap<K, Vec<(u32, u64)>>,
    /// Deltas waiting for their causal parents.
    pending: Vec<Delta<K>>,
    buffered_total: u64,
}

impl<K: Hash + Eq + Clone> CausalBuffer<K> {
    /// An empty buffer.
    pub fn new() -> Self {
        CausalBuffer {
            applied: FxHashMap::default(),
            pending: Vec::new(),
            buffered_total: 0,
        }
    }

    fn seen(vv: &[(u32, u64)], origin: u32) -> u64 {
        vv.iter().find(|e| e.0 == origin).map(|e| e.1).unwrap_or(0)
    }

    fn advance(vv: &mut Vec<(u32, u64)>, origin: u32, seq: u64) {
        match vv.iter_mut().find(|e| e.0 == origin) {
            Some(e) => e.1 = seq,
            None => {
                vv.push((origin, seq));
                vv.sort_unstable_by_key(|e| e.0);
            }
        }
    }

    /// Record a local write to `key` at shard `origin`; returns the
    /// `(seq, deps)` to stamp on the outgoing [`Delta`].
    pub fn record_local(&mut self, key: &K, origin: u32) -> (u64, Vec<(u32, u64)>) {
        let vv = self.applied.entry(key.clone()).or_default();
        let deps = vv.clone();
        let seq = Self::seen(vv, origin) + 1;
        Self::advance(vv, origin, seq);
        (seq, deps)
    }

    fn ready(&self, d: &Delta<K>) -> bool {
        static EMPTY: Vec<(u32, u64)> = Vec::new();
        let vv = self.applied.get(&d.key).unwrap_or(&EMPTY);
        Self::seen(vv, d.origin) + 1 == d.seq
            && d.deps
                .iter()
                .all(|&(s, n)| s == d.origin || Self::seen(vv, s) >= n)
    }

    fn mark_applied(&mut self, d: &Delta<K>) {
        let vv = self.applied.entry(d.key.clone()).or_default();
        Self::advance(vv, d.origin, d.seq);
    }

    /// Offer a remote delta. Returns the deltas that became applicable
    /// — the offered one plus any buffered children it unblocked, in
    /// causal application order — or an empty vec if it buffered (or
    /// was a stale duplicate).
    pub fn offer(&mut self, d: Delta<K>) -> Vec<Delta<K>> {
        let already = {
            let vv = self.applied.get(&d.key);
            vv.is_some_and(|vv| Self::seen(vv, d.origin) >= d.seq)
        };
        if already {
            return Vec::new();
        }
        if !self.ready(&d) {
            self.buffered_total += 1;
            self.pending.push(d);
            return Vec::new();
        }
        self.mark_applied(&d);
        let mut out = vec![d];
        while let Some(i) = self.pending.iter().position(|p| self.ready(p)) {
            let p = self.pending.remove(i);
            self.mark_applied(&p);
            out.push(p);
        }
        out
    }

    /// Deltas still waiting for causal parents.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total offers that had to buffer (monotone counter).
    pub fn buffered_total(&self) -> u64 {
        self.buffered_total
    }
}

// ---------------------------------------------------------------------------
// Topology + server side
// ---------------------------------------------------------------------------

/// Static shape of a mesh: where each shard lives and the replication
/// factor. Shared (`Rc`) by every shard server and client of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshTopology {
    shard_nodes: Vec<NodeId>,
    replication: u32,
}

impl MeshTopology {
    /// A mesh of one shard per entry of `shard_nodes`, replicating each
    /// key to `replication` shards (clamped to the shard count).
    pub fn new(shard_nodes: Vec<NodeId>, replication: u32) -> MeshTopology {
        assert!(!shard_nodes.is_empty(), "mesh needs at least one shard");
        let n = shard_nodes.len() as u32;
        MeshTopology {
            shard_nodes,
            replication: replication.clamp(1, n),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shard_nodes.len() as u32
    }

    /// Replication factor (1 = unreplicated).
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// The node hosting `shard`.
    pub fn node(&self, shard: u32) -> NodeId {
        self.shard_nodes[shard as usize]
    }

    /// The owner shard of `key`.
    pub fn owner(&self, key: &str) -> u32 {
        shard_for(key, self.shards())
    }

    /// The preference list (owner first, then replicas) of `key`.
    pub fn preference(&self, key: &str) -> Vec<u32> {
        preference_list(key, self.shards(), self.replication)
    }
}

/// Shard-side request path in mesh mode: local apply plus synchronous
/// delta replication for writes, causal buffering for incoming deltas,
/// and the legacy [`handle`] for reads/waits.
pub(crate) async fn serve(
    store: &Rc<RefCell<Store>>,
    shard: u32,
    topo: &Rc<MeshTopology>,
    tp: &Transport,
    req: Request,
) -> Response {
    match req {
        Request::Commit { key, value } => {
            let (version, seq, deps) = {
                let mut st = store.borrow_mut();
                st.version += 1;
                let version = st.version;
                st.map.insert(
                    key,
                    VersionedValue {
                        version,
                        value: value.clone(),
                    },
                );
                st.stats.commits += 1;
                if let Some(n) = st.watches.remove(&key) {
                    n.notify_all();
                }
                let (seq, deps) = st.repl.record_local(&key, shard);
                (version, seq, deps)
            };
            replicate(store, shard, topo, tp, key, Some(value), seq, deps).await;
            Response::Committed { version }
        }
        Request::Unlink { key } => {
            let (seq, deps) = {
                let mut st = store.borrow_mut();
                st.map.remove(&key);
                st.stats.unlinks += 1;
                st.repl.record_local(&key, shard)
            };
            replicate(store, shard, topo, tp, key, None, seq, deps).await;
            Response::Unlinked
        }
        Request::Delta {
            key,
            origin,
            seq,
            deps,
            value,
        } => {
            let mut st = store.borrow_mut();
            let ready = st.repl.offer(Delta {
                key,
                origin,
                seq,
                deps,
                value,
            });
            st.stats.deltas_buffered = st.repl.buffered_total();
            for d in ready {
                st.stats.deltas_applied += 1;
                match d.value {
                    Some(v) => {
                        st.version += 1;
                        let version = st.version;
                        st.map.insert(d.key, VersionedValue { version, value: v });
                        if let Some(n) = st.watches.remove(&d.key) {
                            n.notify_all();
                        }
                    }
                    None => {
                        st.map.remove(&d.key);
                    }
                }
            }
            Response::DeltaAck
        }
        other => handle(store.clone(), other).await,
    }
}

/// Ship a write to every other live member of the key's preference
/// list and wait for the acks. Synchronous by design: an acked write
/// is on every live replica, so a later permanent crash of the owner
/// cannot lose it (no parked consumer ever waits on a key that only
/// the dead shard knew about).
#[allow(clippy::too_many_arguments)]
async fn replicate(
    store: &Rc<RefCell<Store>>,
    shard: u32,
    topo: &Rc<MeshTopology>,
    tp: &Transport,
    key: Symbol,
    value: Option<Bytes>,
    seq: u64,
    deps: Vec<(u32, u64)>,
) {
    if topo.replication() <= 1 {
        return;
    }
    let board = tp.faults();
    let ep = tp.endpoint(topo.node(shard));
    for peer in topo.preference(&key.resolve()) {
        if peer == shard {
            continue;
        }
        // A permanently-crashed peer is skipped: the delta would only
        // be answered with ShardDown anyway.
        if let Some(b) = &board {
            if !b.kvs_shard_up(peer) {
                continue;
            }
        }
        let req = Request::Delta {
            key,
            origin: shard,
            seq,
            deps: deps.clone(),
            value: value.clone(),
        };
        let raw = ep.rpc(topo.node(peer), shard_am(peer), req.encode()).await;
        store.borrow_mut().stats.deltas_sent += 1;
        // The peer may have died between the liveness check and
        // delivery; its ShardDown is as final as an ack to a dead shard.
        let _ = Response::decode(raw);
    }
}

/// The running mesh: one [`KvsServer`] per shard plus the shared
/// topology. Keep it alive for the duration of the run (dropping it
/// drops the shard stores).
pub struct KvsMesh {
    topo: Rc<MeshTopology>,
    spec: KvsSpec,
    shards: Vec<Rc<KvsServer>>,
}

impl KvsMesh {
    /// Start one shard broker on each node of `shard_nodes` (shard `s`
    /// on `shard_nodes[s]`, listening on `KVS_AM + s`), replicating
    /// every key to `replication` shards.
    pub fn start(
        ctx: &Ctx,
        tp: &Transport,
        shard_nodes: &[NodeId],
        spec: KvsSpec,
        replication: u32,
    ) -> KvsMesh {
        let topo = Rc::new(MeshTopology::new(shard_nodes.to_vec(), replication));
        let shards = (0..topo.shards())
            .map(|s| KvsServer::start_shard(ctx, tp, topo.node(s), spec, s, Some(topo.clone())))
            .collect();
        KvsMesh { topo, spec, shards }
    }

    /// The mesh's topology.
    pub fn topology(&self) -> Rc<MeshTopology> {
        self.topo.clone()
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.topo.shards()
    }

    /// The broker serving `shard`.
    pub fn shard(&self, shard: u32) -> &Rc<KvsServer> {
        &self.shards[shard as usize]
    }

    /// Operation counters of one shard.
    pub fn shard_stats(&self, shard: u32) -> KvsStats {
        self.shards[shard as usize].stats()
    }

    /// Aggregate counters over all shards (sums; `peak_queue` is the
    /// max over shards).
    pub fn stats(&self) -> KvsStats {
        let mut total = KvsStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.commits += st.commits;
            total.lookups += st.lookups;
            total.waits += st.waits;
            total.waits_parked += st.waits_parked;
            total.unlinks += st.unlinks;
            total.deltas_sent += st.deltas_sent;
            total.deltas_applied += st.deltas_applied;
            total.deltas_buffered += st.deltas_buffered;
            total.peak_queue = total.peak_queue.max(st.peak_queue);
        }
        total
    }

    /// A client on `node` for this mesh.
    pub fn client(&self, ctx: &Ctx, tp: &Transport, node: NodeId) -> MeshKvsClient {
        MeshKvsClient::new(ctx, tp, node, self.topo.clone(), self.spec)
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A mesh client bound to one node: routes every operation to the
/// owning shard of the key and, on the fallible paths, fails over down
/// the preference list when shards die.
#[derive(Clone)]
pub struct MeshKvsClient {
    topo: Rc<MeshTopology>,
    inner: Rc<Vec<KvsClient>>,
    board: Option<FaultBoard>,
}

impl MeshKvsClient {
    /// Create a client on `node` for the mesh described by `topo`.
    pub fn new(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        topo: Rc<MeshTopology>,
        spec: KvsSpec,
    ) -> MeshKvsClient {
        let inner = (0..topo.shards())
            .map(|s| KvsClient::new_with_am(ctx, tp, node, topo.node(s), shard_am(s), spec))
            .collect();
        MeshKvsClient {
            topo,
            inner: Rc::new(inner),
            board: tp.faults(),
        }
    }

    /// The mesh topology this client routes over.
    pub fn topology(&self) -> &MeshTopology {
        &self.topo
    }

    /// The owner shard of `key` (where per-shard poll counts are
    /// attributed).
    pub fn shard_of(&self, key: &str) -> u32 {
        self.topo.owner(key)
    }

    fn live(&self, shard: u32) -> bool {
        match &self.board {
            Some(b) => b.kvs_shard_up(shard),
            None => true,
        }
    }

    /// The shard an operation on `key` is routed to: the first live
    /// member of the preference list (the owner when healthy), or the
    /// owner if the whole list is dead (the op then fails typed).
    fn route(&self, key: &str) -> u32 {
        let pref = self.topo.preference(key);
        pref.iter()
            .copied()
            .find(|&s| self.live(s))
            .unwrap_or(pref[0])
    }

    fn client(&self, shard: u32) -> &KvsClient {
        &self.inner[shard as usize]
    }

    /// Infallible commit, routed to the first live replica of `key`.
    pub async fn commit(&self, key: &str, value: Bytes) -> u64 {
        self.client(self.route(key)).commit(key, value).await
    }

    /// Infallible lookup on the first live replica of `key`.
    pub async fn lookup(&self, key: &str) -> Option<VersionedValue> {
        self.client(self.route(key)).lookup(key).await
    }

    /// Cache-only read: checks the preference list's client caches in
    /// order (a failover may have warmed a replica's cache instead of
    /// the owner's).
    pub fn lookup_cached(&self, key: &str) -> Option<VersionedValue> {
        self.topo
            .preference(key)
            .into_iter()
            .find_map(|s| self.client(s).lookup_cached(key))
    }

    /// Infallible server-side wait on the first live replica of `key`.
    pub async fn wait_key(&self, key: &str) -> VersionedValue {
        self.client(self.route(key)).wait_key(key).await
    }

    /// Infallible polling wait (the synchronization ablation), routed
    /// per poll so a mid-wait crash fails over.
    pub async fn wait_key_poll(&self, key: &str) -> (VersionedValue, u64) {
        let mut polls = 0;
        loop {
            polls += 1;
            if let Some(v) = self.client(self.route(key)).lookup(key).await {
                return (v, polls);
            }
            let c = self.client(0);
            c.ctx.sleep(c.spec.poll_interval).await;
        }
    }

    /// Infallible unlink on the first live replica of `key`.
    pub async fn unlink(&self, key: &str) {
        self.client(self.route(key)).unlink(key).await
    }

    /// Fallible commit with preference-list failover: each live replica
    /// is tried with the inner client's full retry budget; errors only
    /// when every replica is exhausted or down.
    pub async fn try_commit(&self, key: &str, value: Bytes) -> Result<u64, TransportError> {
        let mut last = self.all_down_error(key);
        for s in self.topo.preference(key) {
            if !self.live(s) {
                continue;
            }
            match self.client(s).try_commit(key, value.clone()).await {
                Ok(v) => return Ok(v),
                Err(e) => last = Err(e),
            }
        }
        last
    }

    /// Fallible lookup with preference-list failover.
    pub async fn try_lookup(&self, key: &str) -> Result<Option<VersionedValue>, TransportError> {
        let mut last = self.all_down_error(key);
        for s in self.topo.preference(key) {
            if !self.live(s) {
                continue;
            }
            match self.client(s).try_lookup(key).await {
                Ok(v) => return Ok(v),
                Err(e) => last = Err(e),
            }
        }
        last
    }

    /// Fallible server-side wait with preference-list failover: a wait
    /// parked on a shard that then crashes is flushed with `ShardDown`
    /// and re-parked on the next live replica (which the synchronous
    /// replication protocol guarantees will see the commit).
    pub async fn try_wait_key(&self, key: &str) -> Result<VersionedValue, TransportError> {
        let mut last = self.all_down_error(key);
        for s in self.topo.preference(key) {
            if !self.live(s) {
                continue;
            }
            match self.client(s).try_wait_key(key).await {
                Ok(v) => return Ok(v),
                Err(e) => last = Err(e),
            }
        }
        last
    }

    /// Fallible polling wait; see
    /// [`MeshKvsClient::try_wait_key_poll_counted`] for the poll count
    /// on the error path.
    pub async fn try_wait_key_poll(
        &self,
        key: &str,
    ) -> Result<(VersionedValue, u64), TransportError> {
        match self.try_wait_key_poll_counted(key).await {
            (Ok(v), polls) => Ok((v, polls)),
            (Err(e), _) => Err(e),
        }
    }

    /// Fallible polling wait reporting the poll count on both exits.
    /// Each poll is a [`MeshKvsClient::try_lookup`], so failover happens
    /// inside the probe; an error means every replica of the key failed.
    pub async fn try_wait_key_poll_counted(
        &self,
        key: &str,
    ) -> (Result<VersionedValue, TransportError>, u64) {
        let mut polls = 0;
        loop {
            polls += 1;
            match self.try_lookup(key).await {
                Ok(Some(v)) => return (Ok(v), polls),
                Ok(None) => {}
                Err(e) => return (Err(e), polls),
            }
            let c = self.client(0);
            c.ctx.sleep(c.spec.poll_interval).await;
        }
    }

    /// Fallible unlink with preference-list failover.
    pub async fn try_unlink(&self, key: &str) -> Result<(), TransportError> {
        let mut last = self.all_down_error(key);
        for s in self.topo.preference(key) {
            if !self.live(s) {
                continue;
            }
            match self.client(s).try_unlink(key).await {
                Ok(()) => return Ok(()),
                Err(e) => last = Err(e),
            }
        }
        last
    }

    fn all_down_error<T>(&self, key: &str) -> Result<T, TransportError> {
        Err(TransportError::Unreachable {
            node: self.topo.node(self.topo.owner(key)),
        })
    }
}

// ---------------------------------------------------------------------------
// Unified handle
// ---------------------------------------------------------------------------

/// Either a legacy single-broker client or a mesh client, with one
/// method surface — so `dyad`, `staging` and the workflow bodies take
/// `impl Into<KvsHandle>` and never care which plane they run on.
/// (The size skew between variants is fine: handles are created per
/// process at setup, never stored in bulk.)
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum KvsHandle {
    /// The legacy standalone-broker client.
    Single(KvsClient),
    /// A sharded/replicated mesh client.
    Mesh(MeshKvsClient),
}

impl From<KvsClient> for KvsHandle {
    fn from(c: KvsClient) -> KvsHandle {
        KvsHandle::Single(c)
    }
}

impl From<MeshKvsClient> for KvsHandle {
    fn from(c: MeshKvsClient) -> KvsHandle {
        KvsHandle::Mesh(c)
    }
}

impl KvsHandle {
    /// The owning shard of `key` under mesh routing; `None` on a
    /// single broker. Used to attribute per-shard poll counts.
    pub fn mesh_shard_of(&self, key: &str) -> Option<u32> {
        match self {
            KvsHandle::Single(_) => None,
            KvsHandle::Mesh(m) => Some(m.shard_of(key)),
        }
    }

    /// Commit `value` under `key`; returns the broker's new version.
    pub async fn commit(&self, key: &str, value: Bytes) -> u64 {
        match self {
            KvsHandle::Single(c) => c.commit(key, value).await,
            KvsHandle::Mesh(m) => m.commit(key, value).await,
        }
    }

    /// Read `key` (full round trip).
    pub async fn lookup(&self, key: &str) -> Option<VersionedValue> {
        match self {
            KvsHandle::Single(c) => c.lookup(key).await,
            KvsHandle::Mesh(m) => m.lookup(key).await,
        }
    }

    /// Cache-only read (no simulated cost).
    pub fn lookup_cached(&self, key: &str) -> Option<VersionedValue> {
        match self {
            KvsHandle::Single(c) => c.lookup_cached(key),
            KvsHandle::Mesh(m) => m.lookup_cached(key),
        }
    }

    /// Server-side blocking wait.
    pub async fn wait_key(&self, key: &str) -> VersionedValue {
        match self {
            KvsHandle::Single(c) => c.wait_key(key).await,
            KvsHandle::Mesh(m) => m.wait_key(key).await,
        }
    }

    /// Client-side polling wait; returns `(value, polls)`.
    pub async fn wait_key_poll(&self, key: &str) -> (VersionedValue, u64) {
        match self {
            KvsHandle::Single(c) => c.wait_key_poll(key).await,
            KvsHandle::Mesh(m) => m.wait_key_poll(key).await,
        }
    }

    /// Remove `key`.
    pub async fn unlink(&self, key: &str) {
        match self {
            KvsHandle::Single(c) => c.unlink(key).await,
            KvsHandle::Mesh(m) => m.unlink(key).await,
        }
    }

    /// Fallible commit (retry + mesh failover).
    pub async fn try_commit(&self, key: &str, value: Bytes) -> Result<u64, TransportError> {
        match self {
            KvsHandle::Single(c) => c.try_commit(key, value).await,
            KvsHandle::Mesh(m) => m.try_commit(key, value).await,
        }
    }

    /// Fallible lookup (retry + mesh failover).
    pub async fn try_lookup(&self, key: &str) -> Result<Option<VersionedValue>, TransportError> {
        match self {
            KvsHandle::Single(c) => c.try_lookup(key).await,
            KvsHandle::Mesh(m) => m.try_lookup(key).await,
        }
    }

    /// Fallible server-side wait (retry + mesh failover).
    pub async fn try_wait_key(&self, key: &str) -> Result<VersionedValue, TransportError> {
        match self {
            KvsHandle::Single(c) => c.try_wait_key(key).await,
            KvsHandle::Mesh(m) => m.try_wait_key(key).await,
        }
    }

    /// Fallible polling wait (retry + mesh failover).
    pub async fn try_wait_key_poll(
        &self,
        key: &str,
    ) -> Result<(VersionedValue, u64), TransportError> {
        match self {
            KvsHandle::Single(c) => c.try_wait_key_poll(key).await,
            KvsHandle::Mesh(m) => m.try_wait_key_poll(key).await,
        }
    }

    /// Fallible polling wait reporting the poll count on both exits.
    pub async fn try_wait_key_poll_counted(
        &self,
        key: &str,
    ) -> (Result<VersionedValue, TransportError>, u64) {
        match self {
            KvsHandle::Single(c) => c.try_wait_key_poll_counted(key).await,
            KvsHandle::Mesh(m) => m.try_wait_key_poll_counted(key).await,
        }
    }

    /// Fallible unlink (retry + mesh failover).
    pub async fn try_unlink(&self, key: &str) -> Result<(), TransportError> {
        match self {
            KvsHandle::Single(c) => c.try_unlink(key).await,
            KvsHandle::Mesh(m) => m.try_unlink(key).await,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use faults::{FaultBoard, FaultEvent, FaultKind, FaultPlan};
    use simcore::{Sim, SimDuration};
    use transport::TransportSpec;

    fn mesh_rig(sim: &Sim, nodes: usize, shards: u32, replication: u32) -> (Transport, KvsMesh) {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(nodes));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let shard_nodes: Vec<NodeId> = (0..shards).map(|s| NodeId(s % nodes as u32)).collect();
        let mesh = KvsMesh::start(&ctx, &tp, &shard_nodes, KvsSpec::default(), replication);
        (tp, mesh)
    }

    #[test]
    fn routing_covers_all_shards_and_matches_preference_head() {
        let keys: Vec<String> = (0..256).map(|i| format!("frames/p{i:04}/f0")).collect();
        let mut seen = vec![false; 4];
        for k in &keys {
            let owner = shard_for(k, 4);
            seen[owner as usize] = true;
            assert_eq!(owner, preference_list(k, 4, 2)[0]);
        }
        assert!(seen.iter().all(|&s| s), "owners {seen:?} miss a shard");
    }

    #[test]
    fn preference_list_is_distinct_and_sized() {
        for r in 1..=4u32 {
            let pref = preference_list("a/key", 4, r);
            assert_eq!(pref.len(), r as usize);
            let mut dedup = pref.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), pref.len());
        }
        // r beyond the shard count clamps.
        assert_eq!(preference_list("k", 3, 9).len(), 3);
    }

    #[test]
    fn causal_buffer_applies_in_order_and_drains_children() {
        let mut buf: CausalBuffer<&str> = CausalBuffer::new();
        // Writes 1..=3 from origin 0 arrive 3, 1, 2.
        let d = |seq| Delta {
            key: "k",
            origin: 0,
            seq,
            deps: vec![(0, seq - 1)],
            value: Some(Bytes::from_static(b"v")),
        };
        assert!(buf.offer(d(3)).is_empty());
        assert_eq!(buf.pending_len(), 1);
        let first = buf.offer(d(1));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].seq, 1);
        // Offering 2 applies 2 and drains the buffered 3.
        let rest = buf.offer(d(2));
        assert_eq!(rest.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(buf.pending_len(), 0);
        assert_eq!(buf.buffered_total(), 1);
        // A stale duplicate is dropped.
        assert!(buf.offer(d(2)).is_empty());
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn causal_buffer_holds_cross_origin_dependencies() {
        let mut buf: CausalBuffer<&str> = CausalBuffer::new();
        // Origin 1's write causally follows origin 0's first write.
        let child = Delta {
            key: "k",
            origin: 1,
            seq: 1,
            deps: vec![(0, 1)],
            value: Some(Bytes::from_static(b"b")),
        };
        assert!(buf.offer(child.clone()).is_empty());
        let parent = Delta {
            key: "k",
            origin: 0,
            seq: 1,
            deps: vec![],
            value: Some(Bytes::from_static(b"a")),
        };
        let applied = buf.offer(parent);
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].origin, 0);
        assert_eq!(applied[1].origin, 1);
    }

    #[test]
    fn mesh_commit_replicates_to_preference_list() {
        let sim = Sim::new(7);
        let (tp, mesh) = mesh_rig(&sim, 4, 4, 2);
        let c = mesh.client(&sim.ctx(), &tp, NodeId(3));
        let keys: Vec<String> = (0..32).map(|i| format!("k{i}")).collect();
        let n = keys.len() as u64;
        let h = sim.spawn(async move {
            for k in &keys {
                c.commit(k, Bytes::from_static(b"v")).await;
            }
        });
        sim.run();
        h.try_take().unwrap();
        let total = mesh.stats();
        assert_eq!(total.commits, n);
        // R=2: every commit ships exactly one delta, each applied.
        assert_eq!(total.deltas_sent, n);
        assert_eq!(total.deltas_applied, n);
    }

    #[test]
    fn mesh_waiter_on_replica_is_woken_by_delta() {
        let sim = Sim::new(7);
        let (tp, mesh) = mesh_rig(&sim, 4, 4, 2);
        // Find a key and its replica (non-owner preference member).
        let key = (0..64)
            .map(|i| format!("w{i}"))
            .find(|k| preference_list(k, 4, 2).len() == 2)
            .unwrap();
        let replica = preference_list(&key, 4, 2)[1];
        let ctx = sim.ctx();
        // Park a wait directly on the replica shard.
        let waiter = KvsClient::new_with_am(
            &ctx,
            &tp,
            NodeId(3),
            mesh.topology().node(replica),
            shard_am(replica),
            KvsSpec::default(),
        );
        let wkey = key.clone();
        let h = sim.spawn(async move { waiter.wait_key(&wkey).await });
        let producer = mesh.client(&ctx, &tp, NodeId(2));
        let ctx2 = sim.ctx();
        sim.spawn(async move {
            ctx2.sleep(SimDuration::from_millis(5)).await;
            producer.commit(&key, Bytes::from_static(b"meta")).await;
        });
        sim.run();
        let v = h.try_take().unwrap();
        assert_eq!(v.value, Bytes::from_static(b"meta"));
    }

    #[test]
    fn shard_crash_fails_over_committed_keys_to_replicas() {
        let sim = Sim::new(11);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(4));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let board = FaultBoard::new(&ctx, 4, 0);
        tp.set_faults(board.clone());
        let shard_nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mesh = KvsMesh::start(&ctx, &tp, &shard_nodes, KvsSpec::default(), 2);
        let c = mesh.client(&ctx, &tp, NodeId(0));
        // Keys owned by shard 1 (the one we kill).
        let keys: Vec<String> = (0..128)
            .map(|i| format!("x{i}"))
            .filter(|k| shard_for(k, 4) == 1)
            .take(4)
            .collect();
        assert!(!keys.is_empty());
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_millis(10),
            kind: FaultKind::KvsShardCrash { shard: 1 },
        }]));
        let ctx2 = sim.ctx();
        let h = sim.spawn(async move {
            // Commit before the crash (replicated to the peer).
            for k in &keys {
                c.try_commit(k, Bytes::from_static(b"v")).await.unwrap();
            }
            ctx2.sleep(SimDuration::from_millis(20)).await;
            // The owner is dead; reads and writes fail over.
            let mut out = Vec::new();
            for k in &keys {
                out.push(c.try_lookup(k).await.unwrap().is_some());
                c.try_commit(&format!("{k}/again"), Bytes::from_static(b"w"))
                    .await
                    .unwrap();
            }
            out
        });
        assert!(sim.run().is_clean());
        let found = h.try_take().unwrap();
        assert!(found.iter().all(|&f| f), "replica lost a committed key");
        assert!(mesh.shard(1).is_down());
    }

    #[test]
    fn unreplicated_mesh_fails_typed_when_owner_dies() {
        let sim = Sim::new(11);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(4));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let board = FaultBoard::new(&ctx, 4, 0);
        tp.set_faults(board.clone());
        let shard_nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mesh = KvsMesh::start(&ctx, &tp, &shard_nodes, KvsSpec::default(), 1);
        let c = mesh.client(&ctx, &tp, NodeId(0));
        let key = (0..64)
            .map(|i| format!("y{i}"))
            .find(|k| shard_for(k, 4) == 2)
            .unwrap();
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_millis(1),
            kind: FaultKind::KvsShardCrash { shard: 2 },
        }]));
        let ctx2 = sim.ctx();
        let h = sim.spawn(async move {
            ctx2.sleep(SimDuration::from_millis(5)).await;
            c.try_commit(&key, Bytes::from_static(b"v")).await
        });
        assert!(sim.run().is_clean());
        assert!(matches!(
            h.try_take().unwrap(),
            Err(TransportError::Unreachable { .. })
        ));
    }

    #[test]
    fn parked_wait_fails_over_when_its_shard_dies_mid_wait() {
        let sim = Sim::new(3);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(4));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let board = FaultBoard::new(&ctx, 4, 0);
        tp.set_faults(board.clone());
        let shard_nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mesh = KvsMesh::start(&ctx, &tp, &shard_nodes, KvsSpec::default(), 2);
        let key = (0..64)
            .map(|i| format!("z{i}"))
            .find(|k| shard_for(k, 4) == 0)
            .unwrap();
        // Consumer parks on the owner (shard 0); the owner dies at 5 ms;
        // the producer commits at 10 ms (routed to the surviving
        // replica). The flushed wait must fail over and still see it.
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_millis(5),
            kind: FaultKind::KvsShardCrash { shard: 0 },
        }]));
        let consumer = mesh.client(&ctx, &tp, NodeId(1));
        let ckey = key.clone();
        let h = sim.spawn(async move { consumer.try_wait_key(&ckey).await });
        let producer = mesh.client(&ctx, &tp, NodeId(2));
        let ctx2 = sim.ctx();
        sim.spawn(async move {
            ctx2.sleep(SimDuration::from_millis(10)).await;
            producer
                .try_commit(&key, Bytes::from_static(b"late"))
                .await
                .unwrap();
        });
        assert!(sim.run().is_clean());
        let v = h.try_take().unwrap().unwrap();
        assert_eq!(v.value, Bytes::from_static(b"late"));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            // Rendezvous stability: growing the mesh by one shard either
            // keeps a key's owner or moves it to the new shard — never
            // reshuffles between incumbents.
            #[test]
            fn routing_is_stable_under_shard_growth(
                key in "[a-z/._0-9]{1,48}",
                shards in 1u32..12,
            ) {
                let before = shard_for(&key, shards);
                let after = shard_for(&key, shards + 1);
                prop_assert!(
                    after == before || after == shards,
                    "key moved {before} -> {after} when adding shard {shards}"
                );
            }

            // Same stability for the whole preference list: a replica
            // set member is only displaced by the new shard, never by an
            // incumbent.
            #[test]
            fn preference_list_is_stable_under_shard_growth(
                key in "[a-z/._0-9]{1,48}",
                shards in 2u32..10,
                r in 1u32..4,
            ) {
                let r = r.min(shards);
                let before = preference_list(&key, shards, r);
                let after = preference_list(&key, shards + 1, r);
                // Every member of the new list is an incumbent replica or
                // the newly-added shard; incumbents never displace each
                // other.
                prop_assert!(
                    after.iter().all(|s| *s == shards || before.contains(s)),
                    "incumbent displaced an incumbent: {:?} -> {:?}",
                    before,
                    after
                );
                // Relative order of surviving incumbents is preserved.
                let kept: Vec<u32> =
                    after.iter().copied().filter(|s| *s != shards).collect();
                let expect: Vec<u32> =
                    before.iter().copied().filter(|s| kept.contains(s)).collect();
                prop_assert_eq!(kept, expect);
            }

            // Causal delivery: any arrival permutation of a valid causal
            // history applies every delta, parents before children.
            #[test]
            fn causal_buffer_delivers_any_permutation_causally(
                n_origins in 1u32..4,
                writes_per_origin in 1u64..6,
                shuffle_seed in any::<u64>(),
            ) {
                // Build a history where origin o's write w depends on
                // every other origin having applied min(w, their count)
                // writes — a dense causal web.
                let mut history: Vec<Delta<&str>> = Vec::new();
                for o in 0..n_origins {
                    for w in 1..=writes_per_origin {
                        let deps: Vec<(u32, u64)> = (0..n_origins)
                            .filter(|&p| p != o)
                            .map(|p| (p, (w.saturating_sub(1)).min(writes_per_origin)))
                            .chain(std::iter::once((o, w - 1)))
                            .collect();
                        history.push(Delta {
                            key: "k",
                            origin: o,
                            seq: w,
                            deps,
                            value: Some(Bytes::from_static(b"v")),
                        });
                    }
                }
                // Deterministic Fisher-Yates shuffle.
                let mut s = shuffle_seed | 1;
                for i in (1..history.len()).rev() {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    history.swap(i, (s as usize) % (i + 1));
                }
                let mut buf: CausalBuffer<&str> = CausalBuffer::new();
                let mut applied: Vec<(u32, u64)> = Vec::new();
                let mut high: Vec<u64> = vec![0; n_origins as usize];
                for d in history {
                    for a in buf.offer(d) {
                        // Per-origin order: exactly the next seq.
                        prop_assert_eq!(high[a.origin as usize] + 1, a.seq);
                        high[a.origin as usize] = a.seq;
                        // Cross-origin causality: every dep applied.
                        for (p, need) in &a.deps {
                            if *p != a.origin {
                                prop_assert!(
                                    high[*p as usize] >= *need,
                                    "dep ({},{}) unapplied before ({},{})",
                                    p, need, a.origin, a.seq
                                );
                            }
                        }
                        applied.push((a.origin, a.seq));
                    }
                }
                // Everything delivered, nothing pending.
                prop_assert_eq!(
                    applied.len() as u64,
                    u64::from(n_origins) * writes_per_origin
                );
                prop_assert_eq!(buf.pending_len(), 0);
            }
        }
    }
}
