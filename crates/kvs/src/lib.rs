//! # kvs — a Flux-KVS-like distributed key-value store
//!
//! DYAD publishes frame metadata through the Flux key-value store and
//! consumers block on key availability (`flux_kvs_wait`-style). This crate
//! reimplements the parts DYAD needs:
//!
//! * a **broker** ([`KvsServer`]) hosted on one cluster node, with a
//!   versioned store (every commit bumps a global sequence number), a
//!   bounded pool of service threads, and **server-side watches** (a
//!   `WaitKey` RPC parks inside the broker until the key is committed);
//! * **clients** ([`KvsClient`]) on every node, issuing RPCs over the
//!   UCX-like [`transport`] layer, with an optional read cache and a
//!   client-side polling fallback (used by the synchronization ablation).
//!
//! All costs are explicit: each operation pays the fabric round trip plus
//! broker service time on a FIFO server pool.

#![warn(missing_docs)]

mod codec;
pub mod mesh;

pub use codec::{Request, Response};
pub use mesh::{
    preference_list, shard_for, CausalBuffer, Delta, KvsHandle, KvsMesh, MeshKvsClient,
    MeshTopology,
};

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use cluster::NodeId;
use faults::RetryPolicy;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simcore::intern::{intern, FxHashMap, Symbol};
use simcore::resource::FifoResource;
use simcore::sync::Notify;
use simcore::{Ctx, SimDuration};
use transport::{AmId, Endpoint, LocalBoxFuture, Transport, TransportError};

/// The AM id the broker listens on.
pub const KVS_AM: AmId = AmId(0x4B56);

/// Broker tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct KvsSpec {
    /// Service time per operation on the broker.
    pub service_time: SimDuration,
    /// Parallel service threads in the broker.
    pub server_threads: u64,
    /// Client polling interval for [`KvsClient::wait_key_poll`].
    pub poll_interval: SimDuration,
}

impl Default for KvsSpec {
    /// Flux-broker-like costs: ~20 µs per op, 4 service threads, 1 ms
    /// polling interval.
    fn default() -> Self {
        KvsSpec {
            service_time: SimDuration::from_micros(20),
            server_threads: 4,
            poll_interval: SimDuration::from_millis(1),
        }
    }
}

/// A value with the global version at which it was committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// Global KVS version of the commit.
    pub version: u64,
    /// Stored bytes.
    pub value: Bytes,
}

/// Counters exposed by the broker for tests and the Thicket analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvsStats {
    /// Commits applied.
    pub commits: u64,
    /// Lookup requests served (including misses).
    pub lookups: u64,
    /// WaitKey requests served.
    pub waits: u64,
    /// WaitKey requests that had to park (key absent on arrival).
    pub waits_parked: u64,
    /// Unlink requests served.
    pub unlinks: u64,
    /// Replication deltas shipped to peer shards (mesh mode).
    pub deltas_sent: u64,
    /// Replication deltas applied to this shard's store (mesh mode).
    pub deltas_applied: u64,
    /// Deltas that arrived out of causal order and had to buffer until
    /// their parents applied (mesh mode).
    pub deltas_buffered: u64,
    /// Peak number of requests simultaneously queued or in service on
    /// this broker (the metadata-plane congestion signal).
    pub peak_queue: u64,
}

pub(crate) struct Store {
    // Keys are interned once per request; per-frame publishes and waits
    // then hash a 4-byte symbol instead of re-hashing the full path.
    pub(crate) map: FxHashMap<Symbol, VersionedValue>,
    pub(crate) version: u64,
    pub(crate) watches: FxHashMap<Symbol, Notify>,
    pub(crate) stats: KvsStats,
    /// Set once by a `KvsShardCrash` fault: the shard answers every
    /// request (including parked waits, which are flushed) with
    /// [`Response::ShardDown`] from then on.
    pub(crate) down: bool,
    /// Requests queued or in service right now (feeds `peak_queue`).
    in_flight: u64,
    /// Per-key version vectors + out-of-order delta buffer (mesh mode;
    /// idle for a legacy single broker).
    pub(crate) repl: mesh::CausalBuffer<Symbol>,
}

/// The broker: owns the store and services RPCs on its node.
pub struct KvsServer {
    node: NodeId,
    shard: u32,
    store: Rc<RefCell<Store>>,
}

impl KvsServer {
    /// Start a broker on `node`, registering its AM handler.
    ///
    /// The standalone broker is shard 0 of a one-shard mesh: it listens
    /// on [`KVS_AM`], never replicates, and dies to a
    /// `KvsShardCrash { shard: 0 }` fault.
    pub fn start(ctx: &Ctx, tp: &Transport, node: NodeId, spec: KvsSpec) -> Rc<KvsServer> {
        KvsServer::start_shard(ctx, tp, node, spec, 0, None)
    }

    /// Start one shard of a mesh (or, with `topo: None`, the legacy
    /// standalone broker as shard `shard`). The shard listens on
    /// `KVS_AM + shard` and, when a topology is given, synchronously
    /// replicates every commit/unlink to the key's live replica set.
    pub(crate) fn start_shard(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        spec: KvsSpec,
        shard: u32,
        topo: Option<Rc<mesh::MeshTopology>>,
    ) -> Rc<KvsServer> {
        let store = Rc::new(RefCell::new(Store {
            map: FxHashMap::default(),
            version: 0,
            watches: FxHashMap::default(),
            stats: KvsStats::default(),
            down: false,
            in_flight: 0,
            repl: mesh::CausalBuffer::new(),
        }));
        let service = FifoResource::new(ctx, spec.server_threads);
        let server = Rc::new(KvsServer {
            node,
            shard,
            store: store.clone(),
        });
        // A permanent shard crash: mark the store down and flush every
        // parked watch so in-flight waits observe `ShardDown` instead of
        // parking forever on a dead broker.
        if let Some(board) = tp.faults() {
            let hook_store = store.clone();
            board.on_kvs_shard_crash(move |crashed| {
                if crashed == shard {
                    let watches = {
                        let mut st = hook_store.borrow_mut();
                        st.down = true;
                        std::mem::take(&mut st.watches)
                    };
                    for notify in watches.values() {
                        notify.notify_all();
                    }
                }
            });
        }
        let handler_store = store;
        // Weak: a strong clone would cycle through the handler table and
        // leak the store (see `Transport::downgrade`).
        let handler_tp = tp.downgrade();
        let handler_ctx = ctx.clone();
        let handler_topo = topo;
        tp.register_am(
            node,
            mesh::shard_am(shard),
            Rc::new(move |raw: Bytes| {
                let store = handler_store.clone();
                let service = service.clone();
                let tp = handler_tp.upgrade();
                let ctx = handler_ctx.clone();
                let topo = handler_topo.clone();
                Box::pin(async move {
                    {
                        let mut st = store.borrow_mut();
                        st.in_flight += 1;
                        st.stats.peak_queue = st.stats.peak_queue.max(st.in_flight);
                    }
                    // Queue for a broker thread.
                    service.request(spec.service_time).await;
                    // Injected broker slowness (fault window): every op
                    // pays the extra delay while the window is open. With
                    // no board or no window this adds nothing.
                    if let Some(board) = tp.faults() {
                        if let Some(d) = board.kvs_delay_for(shard) {
                            ctx.sleep(d).await;
                        }
                    }
                    let req = Request::decode(raw);
                    let resp = if store.borrow().down {
                        Response::ShardDown
                    } else if let Some(topo) = &topo {
                        mesh::serve(&store, shard, topo, &tp, req).await
                    } else {
                        handle(store.clone(), req).await
                    };
                    store.borrow_mut().in_flight -= 1;
                    resp.encode()
                }) as LocalBoxFuture<Bytes>
            }),
        );
        server
    }

    /// The node the broker runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The shard id this broker serves (0 for a standalone broker).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// True once a `KvsShardCrash` fault has killed this shard.
    pub fn is_down(&self) -> bool {
        self.store.borrow().down
    }

    /// Operation counters.
    pub fn stats(&self) -> KvsStats {
        self.store.borrow().stats
    }

    /// Current global version.
    pub fn version(&self) -> u64 {
        self.store.borrow().version
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.store.borrow().map.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub(crate) async fn handle(store: Rc<RefCell<Store>>, req: Request) -> Response {
    match req {
        Request::Commit { key, value } => {
            let mut st = store.borrow_mut();
            st.version += 1;
            let version = st.version;
            st.map.insert(key, VersionedValue { version, value });
            st.stats.commits += 1;
            if let Some(n) = st.watches.remove(&key) {
                n.notify_all();
            }
            Response::Committed { version }
        }
        Request::Lookup { key } => {
            let mut st = store.borrow_mut();
            st.stats.lookups += 1;
            let found = st.map.get(&key).cloned();
            match found {
                Some(v) => Response::Value {
                    version: v.version,
                    value: v.value,
                },
                None => Response::NotFound,
            }
        }
        Request::WaitKey { key } => {
            let mut first = true;
            loop {
                let notify = {
                    let mut st = store.borrow_mut();
                    // The shard died while this wait was parked; its
                    // watch was flushed so it can answer typed instead
                    // of parking forever.
                    if st.down {
                        return Response::ShardDown;
                    }
                    if let Some(v) = st.map.get(&key).cloned() {
                        st.stats.waits += 1;
                        return Response::Value {
                            version: v.version,
                            value: v.value,
                        };
                    }
                    if first {
                        st.stats.waits_parked += 1;
                        first = false;
                    }
                    st.watches.entry(key).or_default().clone()
                };
                notify.wait().await;
            }
        }
        Request::Unlink { key } => {
            let mut st = store.borrow_mut();
            st.map.remove(&key);
            st.stats.unlinks += 1;
            Response::Unlinked
        }
        Request::Delta { .. } => panic!("replication delta sent to a standalone broker"),
    }
}

/// A client handle bound to one node.
#[derive(Clone)]
pub struct KvsClient {
    ctx: Ctx,
    ep: Endpoint,
    broker: NodeId,
    am: AmId,
    spec: KvsSpec,
    cache: Rc<RefCell<FxHashMap<Symbol, VersionedValue>>>,
    retry: RetryPolicy,
    /// Retry policy for server-side waits: same backoff, but no
    /// per-attempt timeout (the RPC legitimately parks in the broker
    /// until the key is committed).
    wait_retry: RetryPolicy,
    rng: Rc<RefCell<StdRng>>,
}

impl KvsClient {
    /// Create a client on `node` talking to the broker on `broker`.
    pub fn new(ctx: &Ctx, tp: &Transport, node: NodeId, broker: NodeId, spec: KvsSpec) -> Self {
        KvsClient::new_with_am(ctx, tp, node, broker, KVS_AM, spec)
    }

    /// Create a client addressing a specific broker AM (a mesh shard
    /// listens on `KVS_AM + shard`). The RNG stream is the same for
    /// every shard client of a node: jitter draws are per-instance, and
    /// keeping shard 0 on the legacy stream is what lets a one-shard
    /// mesh reproduce the single-broker schedule exactly.
    pub(crate) fn new_with_am(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        broker: NodeId,
        am: AmId,
        spec: KvsSpec,
    ) -> Self {
        let retry = RetryPolicy::transport_default();
        let wait_retry = RetryPolicy {
            attempt_timeout: SimDuration::from_secs(86_400),
            ..retry
        };
        KvsClient {
            ctx: ctx.clone(),
            ep: tp.endpoint(node),
            broker,
            am,
            spec,
            cache: Rc::default(),
            retry,
            wait_retry,
            rng: Rc::new(RefCell::new(ctx.rng(0x4B56_0000u64 | u64::from(node.0)))),
        }
    }

    /// The broker node this client talks to.
    pub fn broker(&self) -> NodeId {
        self.broker
    }

    /// Fork a per-call RNG from the client's stream so no `RefCell`
    /// borrow is held across an await (clients are shared between tasks).
    fn fork_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.rng.borrow_mut().random())
    }

    /// Commit `value` under `key`; returns the new global version.
    pub async fn commit(&self, key: &str, value: Bytes) -> u64 {
        let key = intern(key);
        let req = Request::Commit {
            key,
            value: value.clone(),
        };
        let resp = Response::decode(self.ep.rpc(self.broker, self.am, req.encode()).await);
        match resp {
            Response::Committed { version } => {
                self.cache
                    .borrow_mut()
                    .insert(key, VersionedValue { version, value });
                version
            }
            other => panic!("unexpected commit response {other:?}"),
        }
    }

    /// Read `key` from the broker (always a round trip; updates the
    /// cache).
    pub async fn lookup(&self, key: &str) -> Option<VersionedValue> {
        let key = intern(key);
        let req = Request::Lookup { key };
        let resp = Response::decode(self.ep.rpc(self.broker, self.am, req.encode()).await);
        match resp {
            Response::Value { version, value } => {
                let v = VersionedValue { version, value };
                self.cache.borrow_mut().insert(key, v.clone());
                Some(v)
            }
            Response::NotFound => None,
            other => panic!("unexpected lookup response {other:?}"),
        }
    }

    /// Read `key` from the local cache only (no simulated cost). Used on
    /// DYAD's warm synchronization path.
    pub fn lookup_cached(&self, key: &str) -> Option<VersionedValue> {
        self.cache.borrow().get(&intern(key)).cloned()
    }

    /// Block until `key` exists, using a **server-side watch**: one RPC
    /// that parks in the broker. This is DYAD's cold-path synchronization.
    pub async fn wait_key(&self, key: &str) -> VersionedValue {
        let key = intern(key);
        let req = Request::WaitKey { key };
        let resp = Response::decode(self.ep.rpc(self.broker, self.am, req.encode()).await);
        match resp {
            Response::Value { version, value } => {
                let v = VersionedValue { version, value };
                self.cache.borrow_mut().insert(key, v.clone());
                v
            }
            other => panic!("unexpected wait response {other:?}"),
        }
    }

    /// Block until `key` exists by **client-side polling** every
    /// [`KvsSpec::poll_interval`]. Each probe is a full lookup RPC. Used
    /// by the synchronization-protocol ablation; returns the value and the
    /// number of polls issued.
    pub async fn wait_key_poll(&self, key: &str) -> (VersionedValue, u64) {
        let mut polls = 0;
        loop {
            polls += 1;
            if let Some(v) = self.lookup(key).await {
                return (v, polls);
            }
            self.ctx.sleep(self.spec.poll_interval).await;
        }
    }

    /// Remove `key` on the broker and locally.
    pub async fn unlink(&self, key: &str) {
        let key = intern(key);
        let req = Request::Unlink { key };
        let _ = self.ep.rpc(self.broker, self.am, req.encode()).await;
        self.cache.borrow_mut().remove(&key);
    }

    /// Fallible [`KvsClient::commit`]: retries through broker outages per
    /// the client's retry policy; errors only once the budget is
    /// exhausted. Commits are idempotent (last-writer-wins on the same
    /// key), so a retry after a lost reply is safe.
    pub async fn try_commit(&self, key: &str, value: Bytes) -> Result<u64, TransportError> {
        let key = intern(key);
        let req = Request::Commit {
            key,
            value: value.clone(),
        };
        let mut rng = self.fork_rng();
        let raw = self
            .ep
            .rpc_retrying(self.broker, self.am, req.encode(), &self.retry, &mut rng)
            .await?;
        match Response::decode(raw) {
            Response::Committed { version } => {
                self.cache
                    .borrow_mut()
                    .insert(key, VersionedValue { version, value });
                Ok(version)
            }
            Response::ShardDown => Err(TransportError::Unreachable { node: self.broker }),
            other => panic!("unexpected commit response {other:?}"),
        }
    }

    /// Fallible [`KvsClient::lookup`] with retry.
    pub async fn try_lookup(&self, key: &str) -> Result<Option<VersionedValue>, TransportError> {
        let key = intern(key);
        let req = Request::Lookup { key };
        let mut rng = self.fork_rng();
        let raw = self
            .ep
            .rpc_retrying(self.broker, self.am, req.encode(), &self.retry, &mut rng)
            .await?;
        match Response::decode(raw) {
            Response::Value { version, value } => {
                let v = VersionedValue { version, value };
                self.cache.borrow_mut().insert(key, v.clone());
                Ok(Some(v))
            }
            Response::NotFound => Ok(None),
            Response::ShardDown => Err(TransportError::Unreachable { node: self.broker }),
            other => panic!("unexpected lookup response {other:?}"),
        }
    }

    /// Fallible [`KvsClient::wait_key`] with retry. Uses the wait policy
    /// (no per-attempt timeout): the RPC parks server-side until the key
    /// is committed, so only unreachability triggers a retry.
    pub async fn try_wait_key(&self, key: &str) -> Result<VersionedValue, TransportError> {
        let key = intern(key);
        let req = Request::WaitKey { key };
        let mut rng = self.fork_rng();
        let raw = self
            .ep
            .rpc_retrying(
                self.broker,
                self.am,
                req.encode(),
                &self.wait_retry,
                &mut rng,
            )
            .await?;
        match Response::decode(raw) {
            Response::Value { version, value } => {
                let v = VersionedValue { version, value };
                self.cache.borrow_mut().insert(key, v.clone());
                Ok(v)
            }
            Response::ShardDown => Err(TransportError::Unreachable { node: self.broker }),
            other => panic!("unexpected wait response {other:?}"),
        }
    }

    /// Fallible [`KvsClient::wait_key_poll`] with retry: each probe is a
    /// fallible lookup, so broker outages shorter than the retry budget
    /// are absorbed inside the poll loop.
    pub async fn try_wait_key_poll(
        &self,
        key: &str,
    ) -> Result<(VersionedValue, u64), TransportError> {
        match self.try_wait_key_poll_counted(key).await {
            (Ok(v), polls) => Ok((v, polls)),
            (Err(e), _) => Err(e),
        }
    }

    /// Like [`KvsClient::try_wait_key_poll`], but the poll count is
    /// reported on *both* exits — callers can account for the RPCs a
    /// failed wait already issued instead of dropping them on the error
    /// path.
    pub async fn try_wait_key_poll_counted(
        &self,
        key: &str,
    ) -> (Result<VersionedValue, TransportError>, u64) {
        let mut polls = 0;
        loop {
            polls += 1;
            match self.try_lookup(key).await {
                Ok(Some(v)) => return (Ok(v), polls),
                Ok(None) => {}
                Err(e) => return (Err(e), polls),
            }
            self.ctx.sleep(self.spec.poll_interval).await;
        }
    }

    /// Fallible [`KvsClient::unlink`] with retry.
    pub async fn try_unlink(&self, key: &str) -> Result<(), TransportError> {
        let key = intern(key);
        let req = Request::Unlink { key };
        let mut rng = self.fork_rng();
        let raw = self
            .ep
            .rpc_retrying(self.broker, self.am, req.encode(), &self.retry, &mut rng)
            .await?;
        if let Response::ShardDown = Response::decode(raw) {
            return Err(TransportError::Unreachable { node: self.broker });
        }
        self.cache.borrow_mut().remove(&key);
        Ok(())
    }
}

/// A prefix-scoped view of the store, mirroring Flux KVS namespaces:
/// every operation on the namespace is rewritten to `prefix/key` on the
/// underlying client. DYAD uses one namespace per managed directory.
#[derive(Clone)]
pub struct Namespace {
    client: KvsClient,
    prefix: String,
}

impl Namespace {
    /// Scope `client` to `prefix`.
    pub fn new(client: KvsClient, prefix: &str) -> Self {
        Namespace {
            client,
            prefix: prefix.trim_end_matches('/').to_string(),
        }
    }

    /// The full key for a namespace-relative key.
    pub fn full_key(&self, key: &str) -> String {
        format!("{}/{}", self.prefix, key.trim_start_matches('/'))
    }

    /// Commit within the namespace.
    pub async fn commit(&self, key: &str, value: Bytes) -> u64 {
        self.client.commit(&self.full_key(key), value).await
    }

    /// Lookup within the namespace.
    pub async fn lookup(&self, key: &str) -> Option<VersionedValue> {
        self.client.lookup(&self.full_key(key)).await
    }

    /// Blocking wait within the namespace.
    pub async fn wait_key(&self, key: &str) -> VersionedValue {
        self.client.wait_key(&self.full_key(key)).await
    }

    /// Unlink within the namespace.
    pub async fn unlink(&self, key: &str) {
        self.client.unlink(&self.full_key(key)).await
    }

    /// A nested namespace.
    pub fn namespace(&self, prefix: &str) -> Namespace {
        Namespace::new(self.client.clone(), &self.full_key(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use simcore::Sim;
    use transport::TransportSpec;

    struct Rig {
        tp: Transport,
        server: Rc<KvsServer>,
    }

    fn setup(sim: &Sim, nodes: usize) -> Rig {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(nodes));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let server = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
        Rig { tp, server }
    }

    fn client(sim: &Sim, rig: &Rig, node: u32) -> KvsClient {
        KvsClient::new(
            &sim.ctx(),
            &rig.tp,
            NodeId(node),
            NodeId(0),
            KvsSpec::default(),
        )
    }

    #[test]
    fn commit_then_lookup() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2);
        let c = client(&sim, &rig, 1);
        let h = sim.spawn(async move {
            let v1 = c.commit("a", Bytes::from_static(b"1")).await;
            let v2 = c.commit("b", Bytes::from_static(b"2")).await;
            let got = c.lookup("a").await.unwrap();
            (v1, v2, got)
        });
        sim.run();
        let (v1, v2, got) = h.try_take().unwrap();
        assert_eq!(v1, 1);
        assert_eq!(v2, 2);
        assert_eq!(got.version, 1);
        assert_eq!(got.value, Bytes::from_static(b"1"));
        assert_eq!(rig.server.stats().commits, 2);
        assert_eq!(rig.server.stats().lookups, 1);
    }

    #[test]
    fn lookup_miss_returns_none() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2);
        let c = client(&sim, &rig, 1);
        let h = sim.spawn(async move { c.lookup("missing").await });
        sim.run();
        assert_eq!(h.try_take().unwrap(), None);
    }

    #[test]
    fn wait_key_parks_until_commit() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 3);
        let consumer = client(&sim, &rig, 2);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let v = consumer.wait_key("frame0").await;
            (ctx.now().as_secs_f64(), v.value)
        });
        let producer = client(&sim, &rig, 1);
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(50)).await;
            producer.commit("frame0", Bytes::from_static(b"meta")).await;
        });
        sim.run();
        let (t, v) = h.try_take().unwrap();
        assert!(t >= 0.050, "woke at {t}");
        assert!(t < 0.051, "woke at {t}");
        assert_eq!(v, Bytes::from_static(b"meta"));
        assert_eq!(rig.server.stats().waits_parked, 1);
    }

    #[test]
    fn wait_key_returns_immediately_when_present() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2);
        let c = client(&sim, &rig, 1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            c.commit("k", Bytes::from_static(b"v")).await;
            let before = ctx.now();
            c.wait_key("k").await;
            (ctx.now() - before).micros()
        });
        sim.run();
        // One RPC round trip + service, no parking: well under 100 µs.
        let us = h.try_take().unwrap();
        assert!(us < 100, "took {us} µs");
        assert_eq!(rig.server.stats().waits_parked, 0);
    }

    #[test]
    fn polling_wait_counts_polls() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 3);
        let consumer = client(&sim, &rig, 2);
        let h = sim.spawn(async move { consumer.wait_key_poll("x").await });
        let producer = client(&sim, &rig, 1);
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(10)).await;
            producer.commit("x", Bytes::from_static(b"y")).await;
        });
        sim.run();
        let (v, polls) = h.try_take().unwrap();
        assert_eq!(v.value, Bytes::from_static(b"y"));
        // ~10 ms at 1 ms poll interval: about 10 polls.
        assert!((8..=13).contains(&polls), "{polls} polls");
    }

    #[test]
    fn cache_hits_are_free_and_correct() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2);
        let c = client(&sim, &rig, 1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            c.commit("k", Bytes::from_static(b"v")).await;
            let before = ctx.now();
            let cached = c.lookup_cached("k");
            assert_eq!(ctx.now(), before); // zero simulated cost
            cached
        });
        sim.run();
        let v = h.try_take().unwrap().unwrap();
        assert_eq!(v.value, Bytes::from_static(b"v"));
    }

    #[test]
    fn unlink_removes_key() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2);
        let c = client(&sim, &rig, 1);
        let h = sim.spawn(async move {
            c.commit("k", Bytes::from_static(b"v")).await;
            c.unlink("k").await;
            (c.lookup("k").await, c.lookup_cached("k"))
        });
        sim.run();
        let (remote, cached) = h.try_take().unwrap();
        assert_eq!(remote, None);
        assert_eq!(cached, None);
        assert!(rig.server.is_empty());
    }

    #[test]
    fn versions_are_globally_monotone() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 3);
        let mut handles = Vec::new();
        for n in 1..3u32 {
            let c = client(&sim, &rig, n);
            handles.push(sim.spawn(async move {
                let mut versions = Vec::new();
                for i in 0..5 {
                    versions.push(c.commit(&format!("n{n}/k{i}"), Bytes::new()).await);
                }
                versions
            }));
        }
        sim.run();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.try_take().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (1..=10).collect::<Vec<u64>>());
        assert_eq!(rig.server.version(), 10);
    }

    #[test]
    fn multiple_waiters_released_by_one_commit() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 4);
        let mut handles = Vec::new();
        for n in 1..4u32 {
            let c = client(&sim, &rig, n);
            handles.push(sim.spawn(async move { c.wait_key("shared").await.version }));
        }
        let p = client(&sim, &rig, 1);
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(1)).await;
            p.commit("shared", Bytes::new()).await;
        });
        let report = sim.run();
        assert!(report.is_clean());
        for h in handles {
            assert_eq!(h.try_take().unwrap(), 1);
        }
    }

    #[test]
    fn namespaces_isolate_keys() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2);
        let c = client(&sim, &rig, 1);
        let a = Namespace::new(c.clone(), "jobA");
        let b = Namespace::new(c.clone(), "jobB");
        let h = sim.spawn(async move {
            a.commit("frame", Bytes::from_static(b"A")).await;
            b.commit("frame", Bytes::from_static(b"B")).await;
            let va = a.lookup("frame").await.unwrap().value;
            let vb = b.lookup("frame").await.unwrap().value;
            // Raw keys are prefixed.
            let raw = c.lookup("jobA/frame").await.unwrap().value;
            (va, vb, raw)
        });
        sim.run();
        let (va, vb, raw) = h.try_take().unwrap();
        assert_eq!(va, Bytes::from_static(b"A"));
        assert_eq!(vb, Bytes::from_static(b"B"));
        assert_eq!(raw, Bytes::from_static(b"A"));
    }

    #[test]
    fn kvs_delay_window_slows_lookups() {
        use faults::{FaultBoard, FaultEvent, FaultKind, FaultPlan};
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rig = setup(&sim, 2);
        let board = FaultBoard::new(&ctx, 2, 0);
        rig.tp.set_faults(board.clone());
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_nanos(0),
            kind: FaultKind::KvsDelay {
                delay: SimDuration::from_millis(5),
                duration: SimDuration::from_millis(50),
                broker: None,
            },
        }]));
        let c = client(&sim, &rig, 1);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let before = ctx.now();
            c.try_lookup("x").await.unwrap();
            let slow = ctx.now().since(before);
            ctx.sleep(SimDuration::from_millis(100)).await; // window over
            let before = ctx.now();
            c.try_lookup("x").await.unwrap();
            (slow, ctx.now().since(before))
        });
        assert!(sim.run().is_clean());
        let (slow, fast) = h.try_take().unwrap();
        assert!(slow >= SimDuration::from_millis(5), "slow={slow:?}");
        assert!(fast < SimDuration::from_millis(1), "fast={fast:?}");
    }

    #[test]
    fn commit_retries_through_broker_outage() {
        use faults::{FaultBoard, FaultEvent, FaultKind, FaultPlan};
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rig = setup(&sim, 2);
        let board = FaultBoard::new(&ctx, 2, 0);
        rig.tp.set_faults(board.clone());
        // Broker node down for 2 ms from t=0.
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_nanos(0),
            kind: FaultKind::NodeCrash {
                node: 0,
                down_for: SimDuration::from_millis(2),
            },
        }]));
        let c = client(&sim, &rig, 1);
        let h = sim.spawn(async move {
            let v = c.try_commit("k", Bytes::from_static(b"v")).await?;
            let got = c.try_lookup("k").await?;
            Ok::<_, transport::TransportError>((v, got))
        });
        assert!(sim.run().is_clean());
        let (v, got) = h.try_take().unwrap().unwrap();
        assert_eq!(v, 1);
        assert_eq!(got.unwrap().value, Bytes::from_static(b"v"));
        assert!(rig.tp.stats().rpc_retries >= 1);
    }

    #[test]
    fn nested_namespaces_compose() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2);
        let c = client(&sim, &rig, 1);
        let ns = Namespace::new(c, "root").namespace("inner");
        assert_eq!(ns.full_key("k"), "root/inner/k");
        let h = sim.spawn(async move {
            ns.commit("k", Bytes::from_static(b"v")).await;
            ns.wait_key("k").await.value
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Bytes::from_static(b"v"));
    }
}
