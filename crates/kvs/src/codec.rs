//! Wire codec for KVS RPCs.
//!
//! A deliberately small, hand-rolled binary format: the broker protocol
//! has four operations and the simulation only needs lengths to be
//! realistic, but encoding/decoding real bytes keeps the substrate honest
//! (payload sizes on the wire match what a real broker would move).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use simcore::intern::{intern, Symbol};

/// Operations understood by the broker.
///
/// Keys are interned [`Symbol`]s: the client interns each key exactly
/// once at the API boundary and every later hop (request struct, broker
/// store, client cache) hashes a 4-byte id instead of re-hashing the
/// full path. The *wire* still carries the resolved string bytes, so
/// message lengths — and therefore fabric costs — are exactly those of
/// the string protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Store `value` under `key`, bumping the global version.
    Commit {
        /// Key to store under.
        key: Symbol,
        /// Value bytes.
        value: Bytes,
    },
    /// Read the current value of `key`, if any.
    Lookup {
        /// Key to read.
        key: Symbol,
    },
    /// Block until `key` exists, then return it (server-side watch).
    WaitKey {
        /// Key to watch.
        key: Symbol,
    },
    /// Remove `key`.
    Unlink {
        /// Key to remove.
        key: Symbol,
    },
    /// Shard-to-shard replication delta (mesh mode only): one write as
    /// observed at `origin`, causally ordered by a per-key version
    /// vector. `value: None` propagates an unlink.
    Delta {
        /// Key the write applies to.
        key: Symbol,
        /// Shard id the write originated on.
        origin: u32,
        /// Per-(key, origin) sequence number of this write.
        seq: u64,
        /// Origin's per-key version vector *before* the write: the
        /// causal parents this delta must not overtake.
        deps: Vec<(u32, u64)>,
        /// New value, or `None` for an unlink tombstone.
        value: Option<Bytes>,
    },
}

/// Broker responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Commit acknowledged at this global version.
    Committed {
        /// Global KVS version after the commit.
        version: u64,
    },
    /// Lookup/wait result.
    Value {
        /// Version at which the key was committed.
        version: u64,
        /// Stored bytes.
        value: Bytes,
    },
    /// Lookup miss.
    NotFound,
    /// Unlink acknowledged.
    Unlinked,
    /// Replication delta received (applied, or buffered until its
    /// causal parents arrive).
    DeltaAck,
    /// The shard serving this broker id has crashed permanently; the
    /// client should fail over to a replica.
    ShardDown,
}

const OP_COMMIT: u8 = 1;
const OP_LOOKUP: u8 = 2;
const OP_WAIT: u8 = 3;
const OP_UNLINK: u8 = 4;
const OP_DELTA: u8 = 5;

const RESP_COMMITTED: u8 = 1;
const RESP_VALUE: u8 = 2;
const RESP_NOT_FOUND: u8 = 3;
const RESP_UNLINKED: u8 = 4;
const RESP_DELTA_ACK: u8 = 5;
const RESP_SHARD_DOWN: u8 = 6;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

/// Decode a length-prefixed key without allocating: the symbol is
/// interned straight from the wire buffer's bytes.
fn get_sym(buf: &mut Bytes) -> Symbol {
    let len = buf.get_u16() as usize;
    let sym = intern(std::str::from_utf8(&buf[..len]).expect("kvs keys are UTF-8"));
    buf.advance(len);
    sym
}

impl Request {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        match self {
            Request::Commit { key, value } => {
                let key = key.resolve();
                let mut buf = BytesMut::with_capacity(1 + 2 + key.len() + 4 + value.len());
                buf.put_u8(OP_COMMIT);
                put_str(&mut buf, &key);
                buf.put_u32(value.len() as u32);
                buf.put_slice(value);
                buf.freeze()
            }
            Request::Lookup { key } => encode_keyed(OP_LOOKUP, *key),
            Request::WaitKey { key } => encode_keyed(OP_WAIT, *key),
            Request::Unlink { key } => encode_keyed(OP_UNLINK, *key),
            Request::Delta {
                key,
                origin,
                seq,
                deps,
                value,
            } => {
                let key = key.resolve();
                let val_len = value.as_ref().map_or(0, |v| 4 + v.len());
                let mut buf = BytesMut::with_capacity(
                    1 + 2 + key.len() + 4 + 8 + 2 + deps.len() * 12 + 1 + val_len,
                );
                buf.put_u8(OP_DELTA);
                put_str(&mut buf, &key);
                buf.put_u32(*origin);
                buf.put_u64(*seq);
                buf.put_u16(deps.len() as u16);
                for (shard, n) in deps {
                    buf.put_u32(*shard);
                    buf.put_u64(*n);
                }
                match value {
                    Some(v) => {
                        buf.put_u8(1);
                        buf.put_u32(v.len() as u32);
                        buf.put_slice(v);
                    }
                    None => buf.put_u8(0),
                }
                buf.freeze()
            }
        }
    }

    /// Decode from wire bytes. Panics on malformed input (the simulation
    /// is a closed world; corruption would be a program bug).
    pub fn decode(mut raw: Bytes) -> Request {
        match raw.get_u8() {
            OP_COMMIT => {
                let key = get_sym(&mut raw);
                let len = raw.get_u32() as usize;
                let value = raw.split_to(len);
                Request::Commit { key, value }
            }
            OP_LOOKUP => Request::Lookup {
                key: get_sym(&mut raw),
            },
            OP_WAIT => Request::WaitKey {
                key: get_sym(&mut raw),
            },
            OP_UNLINK => Request::Unlink {
                key: get_sym(&mut raw),
            },
            OP_DELTA => {
                let key = get_sym(&mut raw);
                let origin = raw.get_u32();
                let seq = raw.get_u64();
                let n_deps = raw.get_u16() as usize;
                let deps = (0..n_deps)
                    .map(|_| (raw.get_u32(), raw.get_u64()))
                    .collect();
                let value = match raw.get_u8() {
                    0 => None,
                    _ => {
                        let len = raw.get_u32() as usize;
                        Some(raw.split_to(len))
                    }
                };
                Request::Delta {
                    key,
                    origin,
                    seq,
                    deps,
                    value,
                }
            }
            op => panic!("unknown kvs request op {op}"),
        }
    }
}

/// Encode a bare `op + key` request with one exact-capacity allocation.
fn encode_keyed(op: u8, key: Symbol) -> Bytes {
    let key = key.resolve();
    let mut buf = BytesMut::with_capacity(1 + 2 + key.len());
    buf.put_u8(op);
    put_str(&mut buf, &key);
    buf.freeze()
}

impl Response {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = match self {
            Response::Value { value, .. } => BytesMut::with_capacity(1 + 8 + 4 + value.len()),
            _ => BytesMut::with_capacity(1 + 8),
        };
        match self {
            Response::Committed { version } => {
                buf.put_u8(RESP_COMMITTED);
                buf.put_u64(*version);
            }
            Response::Value { version, value } => {
                buf.put_u8(RESP_VALUE);
                buf.put_u64(*version);
                buf.put_u32(value.len() as u32);
                buf.put_slice(value);
            }
            Response::NotFound => buf.put_u8(RESP_NOT_FOUND),
            Response::Unlinked => buf.put_u8(RESP_UNLINKED),
            Response::DeltaAck => buf.put_u8(RESP_DELTA_ACK),
            Response::ShardDown => buf.put_u8(RESP_SHARD_DOWN),
        }
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut raw: Bytes) -> Response {
        match raw.get_u8() {
            RESP_COMMITTED => Response::Committed {
                version: raw.get_u64(),
            },
            RESP_VALUE => {
                let version = raw.get_u64();
                let len = raw.get_u32() as usize;
                let value = raw.split_to(len);
                Response::Value { version, value }
            }
            RESP_NOT_FOUND => Response::NotFound,
            RESP_UNLINKED => Response::Unlinked,
            RESP_DELTA_ACK => Response::DeltaAck,
            RESP_SHARD_DOWN => Response::ShardDown,
            op => panic!("unknown kvs response op {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for req in [
            Request::Commit {
                key: intern("a/b/c"),
                value: Bytes::from_static(b"payload"),
            },
            Request::Lookup { key: intern("x") },
            Request::WaitKey { key: intern("") },
            Request::Unlink { key: intern("k") },
            Request::Delta {
                key: intern("frames/p0001/f3"),
                origin: 2,
                seq: 7,
                deps: vec![(0, 3), (2, 6)],
                value: Some(Bytes::from_static(b"meta")),
            },
            Request::Delta {
                key: intern("tomb"),
                origin: 0,
                seq: 1,
                deps: vec![],
                value: None,
            },
        ] {
            assert_eq!(Request::decode(req.encode()), req);
        }
    }

    /// The symbol-keyed codec puts exactly the same bytes on the wire as
    /// the string protocol: opcode, u16 length, then the key text.
    #[test]
    fn wire_bytes_carry_the_resolved_key_text() {
        let raw = Request::Lookup {
            key: intern("dir/frame07"),
        }
        .encode();
        assert_eq!(raw.len(), 1 + 2 + "dir/frame07".len());
        assert_eq!(&raw[3..], b"dir/frame07");
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            Response::Committed { version: 42 },
            Response::Value {
                version: 7,
                value: Bytes::from_static(b"v"),
            },
            Response::NotFound,
            Response::Unlinked,
            Response::DeltaAck,
            Response::ShardDown,
        ] {
            assert_eq!(Response::decode(resp.encode()), resp);
        }
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn commit_round_trips(key in "[a-z/._0-9]{0,64}",
                                  value in proptest::collection::vec(any::<u8>(), 0..1024)) {
                let req = Request::Commit { key: intern(&key), value: Bytes::from(value) };
                prop_assert_eq!(Request::decode(req.encode()), req);
            }

            #[test]
            fn value_round_trips(version in any::<u64>(),
                                 value in proptest::collection::vec(any::<u8>(), 0..1024)) {
                let resp = Response::Value { version, value: Bytes::from(value) };
                prop_assert_eq!(Response::decode(resp.encode()), resp);
            }

            #[test]
            fn delta_round_trips(key in "[a-z/._0-9]{0,64}",
                                 origin in any::<u32>(),
                                 seq in any::<u64>(),
                                 deps in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..8),
                                 tombstone in any::<bool>(),
                                 value in proptest::collection::vec(any::<u8>(), 0..256)) {
                let req = Request::Delta {
                    key: intern(&key),
                    origin,
                    seq,
                    deps,
                    value: (!tombstone).then(|| Bytes::from(value)),
                };
                prop_assert_eq!(Request::decode(req.clone().encode()), req);
            }
        }
    }
}
