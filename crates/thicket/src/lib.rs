//! # thicket — ensemble aggregation and call-path querying
//!
//! The paper analyzes its Caliper data with Thicket [22] and the Hatchet
//! call-path query language [23]: profiles from 10 repetitions are
//! aggregated per call-tree node, and queries isolate regions such as
//! `dyad_fetch` to attribute time to data movement vs synchronization.
//! This crate reimplements that layer over [`instrument::Profile`]s:
//!
//! * [`Ensemble`] — N profiles (one per run/process) aggregated into
//!   per-path statistics (mean/std/min/max of inclusive and exclusive
//!   time, mean call count, summed metrics);
//! * [`Query`] — a call-path pattern language: exact names, `*` (one
//!   level), `**` (any depth);
//! * a text call-tree renderer used to regenerate Figures 9 and 10.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use instrument::Profile;
use serde::Serialize;

/// Aggregated statistics for one call path across an ensemble.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PathStats {
    /// Number of profiles in which the path appears.
    pub appearances: u64,
    /// Mean call count per appearance.
    pub mean_count: f64,
    /// Mean inclusive time, seconds.
    pub mean_inclusive: f64,
    /// Standard deviation of inclusive time, seconds.
    pub std_inclusive: f64,
    /// Minimum inclusive time, seconds.
    pub min_inclusive: f64,
    /// Maximum inclusive time, seconds.
    pub max_inclusive: f64,
    /// Mean exclusive time, seconds.
    pub mean_exclusive: f64,
    /// Mean of each numeric metric.
    pub metrics: BTreeMap<String, f64>,
}

/// An ensemble of profiles (runs and/or processes).
#[derive(Debug, Clone, Default)]
pub struct Ensemble {
    profiles: Vec<Profile>,
}

impl Ensemble {
    /// Empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of profiles.
    pub fn from_profiles(profiles: Vec<Profile>) -> Self {
        Ensemble { profiles }
    }

    /// Add one profile.
    pub fn push(&mut self, p: Profile) {
        self.profiles.push(p);
    }

    /// Number of member profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when the ensemble has no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Aggregate into per-path statistics.
    pub fn aggregate(&self) -> AggProfile {
        #[derive(Default)]
        struct Acc {
            counts: Vec<f64>,
            inclusive: Vec<f64>,
            exclusive: Vec<f64>,
            metrics: BTreeMap<String, Vec<f64>>,
        }
        let mut accs: BTreeMap<Vec<String>, Acc> = BTreeMap::new();
        for p in &self.profiles {
            for (path, node) in p.flatten() {
                let acc = accs.entry(path).or_default();
                acc.counts.push(node.count as f64);
                acc.inclusive.push(node.inclusive.as_secs_f64());
                acc.exclusive.push(node.exclusive().as_secs_f64());
                for (k, v) in &node.metrics {
                    acc.metrics.entry(k.clone()).or_default().push(*v);
                }
            }
        }
        let nodes = accs
            .into_iter()
            .map(|(path, acc)| {
                let n = acc.inclusive.len() as f64;
                let mean = acc.inclusive.iter().sum::<f64>() / n;
                let var = if acc.inclusive.len() < 2 {
                    0.0
                } else {
                    acc.inclusive
                        .iter()
                        .map(|x| (x - mean).powi(2))
                        .sum::<f64>()
                        / (n - 1.0)
                };
                let stats = PathStats {
                    appearances: acc.inclusive.len() as u64,
                    mean_count: acc.counts.iter().sum::<f64>() / n,
                    mean_inclusive: mean,
                    std_inclusive: var.sqrt(),
                    min_inclusive: acc.inclusive.iter().copied().fold(f64::INFINITY, f64::min),
                    max_inclusive: acc
                        .inclusive
                        .iter()
                        .copied()
                        .fold(f64::NEG_INFINITY, f64::max),
                    mean_exclusive: acc.exclusive.iter().sum::<f64>() / n,
                    metrics: acc
                        .metrics
                        .into_iter()
                        .map(|(k, vs)| {
                            let m = vs.iter().sum::<f64>() / vs.len() as f64;
                            (k, m)
                        })
                        .collect(),
                };
                (path, stats)
            })
            .collect();
        AggProfile { nodes }
    }
}

/// The aggregated view: statistics per call path.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AggProfile {
    /// Path → statistics, ordered by path.
    pub nodes: BTreeMap<Vec<String>, PathStats>,
}

impl AggProfile {
    /// Statistics for an exact path.
    pub fn get(&self, path: &[&str]) -> Option<&PathStats> {
        let key: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        self.nodes.get(&key)
    }

    /// All paths matching `query`.
    pub fn query(&self, query: &Query) -> Vec<(&Vec<String>, &PathStats)> {
        self.nodes
            .iter()
            .filter(|(path, _)| query.matches(path))
            .collect()
    }

    /// Sum of mean inclusive time over every match of `query`.
    pub fn query_time(&self, query: &Query) -> f64 {
        self.query(query)
            .iter()
            .map(|(_, s)| s.mean_inclusive)
            .sum()
    }

    /// Render the call tree as indented text, one line per path:
    /// `name  count  mean±std  [exclusive]` — the Figure 9/10 view.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for (path, st) in &self.nodes {
            let depth = path.len() - 1;
            let name = path.last().unwrap();
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{name}: n={:.0} incl={:.6}s (±{:.6}) excl={:.6}s\n",
                st.mean_count, st.mean_inclusive, st.std_inclusive, st.mean_exclusive
            ));
        }
        out
    }

    /// Serialize to JSON (for EXPERIMENTS.md regeneration).
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Row<'a> {
            path: String,
            stats: &'a PathStats,
        }
        let rows: Vec<Row> = self
            .nodes
            .iter()
            .map(|(p, s)| Row {
                path: p.join("/"),
                stats: s,
            })
            .collect();
        serde_json::to_string_pretty(&rows).expect("serialization cannot fail")
    }
}

/// A side-by-side comparison row from [`AggProfile::compare`].
#[derive(Debug, Clone, Serialize)]
pub struct CompareRow {
    /// Call path (joined with `/`).
    pub path: String,
    /// Mean inclusive seconds in `self`.
    pub left: f64,
    /// Mean inclusive seconds in `other` (0 when absent).
    pub right: f64,
    /// `right / left` (∞ when `left` is 0 and `right` is not).
    pub ratio: f64,
}

impl AggProfile {
    /// Compare two aggregated profiles path by path — the Figure 9-vs-10
    /// view ("how does each region scale between runs?"). Rows follow
    /// `self`'s path order; paths only in `other` are appended.
    pub fn compare(&self, other: &AggProfile) -> Vec<CompareRow> {
        let mut rows: Vec<CompareRow> = self
            .nodes
            .iter()
            .map(|(path, st)| {
                let right = other
                    .nodes
                    .get(path)
                    .map(|o| o.mean_inclusive)
                    .unwrap_or(0.0);
                CompareRow {
                    path: path.join("/"),
                    left: st.mean_inclusive,
                    right,
                    ratio: if st.mean_inclusive > 0.0 {
                        right / st.mean_inclusive
                    } else if right > 0.0 {
                        f64::INFINITY
                    } else {
                        1.0
                    },
                }
            })
            .collect();
        for (path, st) in &other.nodes {
            if !self.nodes.contains_key(path) {
                rows.push(CompareRow {
                    path: path.join("/"),
                    left: 0.0,
                    right: st.mean_inclusive,
                    ratio: f64::INFINITY,
                });
            }
        }
        rows
    }

    /// Render a comparison as fixed-width text.
    pub fn compare_table(&self, other: &AggProfile) -> String {
        let mut out = format!(
            "{:<44} {:>12} {:>12} {:>8}
",
            "path", "left (s)", "right (s)", "ratio"
        );
        for row in self.compare(other) {
            out.push_str(&format!(
                "{:<44} {:>12.6} {:>12.6} {:>7.2}x
",
                row.path, row.left, row.right, row.ratio
            ));
        }
        out
    }
}

/// One component of a call-path pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Matcher {
    /// Exact region name.
    Name(String),
    /// Exactly one level, any name (`*`).
    AnyOne,
    /// Zero or more levels (`**`).
    AnyDepth,
}

/// A call-path query in the Hatchet style.
///
/// ```
/// use thicket::Query;
/// let q = Query::parse("dyad_consume/**/dyad_fetch");
/// assert!(q.matches(&["dyad_consume".into(), "dyad_fetch".into()]));
/// assert!(q.matches(&["dyad_consume".into(), "x".into(), "dyad_fetch".into()]));
/// assert!(!q.matches(&["dyad_fetch".into()]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    parts: Vec<Matcher>,
}

impl Query {
    /// Parse a `/`-separated pattern: names, `*`, `**`.
    pub fn parse(pattern: &str) -> Query {
        let parts = pattern
            .split('/')
            .filter(|p| !p.is_empty())
            .map(|p| match p {
                "*" => Matcher::AnyOne,
                "**" => Matcher::AnyDepth,
                name => Matcher::Name(name.to_string()),
            })
            .collect();
        Query { parts }
    }

    /// Does `path` match this query exactly (anchored both ends)?
    pub fn matches(&self, path: &[String]) -> bool {
        fn rec(parts: &[Matcher], path: &[String]) -> bool {
            match parts.split_first() {
                None => path.is_empty(),
                Some((Matcher::Name(n), rest)) => {
                    path.first().is_some_and(|p| p == n) && rec(rest, &path[1..])
                }
                Some((Matcher::AnyOne, rest)) => !path.is_empty() && rec(rest, &path[1..]),
                Some((Matcher::AnyDepth, rest)) => {
                    (0..=path.len()).any(|skip| rec(rest, &path[skip..]))
                }
            }
        }
        rec(&self.parts, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instrument::Recorder;
    use simcore::{Sim, SimDuration};

    fn profile_with(regions: &[(&str, u64)]) -> Profile {
        // Build a flat profile where region `name` sleeps `us` micros.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec = Recorder::new(&ctx);
        let rec2 = rec.clone();
        let regions: Vec<(String, u64)> =
            regions.iter().map(|(n, u)| (n.to_string(), *u)).collect();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            for (name, us) in regions {
                let g = rec2.region(&name);
                ctx2.sleep(SimDuration::from_micros(us)).await;
                g.end();
            }
        });
        sim.run();
        rec.finish()
    }

    #[test]
    fn aggregate_means_and_std() {
        let e = Ensemble::from_profiles(vec![
            profile_with(&[("io", 10)]),
            profile_with(&[("io", 20)]),
            profile_with(&[("io", 30)]),
        ]);
        let agg = e.aggregate();
        let st = agg.get(&["io"]).unwrap();
        assert_eq!(st.appearances, 3);
        assert!((st.mean_inclusive - 20e-6).abs() < 1e-12);
        assert!((st.std_inclusive - 10e-6).abs() < 1e-10);
        assert!((st.min_inclusive - 10e-6).abs() < 1e-12);
        assert!((st.max_inclusive - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn paths_absent_in_some_profiles_still_aggregate() {
        let e = Ensemble::from_profiles(vec![
            profile_with(&[("a", 10), ("b", 5)]),
            profile_with(&[("a", 30)]),
        ]);
        let agg = e.aggregate();
        assert_eq!(agg.get(&["a"]).unwrap().appearances, 2);
        assert_eq!(agg.get(&["b"]).unwrap().appearances, 1);
    }

    #[test]
    fn query_exact_and_wildcards() {
        let q = Query::parse("a/b/c");
        assert!(q.matches(&["a".into(), "b".into(), "c".into()]));
        assert!(!q.matches(&["a".into(), "b".into()]));

        let q = Query::parse("a/*/c");
        assert!(q.matches(&["a".into(), "x".into(), "c".into()]));
        assert!(!q.matches(&["a".into(), "c".into()]));

        let q = Query::parse("**/c");
        assert!(q.matches(&["c".into()]));
        assert!(q.matches(&["a".into(), "b".into(), "c".into()]));
        assert!(!q.matches(&["a".into(), "c".into(), "d".into()]));
    }

    #[test]
    fn query_any_depth_middle() {
        let q = Query::parse("root/**/leaf");
        assert!(q.matches(&["root".into(), "leaf".into()]));
        assert!(q.matches(&["root".into(), "m1".into(), "m2".into(), "leaf".into()]));
        assert!(!q.matches(&["other".into(), "leaf".into()]));
    }

    #[test]
    fn query_time_sums_matches() {
        let e = Ensemble::from_profiles(vec![profile_with(&[("x", 10), ("y", 20)])]);
        let agg = e.aggregate();
        let t = agg.query_time(&Query::parse("**"));
        assert!((t - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn render_tree_is_indented() {
        // Build a nested profile.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let rec = Recorder::new(&ctx);
        let rec2 = rec.clone();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            let outer = rec2.region("dyad_consume");
            let inner = rec2.region("dyad_fetch");
            ctx2.sleep(SimDuration::from_micros(5)).await;
            inner.end();
            outer.end();
        });
        sim.run();
        let agg = Ensemble::from_profiles(vec![rec.finish()]).aggregate();
        let tree = agg.render_tree();
        assert!(tree.contains("dyad_consume"));
        assert!(tree.contains("  dyad_fetch"));
    }

    #[test]
    fn compare_aligns_paths_and_computes_ratios() {
        let a = Ensemble::from_profiles(vec![profile_with(&[("io", 10), ("sync", 5)])]).aggregate();
        let b =
            Ensemble::from_profiles(vec![profile_with(&[("io", 30), ("extra", 1)])]).aggregate();
        let rows = a.compare(&b);
        let io = rows.iter().find(|r| r.path == "io").unwrap();
        assert!((io.ratio - 3.0).abs() < 1e-9);
        let sync = rows.iter().find(|r| r.path == "sync").unwrap();
        assert_eq!(sync.right, 0.0);
        let extra = rows.iter().find(|r| r.path == "extra").unwrap();
        assert!(extra.ratio.is_infinite());
        let table = a.compare_table(&b);
        assert!(table.contains("io"));
        assert!(table.contains("3.00x"));
    }

    #[test]
    fn json_round_trips_paths() {
        let e = Ensemble::from_profiles(vec![profile_with(&[("io", 10)])]);
        let json = e.aggregate().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[0]["path"], "io");
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_path() -> impl Strategy<Value = Vec<String>> {
            proptest::collection::vec("[a-c]{1,2}", 1..5)
        }

        proptest! {
            #[test]
            fn any_depth_is_superset_of_exact(path in arb_path()) {
                // "**" matches everything.
                prop_assert!(Query::parse("**").matches(&path));
                // The exact pattern always matches its own path.
                let exact = path.join("/");
                prop_assert!(Query::parse(&exact).matches(&path));
            }

            #[test]
            fn star_matches_iff_same_len(path in arb_path()) {
                let stars = vec!["*"; path.len()].join("/");
                prop_assert!(Query::parse(&stars).matches(&path));
                let fewer = vec!["*"; path.len() - 1].join("/");
                if !fewer.is_empty() {
                    prop_assert!(!Query::parse(&fewer).matches(&path));
                }
            }
        }
    }
}
