//! # cluster — a simulated HPC machine
//!
//! Substrate for the DYAD reproduction: a deterministic model of the
//! paper's testbed (LLNL Corona). A [`Cluster`] is a set of [`Node`]s —
//! each with cores, GPUs and a node-local [`NvmeDevice`] — joined by a
//! [`Fabric`] modelling per-NIC bandwidth contention and wire latency,
//! with RDMA read/write primitives.
//!
//! Time costs are charged on `simcore` resources: NVMe read/write
//! channels and NIC tx/rx ports are processor-sharing bandwidth links, so
//! overlapping I/O and overlapping messages slow each other down exactly
//! as concurrent flows would on real hardware.

#![warn(missing_docs)]

mod fabric;
mod node;
mod topology;

pub use fabric::{Fabric, FabricSpec, TopologySpec};
pub use node::{Node, NodeId, NodeSpec, NvmeDevice};
pub use topology::{Cluster, ClusterSpec};
