//! The interconnect: per-node NICs joined by a non-blocking switch.
//!
//! The model is LogGP-flavoured: a message pays a fixed per-message CPU
//! overhead, a per-hop wire latency, and then streams its payload through
//! the sender's NIC egress channel and the receiver's NIC ingress channel
//! simultaneously (the effective rate is the bottleneck of the two,
//! including contention from other flows on either NIC). RDMA operations
//! add the request round trip but bypass remote CPU involvement.

use std::rc::Rc;

use simcore::resource::{BwStats, SharedBandwidth};
use simcore::{Ctx, SimDuration};

use crate::node::NodeId;

/// Static description of the interconnect.
#[derive(Debug, Clone, Copy)]
pub struct FabricSpec {
    /// Per-port bandwidth in each direction, bytes/second.
    pub link_bw: f64,
    /// One-way wire latency per hop (node→switch or switch→node).
    pub hop_latency: SimDuration,
    /// Fixed per-message software/NIC overhead at the initiator.
    pub msg_overhead: SimDuration,
}

impl FabricSpec {
    /// InfiniBand QDR as on Corona: 4×QDR ≈ 32 Gbit/s ≈ 4 GB/s per port,
    /// ~1.5 µs hop latency, ~1 µs per-message overhead.
    pub fn infiniband_qdr() -> Self {
        FabricSpec {
            link_bw: 4.0e9,
            hop_latency: SimDuration::from_nanos(1_500),
            msg_overhead: SimDuration::from_micros(1),
        }
    }
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec::infiniband_qdr()
    }
}

struct Nic {
    tx: SharedBandwidth,
    rx: SharedBandwidth,
}

/// The cluster interconnect.
#[derive(Clone)]
pub struct Fabric {
    ctx: Ctx,
    spec: FabricSpec,
    nics: Rc<Vec<Nic>>,
    mem_bw: f64,
}

impl Fabric {
    /// Build a fabric joining `n_nodes` NICs through a non-blocking
    /// switch. `mem_bw` is the intra-node copy bandwidth used when source
    /// and destination are the same node.
    pub fn new(ctx: &Ctx, n_nodes: usize, spec: FabricSpec, mem_bw: f64) -> Self {
        let nics = (0..n_nodes)
            .map(|_| Nic {
                tx: SharedBandwidth::new(ctx, spec.link_bw),
                rx: SharedBandwidth::new(ctx, spec.link_bw),
            })
            .collect();
        Fabric {
            ctx: ctx.clone(),
            spec,
            nics: Rc::new(nics),
            mem_bw,
        }
    }

    /// Number of attached nodes.
    pub fn n_nodes(&self) -> usize {
        self.nics.len()
    }

    /// The fabric's static parameters.
    pub fn spec(&self) -> FabricSpec {
        self.spec
    }

    fn nic(&self, node: NodeId) -> &Nic {
        &self.nics[node.0 as usize]
    }

    /// One-way end-to-end message latency excluding payload streaming.
    pub fn base_latency(&self) -> SimDuration {
        self.spec.msg_overhead + self.spec.hop_latency * 2
    }

    /// Move `bytes` from `src` to `dst`, paying overhead, wire latency and
    /// payload streaming through both NICs (bottleneck of the two).
    pub async fn send(&self, src: NodeId, dst: NodeId, bytes: u64) {
        if src == dst {
            // Intra-node: a memory copy.
            self.ctx
                .sleep(SimDuration::from_secs_f64(bytes as f64 / self.mem_bw))
                .await;
            return;
        }
        self.ctx.sleep(self.base_latency()).await;
        if bytes == 0 {
            return;
        }
        // Stream through both ports concurrently; completion is gated by
        // the slower (more contended) of the two. Both flows join the
        // contention model at this same instant, so awaiting the two
        // receivers in sequence is equivalent to a concurrent join — the
        // second await returns immediately if its flow already finished.
        let tx_done = self.nic(src).tx.transfer_counted_start(bytes);
        let rx_done = self.nic(dst).rx.transfer_counted_start(bytes);
        tx_done.await;
        rx_done.await;
    }

    /// RDMA read: the initiator on `initiator` pulls `bytes` from memory
    /// on `target`. Pays a request one-way latency, then the payload
    /// streams target→initiator.
    pub async fn rdma_read(&self, initiator: NodeId, target: NodeId, bytes: u64) {
        if initiator == target {
            self.ctx
                .sleep(SimDuration::from_secs_f64(bytes as f64 / self.mem_bw))
                .await;
            return;
        }
        // Request message (header only).
        self.ctx.sleep(self.base_latency()).await;
        // Data path back.
        self.send(target, initiator, bytes).await;
    }

    /// RDMA write: push `bytes` from `initiator` into memory on `target`.
    pub async fn rdma_write(&self, initiator: NodeId, target: NodeId, bytes: u64) {
        self.send(initiator, target, bytes).await;
    }

    /// Egress statistics for a node's NIC.
    pub fn tx_stats(&self, node: NodeId) -> BwStats {
        self.nic(node).tx.stats()
    }

    /// Ingress statistics for a node's NIC.
    pub fn rx_stats(&self, node: NodeId) -> BwStats {
        self.nic(node).rx.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    fn fabric(sim: &Sim, n: usize) -> Fabric {
        Fabric::new(&sim.ctx(), n, FabricSpec::infiniband_qdr(), 20.0e9)
    }

    #[test]
    fn point_to_point_time_is_latency_plus_streaming() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(1), 4_000_000_000).await; // 1 s at 4 GB/s
            ctx.now().as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        // 1 µs overhead + 3 µs wire + 1 s payload.
        assert!((t - 1.000004).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn intra_node_send_uses_memory_bandwidth() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(0), 20_000_000_000).await; // 1 s at 20 GB/s
            ctx.now().as_secs_f64()
        });
        sim.run();
        assert!((h.try_take().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn incast_contends_on_receiver_nic() {
        // 4 senders to one receiver: rx port is the bottleneck, so each
        // 1 GB flow finishes in ~1 s (4 GB total at 4 GB/s), not 0.25 s.
        let sim = Sim::new(0);
        let f = fabric(&sim, 5);
        let mut hs = Vec::new();
        for s in 1..5u32 {
            let f = f.clone();
            let ctx = sim.ctx();
            hs.push(sim.spawn(async move {
                f.send(NodeId(s), NodeId(0), 1_000_000_000).await;
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        for h in hs {
            let t = h.try_take().unwrap();
            assert!((t - 1.000004).abs() < 1e-5, "took {t}");
        }
        assert_eq!(f.rx_stats(NodeId(0)).peak_concurrency, 4);
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let sim = Sim::new(0);
        let f = fabric(&sim, 4);
        let mut hs = Vec::new();
        for (s, d) in [(0u32, 1u32), (2, 3)] {
            let f = f.clone();
            let ctx = sim.ctx();
            hs.push(sim.spawn(async move {
                f.send(NodeId(s), NodeId(d), 4_000_000_000).await;
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        for h in hs {
            let t = h.try_take().unwrap();
            assert!((t - 1.000004).abs() < 1e-6, "took {t}");
        }
    }

    #[test]
    fn rdma_read_pays_round_trip() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.rdma_read(NodeId(0), NodeId(1), 0).await;
            ctx.now()
        });
        sim.run();
        // Two base latencies: request + response header.
        assert_eq!(h.try_take().unwrap().nanos(), 2 * (1_000 + 3_000));
    }

    #[test]
    fn zero_byte_message_costs_only_latency() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(1), 0).await;
            ctx.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().nanos(), 4_000);
    }
}
