//! The interconnect: per-node NICs joined by a switch fabric.
//!
//! The model is LogGP-flavoured: a message pays a fixed per-message CPU
//! overhead, a per-hop wire latency, and then streams its payload through
//! the sender's NIC egress channel and the receiver's NIC ingress channel
//! simultaneously (the effective rate is the bottleneck of the two,
//! including contention from other flows on either NIC). RDMA operations
//! add the request round trip but bypass remote CPU involvement.
//!
//! Two switch topologies are modeled (see [`TopologySpec`]): the paper's
//! single non-blocking switch, and a two-tier leaf/spine fabric where
//! cross-leaf transfers additionally stream through the source leaf's
//! uplink, the spine, and the destination leaf's downlink — each a shared
//! [`SharedBandwidth`] — so rack-level oversubscription produces tiered
//! contention that one flat switch cannot express.

use std::rc::Rc;

use simcore::resource::{BwStats, SharedBandwidth};
use simcore::{Ctx, SimDuration};

use crate::node::NodeId;

/// Switch-level topology of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// One non-blocking switch joins every NIC (the paper's Corona
    /// testbed view): only the endpoint NICs contend.
    Flat,
    /// Two-tier leaf/spine: `radix` consecutive nodes share a leaf
    /// switch; each leaf's uplink/downlink carries
    /// `radix × link_bw / oversubscription` per direction and the spine
    /// is sized to the aggregate uplink capacity. Intra-leaf traffic
    /// sees only the endpoint NICs, exactly like [`TopologySpec::Flat`].
    LeafSpine {
        /// Nodes per leaf switch (ports facing down).
        radix: u32,
        /// Ratio of leaf downlink to uplink capacity; `1.0` is a
        /// non-blocking (full-bisection) fabric, `4.0` a 4:1
        /// oversubscribed one.
        oversubscription: f64,
    },
}

/// Static description of the interconnect.
#[derive(Debug, Clone, Copy)]
pub struct FabricSpec {
    /// Per-port bandwidth in each direction, bytes/second.
    pub link_bw: f64,
    /// One-way wire latency per hop (node→switch, switch→switch or
    /// switch→node).
    pub hop_latency: SimDuration,
    /// Fixed per-message software/NIC overhead at the initiator.
    pub msg_overhead: SimDuration,
    /// Switch tiers joining the NICs.
    pub topology: TopologySpec,
}

impl FabricSpec {
    /// InfiniBand QDR as on Corona: 4×QDR ≈ 32 Gbit/s ≈ 4 GB/s per port,
    /// ~1.5 µs hop latency, ~1 µs per-message overhead, one non-blocking
    /// switch.
    pub fn infiniband_qdr() -> Self {
        FabricSpec {
            link_bw: 4.0e9,
            hop_latency: SimDuration::from_nanos(1_500),
            msg_overhead: SimDuration::from_micros(1),
            topology: TopologySpec::Flat,
        }
    }

    /// Number of event-calendar shards a simulation of `n_nodes` should
    /// use under this topology: shard 0 for cross-leaf activity (spine
    /// transfers, metadata RPCs, campaign timers) plus one shard per
    /// leaf switch. Flat fabrics — and leaf/spines that degenerate to a
    /// single leaf — need exactly one shard (the classic global
    /// calendar). Shard placement is a locality hint only; see
    /// [`simcore::SimConfig`].
    pub fn shard_count(&self, n_nodes: usize) -> u32 {
        match self.topology {
            TopologySpec::Flat => 1,
            TopologySpec::LeafSpine { radix, .. } => {
                let n_leaves = n_nodes.div_ceil(radix as usize);
                if n_leaves <= 1 {
                    1
                } else {
                    n_leaves as u32 + 1
                }
            }
        }
    }

    /// Calendar shard for `node`-local activity: `1 + leaf(node)` when
    /// [`FabricSpec::shard_count`] actually shards, else shard 0.
    pub fn shard_of(&self, node: NodeId, n_nodes: usize) -> u32 {
        match self.topology {
            TopologySpec::LeafSpine { radix, .. } if n_nodes.div_ceil(radix as usize) > 1 => {
                1 + node.0 / radix
            }
            _ => 0,
        }
    }

    /// Minimum simulated time for an event on one leaf to influence
    /// another leaf — the conservative window lookahead. A cross-leaf
    /// message pays the per-message overhead plus four wire hops
    /// (node→leaf→spine→leaf→node) before anything remote can observe
    /// it; a flat fabric pays overhead plus two hops. Lookahead only
    /// sizes staging windows (batching); correctness never depends on
    /// it.
    pub fn shard_lookahead(&self) -> SimDuration {
        match self.topology {
            TopologySpec::Flat => self.msg_overhead + self.hop_latency * 2,
            TopologySpec::LeafSpine { .. } => self.msg_overhead + self.hop_latency * 4,
        }
    }

    /// Same spec with a different switch topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        if let TopologySpec::LeafSpine {
            radix,
            oversubscription,
        } = topology
        {
            assert!(radix >= 1, "leaf radix must be at least 1");
            assert!(
                oversubscription > 0.0 && oversubscription.is_finite(),
                "oversubscription must be positive and finite"
            );
        }
        self.topology = topology;
        self
    }
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec::infiniband_qdr()
    }
}

struct Nic {
    tx: SharedBandwidth,
    rx: SharedBandwidth,
}

struct LeafSwitch {
    /// Leaf→spine capacity (all uplink ports aggregated).
    up: SharedBandwidth,
    /// Spine→leaf capacity.
    down: SharedBandwidth,
}

/// Instantiated switch tiers for [`TopologySpec::LeafSpine`]. Built only
/// when the topology actually has more than one leaf — a single-leaf
/// "leaf/spine" degenerates to the flat switch and takes the identical
/// code path (bit-for-bit, not merely equivalent schedules).
struct LeafSpine {
    radix: u32,
    leaves: Vec<LeafSwitch>,
    spine: SharedBandwidth,
}

impl LeafSpine {
    fn leaf_of(&self, node: NodeId) -> usize {
        (node.0 / self.radix) as usize
    }
}

/// The cluster interconnect.
#[derive(Clone)]
pub struct Fabric {
    ctx: Ctx,
    spec: FabricSpec,
    nics: Rc<Vec<Nic>>,
    tiers: Option<Rc<LeafSpine>>,
    mem_bw: f64,
}

impl Fabric {
    /// Build a fabric joining `n_nodes` NICs through the spec's switch
    /// topology. `mem_bw` is the intra-node copy bandwidth used when
    /// source and destination are the same node.
    pub fn new(ctx: &Ctx, n_nodes: usize, spec: FabricSpec, mem_bw: f64) -> Self {
        // Pin each resource's completion timer to its topology domain
        // when the simulation actually shards its calendar: NICs to
        // their node's leaf shard, leaf up/downlinks to that leaf's
        // shard, the spine to cross-leaf shard 0. Placement never
        // changes the schedule, so the unsharded path skips the wrap.
        let sharded = ctx.num_shards() > 1;
        let nics = (0..n_nodes)
            .map(|i| {
                let tx = SharedBandwidth::new(ctx, spec.link_bw);
                let rx = SharedBandwidth::new(ctx, spec.link_bw);
                if sharded {
                    let sh = spec.shard_of(NodeId(i as u32), n_nodes);
                    Nic {
                        tx: tx.pin_to_shard(sh),
                        rx: rx.pin_to_shard(sh),
                    }
                } else {
                    Nic { tx, rx }
                }
            })
            .collect();
        let tiers = match spec.topology {
            TopologySpec::Flat => None,
            TopologySpec::LeafSpine {
                radix,
                oversubscription,
            } => {
                assert!(radix >= 1, "leaf radix must be at least 1");
                assert!(
                    oversubscription > 0.0 && oversubscription.is_finite(),
                    "oversubscription must be positive and finite"
                );
                let n_leaves = n_nodes.div_ceil(radix as usize);
                if n_leaves <= 1 {
                    None
                } else {
                    // Each leaf aggregates `radix` node ports downward;
                    // its uplink carries that capacity divided by the
                    // oversubscription ratio. The spine is sized to the
                    // bisection of the uplink tier: every cross-leaf byte
                    // crosses it exactly once, entering through one
                    // uplink and leaving through one downlink.
                    let up_rate = radix as f64 * spec.link_bw / oversubscription;
                    let spine_rate = n_leaves as f64 * up_rate / 2.0;
                    let leaves = (0..n_leaves)
                        .map(|leaf| {
                            let up = SharedBandwidth::new(ctx, up_rate);
                            let down = SharedBandwidth::new(ctx, up_rate);
                            if sharded {
                                let sh = 1 + leaf as u32;
                                LeafSwitch {
                                    up: up.pin_to_shard(sh),
                                    down: down.pin_to_shard(sh),
                                }
                            } else {
                                LeafSwitch { up, down }
                            }
                        })
                        .collect();
                    let spine = SharedBandwidth::new(ctx, spine_rate);
                    Some(Rc::new(LeafSpine {
                        radix,
                        leaves,
                        spine: if sharded {
                            spine.pin_to_shard(0)
                        } else {
                            spine
                        },
                    }))
                }
            }
        };
        Fabric {
            ctx: ctx.clone(),
            spec,
            nics: Rc::new(nics),
            tiers,
            mem_bw,
        }
    }

    /// Number of attached nodes.
    pub fn n_nodes(&self) -> usize {
        self.nics.len()
    }

    /// The fabric's static parameters.
    pub fn spec(&self) -> FabricSpec {
        self.spec
    }

    fn nic(&self, node: NodeId) -> &Nic {
        &self.nics[node.0 as usize]
    }

    /// One-way end-to-end message latency excluding payload streaming
    /// (intra-leaf / flat path: node→switch→node).
    pub fn base_latency(&self) -> SimDuration {
        self.spec.msg_overhead + self.spec.hop_latency * 2
    }

    /// The leaf tiers crossed by a `src`→`dst` transfer, if any: `None`
    /// for a flat fabric or when both endpoints hang off the same leaf.
    fn crossing(&self, src: NodeId, dst: NodeId) -> Option<(&LeafSpine, usize, usize)> {
        let t = self.tiers.as_deref()?;
        let (ls, ld) = (t.leaf_of(src), t.leaf_of(dst));
        (ls != ld).then_some((t, ls, ld))
    }

    /// Move `bytes` from `src` to `dst`, paying overhead, wire latency
    /// and payload streaming through both NICs (bottleneck of the two);
    /// a cross-leaf transfer additionally pays two switch→switch hops
    /// and streams through the uplink, spine and downlink tiers.
    pub async fn send(&self, src: NodeId, dst: NodeId, bytes: u64) {
        if src == dst {
            // Intra-node: a memory copy.
            self.ctx
                .sleep(SimDuration::from_secs_f64(bytes as f64 / self.mem_bw))
                .await;
            return;
        }
        let cross = self.crossing(src, dst).is_some();
        let latency = if cross {
            // node→leaf→spine→leaf→node.
            self.spec.msg_overhead + self.spec.hop_latency * 4
        } else {
            self.base_latency()
        };
        self.ctx.sleep(latency).await;
        if bytes == 0 {
            return;
        }
        // Stream through every tier concurrently; completion is gated by
        // the slowest (most contended) stage. All flows join the
        // contention model at this same instant, so awaiting them in
        // sequence is equivalent to a concurrent join — a later await
        // returns immediately if its flow already finished. Only the
        // endpoint NICs count toward `bytes_moved`, so delivered-byte
        // accounting is topology-invariant.
        let tx_done = self.nic(src).tx.transfer_counted_start(bytes);
        let rx_done = self.nic(dst).rx.transfer_counted_start(bytes);
        if let Some((t, ls, ld)) = self.crossing(src, dst) {
            let up = t.leaves[ls].up.transfer_capped_start(bytes, None);
            let spine = t.spine.transfer_capped_start(bytes, None);
            let down = t.leaves[ld].down.transfer_capped_start(bytes, None);
            tx_done.await;
            up.await;
            spine.await;
            down.await;
        } else {
            tx_done.await;
        }
        rx_done.await;
    }

    /// RDMA read: the initiator on `initiator` pulls `bytes` from memory
    /// on `target`. Pays a request one-way latency, then the payload
    /// streams target→initiator.
    pub async fn rdma_read(&self, initiator: NodeId, target: NodeId, bytes: u64) {
        if initiator == target {
            self.ctx
                .sleep(SimDuration::from_secs_f64(bytes as f64 / self.mem_bw))
                .await;
            return;
        }
        // Request message (header only).
        self.ctx.sleep(self.base_latency()).await;
        // Data path back.
        self.send(target, initiator, bytes).await;
    }

    /// RDMA write: push `bytes` from `initiator` into memory on `target`.
    pub async fn rdma_write(&self, initiator: NodeId, target: NodeId, bytes: u64) {
        self.send(initiator, target, bytes).await;
    }

    /// Egress statistics for a node's NIC.
    pub fn tx_stats(&self, node: NodeId) -> BwStats {
        self.nic(node).tx.stats()
    }

    /// Ingress statistics for a node's NIC.
    pub fn rx_stats(&self, node: NodeId) -> BwStats {
        self.nic(node).rx.stats()
    }

    /// Number of leaf switches actually instantiated (1 for a flat
    /// fabric or a leaf/spine that degenerated to a single leaf).
    pub fn n_leaves(&self) -> usize {
        self.tiers.as_ref().map_or(1, |t| t.leaves.len())
    }

    /// Uplink statistics for leaf `leaf`, when switch tiers exist.
    pub fn uplink_stats(&self, leaf: usize) -> Option<BwStats> {
        Some(self.tiers.as_ref()?.leaves.get(leaf)?.up.stats())
    }

    /// Spine statistics, when switch tiers exist.
    pub fn spine_stats(&self) -> Option<BwStats> {
        Some(self.tiers.as_ref()?.spine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    fn fabric(sim: &Sim, n: usize) -> Fabric {
        Fabric::new(&sim.ctx(), n, FabricSpec::infiniband_qdr(), 20.0e9)
    }

    #[test]
    fn point_to_point_time_is_latency_plus_streaming() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(1), 4_000_000_000).await; // 1 s at 4 GB/s
            ctx.now().as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        // 1 µs overhead + 3 µs wire + 1 s payload.
        assert!((t - 1.000004).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn intra_node_send_uses_memory_bandwidth() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(0), 20_000_000_000).await; // 1 s at 20 GB/s
            ctx.now().as_secs_f64()
        });
        sim.run();
        assert!((h.try_take().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn incast_contends_on_receiver_nic() {
        // 4 senders to one receiver: rx port is the bottleneck, so each
        // 1 GB flow finishes in ~1 s (4 GB total at 4 GB/s), not 0.25 s.
        let sim = Sim::new(0);
        let f = fabric(&sim, 5);
        let mut hs = Vec::new();
        for s in 1..5u32 {
            let f = f.clone();
            let ctx = sim.ctx();
            hs.push(sim.spawn(async move {
                f.send(NodeId(s), NodeId(0), 1_000_000_000).await;
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        for h in hs {
            let t = h.try_take().unwrap();
            assert!((t - 1.000004).abs() < 1e-5, "took {t}");
        }
        assert_eq!(f.rx_stats(NodeId(0)).peak_concurrency, 4);
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let sim = Sim::new(0);
        let f = fabric(&sim, 4);
        let mut hs = Vec::new();
        for (s, d) in [(0u32, 1u32), (2, 3)] {
            let f = f.clone();
            let ctx = sim.ctx();
            hs.push(sim.spawn(async move {
                f.send(NodeId(s), NodeId(d), 4_000_000_000).await;
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        for h in hs {
            let t = h.try_take().unwrap();
            assert!((t - 1.000004).abs() < 1e-6, "took {t}");
        }
    }

    #[test]
    fn rdma_read_pays_round_trip() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.rdma_read(NodeId(0), NodeId(1), 0).await;
            ctx.now()
        });
        sim.run();
        // Two base latencies: request + response header.
        assert_eq!(h.try_take().unwrap().nanos(), 2 * (1_000 + 3_000));
    }

    #[test]
    fn zero_byte_message_costs_only_latency() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = fabric(&sim, 2);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(1), 0).await;
            ctx.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().nanos(), 4_000);
    }

    fn ls_fabric(sim: &Sim, n: usize, radix: u32, oversub: f64) -> Fabric {
        Fabric::new(
            &sim.ctx(),
            n,
            FabricSpec::infiniband_qdr().with_topology(TopologySpec::LeafSpine {
                radix,
                oversubscription: oversub,
            }),
            20.0e9,
        )
    }

    #[test]
    fn cross_leaf_message_pays_four_hops() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = ls_fabric(&sim, 4, 2, 1.0);
        assert_eq!(f.n_leaves(), 2);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(1), 0).await; // intra-leaf: 2 hops
            let intra = ctx.now();
            f.send(NodeId(0), NodeId(2), 0).await; // cross-leaf: 4 hops
            (intra, ctx.now())
        });
        sim.run();
        let (intra, both) = h.try_take().unwrap();
        assert_eq!(intra.nanos(), 1_000 + 2 * 1_500);
        assert_eq!(both.nanos() - intra.nanos(), 1_000 + 4 * 1_500);
    }

    #[test]
    fn single_leaf_leaf_spine_degenerates_to_flat() {
        // radix ≥ node count → no tiers are built at all, so the
        // schedule matches the flat switch exactly.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = ls_fabric(&sim, 2, 64, 1.0);
        assert_eq!(f.n_leaves(), 1);
        assert!(f.spine_stats().is_none());
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(1), 4_000_000_000).await;
            ctx.now().as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        assert!((t - 1.000004).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn nonblocking_leaf_spine_keeps_nic_bottleneck() {
        // Oversubscription 1.0 at radix 2: uplink carries 2 ports'
        // worth, so a single cross-leaf flow stays NIC-bound and only
        // the extra two hops distinguish it from the flat fabric.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = ls_fabric(&sim, 4, 2, 1.0);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(2), 4_000_000_000).await;
            ctx.now().as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        assert!((t - 1.000007).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_leaf() {
        // 4:1 oversubscription at radix 2: uplink rate is
        // 2 × 4 GB/s / 4 = 2 GB/s, half the NIC rate, so the same flow
        // takes twice as long as on the non-blocking fabric.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = ls_fabric(&sim, 4, 2, 4.0);
        let h = sim.spawn(async move {
            f.send(NodeId(0), NodeId(2), 4_000_000_000).await;
            ctx.now().as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        assert!((t - 2.000007).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn cross_leaf_flows_contend_on_shared_uplink() {
        // Two disjoint-NIC cross-leaf flows share leaf 0's uplink. At
        // 2:1 oversubscription the uplink (4 GB/s) splits two ways, so
        // both finish in ~2 s where the flat fabric gives ~1 s.
        let sim = Sim::new(0);
        let f = ls_fabric(&sim, 4, 2, 2.0);
        let mut hs = Vec::new();
        for (s, d) in [(0u32, 2u32), (1, 3)] {
            let f = f.clone();
            let ctx = sim.ctx();
            hs.push(sim.spawn(async move {
                f.send(NodeId(s), NodeId(d), 4_000_000_000).await;
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        for h in hs {
            let t = h.try_take().unwrap();
            assert!((t - 2.000007).abs() < 1e-5, "took {t}");
        }
        assert_eq!(f.uplink_stats(0).unwrap().peak_concurrency, 2);
    }

    #[test]
    fn intra_leaf_traffic_bypasses_the_tiers() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let f = ls_fabric(&sim, 4, 2, 4.0);
        let f2 = f.clone();
        let h = sim.spawn(async move {
            f2.send(NodeId(0), NodeId(1), 4_000_000_000).await;
            ctx.now().as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        assert!((t - 1.000004).abs() < 1e-6, "took {t}");
        assert_eq!(f.uplink_stats(0).unwrap().flows_served, 0);
        assert_eq!(f.spine_stats().unwrap().flows_served, 0);
    }

    mod conservation {
        use super::*;
        use proptest::prelude::*;

        // Conservation under arbitrary leaf/spine shapes: whatever the
        // radix, oversubscription or traffic mix, every byte sent is
        // delivered — tx totals, rx totals and the offered load all
        // agree, so no transfer is lost or duplicated in the tier
        // plumbing.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn delivered_bytes_conserved_under_arbitrary_shapes(
                n in 2usize..24,
                radix in 1u32..8,
                oversub_tenths in 5u32..80,
                transfers in proptest::collection::vec(
                    (0u32..24, 0u32..24, 1u64..2_000_000),
                    1..24,
                ),
            ) {
                let oversub = f64::from(oversub_tenths) / 10.0;
                let sim = Sim::new(0);
                let f = ls_fabric(&sim, n, radix, oversub);
                let mut total = 0u64;
                for (s, d, b) in transfers {
                    let (s, d) = (s % n as u32, d % n as u32);
                    if s == d {
                        continue; // intra-node copies bypass the NICs
                    }
                    total += b;
                    let f = f.clone();
                    sim.spawn(async move {
                        f.send(NodeId(s), NodeId(d), b).await;
                    });
                }
                let report = sim.run();
                prop_assert!(report.is_clean());
                let tx: u64 =
                    (0..n as u32).map(|i| f.tx_stats(NodeId(i)).bytes_moved).sum();
                let rx: u64 =
                    (0..n as u32).map(|i| f.rx_stats(NodeId(i)).bytes_moved).sum();
                prop_assert_eq!(tx, total);
                prop_assert_eq!(rx, total);
            }
        }
    }

    #[test]
    fn byte_accounting_is_topology_invariant() {
        // Only the endpoint NICs count bytes_moved; the tier flows are
        // modeled but uncounted, so delivered-byte totals match the flat
        // fabric under any leaf/spine shape.
        let sim = Sim::new(0);
        let f = ls_fabric(&sim, 4, 2, 4.0);
        let f2 = f.clone();
        sim.spawn(async move {
            f2.send(NodeId(0), NodeId(2), 1_000_000).await;
        });
        sim.run();
        assert_eq!(f.tx_stats(NodeId(0)).bytes_moved, 1_000_000);
        assert_eq!(f.rx_stats(NodeId(2)).bytes_moved, 1_000_000);
        assert_eq!(f.spine_stats().unwrap().bytes_moved, 0);
        assert_eq!(f.spine_stats().unwrap().flows_served, 1);
    }
}
