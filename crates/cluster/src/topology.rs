//! Cluster assembly: specs plus a builder that instantiates nodes and the
//! fabric inside a simulation.

use std::rc::Rc;

use simcore::Ctx;

use crate::fabric::{Fabric, FabricSpec};
use crate::node::{Node, NodeId, NodeSpec};

/// Static description of a whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// One spec per node.
    pub nodes: Vec<NodeSpec>,
    /// Interconnect parameters.
    pub fabric: FabricSpec,
}

impl ClusterSpec {
    /// A homogeneous cluster of `n` identical nodes.
    pub fn homogeneous(n: usize, node: NodeSpec, fabric: FabricSpec) -> Self {
        ClusterSpec {
            nodes: vec![node; n],
            fabric,
        }
    }

    /// An `n`-node Corona-like cluster (the paper's testbed: EPYC 7401 +
    /// 8×MI50 + 3.5 TB NVMe per node, InfiniBand QDR).
    pub fn corona(n: usize) -> Self {
        ClusterSpec::homogeneous(n, NodeSpec::corona(), FabricSpec::infiniband_qdr())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the spec has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// An instantiated cluster living inside one simulation.
pub struct Cluster {
    nodes: Vec<Rc<Node>>,
    fabric: Fabric,
}

impl Cluster {
    /// Instantiate every node and the fabric.
    pub fn build(ctx: &Ctx, spec: &ClusterSpec) -> Self {
        assert!(!spec.is_empty(), "cluster needs at least one node");
        let mem_bw = spec.nodes[0].mem_bw;
        let fabric = Fabric::new(ctx, spec.nodes.len(), spec.fabric, mem_bw);
        let nodes = spec
            .nodes
            .iter()
            .enumerate()
            .map(|(i, ns)| Rc::new(Node::new(ctx, NodeId(i as u32), *ns)))
            .collect();
        Cluster { nodes, fabric }
    }

    /// Node handle by id.
    pub fn node(&self, id: NodeId) -> Rc<Node> {
        self.nodes[id.0 as usize].clone()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Rc<Node>] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The interconnect.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    #[test]
    fn corona_preset_shapes() {
        let spec = ClusterSpec::corona(4);
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.nodes[0].gpus, 8);
        assert!((spec.fabric.link_bw - 4.0e9).abs() < 1.0);
    }

    #[test]
    fn build_wires_nodes_and_fabric() {
        let sim = Sim::new(0);
        let cl = Cluster::build(&sim.ctx(), &ClusterSpec::corona(3));
        assert_eq!(cl.len(), 3);
        assert_eq!(cl.fabric().n_nodes(), 3);
        assert_eq!(cl.node(NodeId(2)).id, NodeId(2));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        let sim = Sim::new(0);
        let _ = Cluster::build(
            &sim.ctx(),
            &ClusterSpec {
                nodes: vec![],
                fabric: FabricSpec::infiniband_qdr(),
            },
        );
    }
}
