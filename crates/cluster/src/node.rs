//! Compute nodes and their node-local NVMe storage.

use std::rc::Rc;

use simcore::resource::{BwStats, SharedBandwidth};
use simcore::{Ctx, SimDuration};

/// Identifies a node within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static description of one compute node.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// CPU cores (informational; processes are not core-scheduled).
    pub cores: u32,
    /// GPUs — the paper pins one producer or consumer per GPU, limiting
    /// placement to 8 processes per node on Corona.
    pub gpus: u32,
    /// NVMe sequential read bandwidth, bytes/second.
    pub nvme_read_bw: f64,
    /// NVMe sequential write bandwidth, bytes/second.
    pub nvme_write_bw: f64,
    /// Per-operation NVMe latency (submission + completion).
    pub nvme_op_latency: SimDuration,
    /// Memory copy bandwidth for intra-node data movement, bytes/second.
    pub mem_bw: f64,
}

impl NodeSpec {
    /// A Corona-like node: 48-core EPYC, 8×MI50, 3.5 TB NVMe.
    ///
    /// NVMe figures approximate a datacenter NVMe drive of that era:
    /// ~3 GB/s write, ~6 GB/s read, ~25 µs per operation.
    pub fn corona() -> Self {
        NodeSpec {
            cores: 48,
            gpus: 8,
            nvme_read_bw: 6.0e9,
            nvme_write_bw: 3.0e9,
            nvme_op_latency: SimDuration::from_micros(25),
            mem_bw: 20.0e9,
        }
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::corona()
    }
}

/// A node-local NVMe device.
///
/// Reads and writes are separate processor-sharing channels (NVMe devices
/// service both queues concurrently); every operation additionally pays a
/// fixed submission/completion latency.
#[derive(Clone)]
pub struct NvmeDevice {
    ctx: Ctx,
    read_bw: SharedBandwidth,
    write_bw: SharedBandwidth,
    op_latency: SimDuration,
    slow_probe: Option<Rc<dyn Fn() -> f64>>,
}

impl NvmeDevice {
    /// Build a device from a node spec.
    pub fn new(ctx: &Ctx, spec: &NodeSpec) -> Self {
        NvmeDevice {
            ctx: ctx.clone(),
            read_bw: SharedBandwidth::new(ctx, spec.nvme_read_bw),
            write_bw: SharedBandwidth::new(ctx, spec.nvme_write_bw),
            op_latency: spec.nvme_op_latency,
            slow_probe: None,
        }
    }

    /// Attach a degradation probe: a closure returning the current
    /// service-time multiplier (1.0 = healthy). Sampled once per
    /// operation, at submission. Used by the fault-injection layer;
    /// without a probe the device behaves exactly as before.
    pub fn set_slow_probe(&mut self, probe: Rc<dyn Fn() -> f64>) {
        self.slow_probe = Some(probe);
    }

    /// Current degradation factor (1.0 when no probe is attached).
    fn slow_factor(&self) -> f64 {
        self.slow_probe.as_ref().map_or(1.0, |p| p())
    }

    /// Stretch a finished operation by `factor − 1` of its duration, so a
    /// degraded device serves everything proportionally slower. No-op at
    /// factor 1.0 (adds no events on healthy paths).
    async fn stretch(&self, started: simcore::SimTime, factor: f64) {
        if factor > 1.0 {
            let elapsed = self.ctx.now().since(started);
            self.ctx.sleep(elapsed.mul_f64(factor - 1.0)).await;
        }
    }

    /// Read `bytes` from the device.
    pub async fn read(&self, bytes: u64) {
        let (t0, factor) = (self.ctx.now(), self.slow_factor());
        self.ctx.sleep(self.op_latency).await;
        self.read_bw.transfer_counted(bytes).await;
        self.stretch(t0, factor).await;
    }

    /// Write `bytes` to the device.
    pub async fn write(&self, bytes: u64) {
        let (t0, factor) = (self.ctx.now(), self.slow_factor());
        self.ctx.sleep(self.op_latency).await;
        self.write_bw.transfer_counted(bytes).await;
        self.stretch(t0, factor).await;
    }

    /// A small metadata-sized write (journal record, inode update).
    pub async fn write_small(&self, bytes: u64) {
        self.write(bytes).await;
    }

    /// Per-operation latency.
    pub fn op_latency(&self) -> SimDuration {
        self.op_latency
    }

    /// Read-channel statistics.
    pub fn read_stats(&self) -> BwStats {
        self.read_bw.stats()
    }

    /// Write-channel statistics.
    pub fn write_stats(&self) -> BwStats {
        self.write_bw.stats()
    }
}

/// A compute node: spec plus its NVMe device.
pub struct Node {
    /// This node's id within the cluster.
    pub id: NodeId,
    /// Static hardware description.
    pub spec: NodeSpec,
    /// The node-local NVMe device.
    pub nvme: NvmeDevice,
}

impl Node {
    /// Build a node.
    pub fn new(ctx: &Ctx, id: NodeId, spec: NodeSpec) -> Self {
        Node {
            id,
            spec,
            nvme: NvmeDevice::new(ctx, &spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    #[test]
    fn nvme_write_charges_latency_plus_bandwidth() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let spec = NodeSpec::corona();
        let dev = NvmeDevice::new(&ctx, &spec);
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            dev.write(3_000_000_000).await; // 1 s at 3 GB/s
            ctx2.now().as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        assert!((t - 1.000025).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn nvme_reads_and_writes_do_not_contend() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        let r = {
            let dev = dev.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                dev.read(6_000_000_000).await; // 1 s at 6 GB/s
                ctx.now().as_secs_f64()
            })
        };
        let w = {
            let dev = dev.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                dev.write(3_000_000_000).await; // 1 s at 3 GB/s
                ctx.now().as_secs_f64()
            })
        };
        sim.run();
        assert!((r.try_take().unwrap() - 1.000025).abs() < 1e-6);
        assert!((w.try_take().unwrap() - 1.000025).abs() < 1e-6);
    }

    #[test]
    fn slow_probe_stretches_service_time() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let mut dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        let factor = Rc::new(std::cell::Cell::new(1.0f64));
        let f2 = factor.clone();
        dev.set_slow_probe(Rc::new(move || f2.get()));
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            dev.write(3_000_000_000).await; // 1 s healthy
            let healthy = ctx2.now().as_secs_f64();
            factor.set(3.0);
            dev.write(3_000_000_000).await; // 3 s degraded
            (healthy, ctx2.now().as_secs_f64())
        });
        sim.run();
        let (healthy, done) = h.try_take().unwrap();
        assert!((healthy - 1.000025).abs() < 1e-6, "healthy took {healthy}");
        assert!(
            (done - healthy - 3.000075).abs() < 1e-6,
            "degraded end {done}"
        );
    }

    #[test]
    fn concurrent_writes_share_bandwidth() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let dev = NvmeDevice::new(&ctx, &NodeSpec::corona());
        let mut hs = Vec::new();
        for _ in 0..4 {
            let dev = dev.clone();
            let ctx = ctx.clone();
            hs.push(sim.spawn(async move {
                dev.write(750_000_000).await; // 4 × 0.75 GB on 3 GB/s -> 1 s total
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        for h in hs {
            let t = h.try_take().unwrap();
            assert!((t - 1.000025).abs() < 1e-6, "took {t}");
        }
        assert_eq!(dev.write_stats().peak_concurrency, 4);
    }
}
