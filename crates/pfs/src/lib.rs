//! # pfs — a Lustre-like parallel filesystem
//!
//! The paper's multi-node baseline moves every frame through Lustre. This
//! crate reimplements the Lustre architecture at the level the
//! experiments observe:
//!
//! * an **MDS** owning the namespace — every create/open/close(setattr)/
//!   unlink is a metadata RPC with real service-queue contention;
//! * **OSTs** (object storage targets) behind OSS request queues, each
//!   with its own backing-disk bandwidth shared among *all* clients —
//!   the cluster-wide shared-storage bottleneck;
//! * **striped layouts** (RAID-0 across OSTs) with parallel per-stripe
//!   bulk I/O from the client;
//! * optional **background interference** per OST, reproducing the
//!   variability the paper attributes to other jobs on the system.
//!
//! Object contents are real bytes; a striped write read back through a
//! different client is bit-identical.

#![warn(missing_docs)]

mod client;
mod codec;
mod ldlm;
mod server;

pub use client::{PfsClient, PfsError, PfsFd};
pub use codec::{Layout, MdsRequest, MdsResponse, OssRequest, OssResponse};
pub use ldlm::{LdlmClient, LdlmServer, LdlmSpec, LdlmStats, LockMode, LDLM_AM};
pub use server::{MdsServer, MdsStats, OstServer, OstStats, PfsSpec, MDS_AM, OSS_AM_BASE};

use cluster::NodeId;
use simcore::Ctx;
use std::rc::Rc;
use transport::Transport;

/// A fully assembled Lustre-like filesystem: MDS + OSTs + client factory.
pub struct ParallelFs {
    mds: Rc<MdsServer>,
    osts: Vec<Rc<OstServer>>,
    ost_nodes: Vec<NodeId>,
    tp: Transport,
    spec: PfsSpec,
}

impl ParallelFs {
    /// Start the MDS on `mds_node` and one OST on each of `ost_nodes`.
    /// If `spec.interference > 0`, each OST gets a background-load
    /// process.
    pub fn start(
        ctx: &Ctx,
        tp: &Transport,
        mds_node: NodeId,
        ost_nodes: Vec<NodeId>,
        spec: PfsSpec,
    ) -> Self {
        let mds = MdsServer::start(ctx, tp, mds_node, ost_nodes.len() as u32, spec);
        let osts: Vec<Rc<OstServer>> = ost_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| OstServer::start(ctx, tp, node, i as u32, spec))
            .collect();
        for (i, ost) in osts.iter().enumerate() {
            ost.spawn_interference(ctx, &spec, i as u64);
        }
        ParallelFs {
            mds,
            osts,
            ost_nodes,
            tp: tp.clone(),
            spec,
        }
    }

    /// Create a client on `node`.
    pub fn client(&self, ctx: &Ctx, node: NodeId) -> PfsClient {
        PfsClient::new(
            ctx,
            &self.tp,
            node,
            self.mds.node(),
            self.ost_nodes.clone(),
            self.spec,
        )
    }

    /// The metadata server.
    pub fn mds(&self) -> &Rc<MdsServer> {
        &self.mds
    }

    /// The object servers.
    pub fn osts(&self) -> &[Rc<OstServer>] {
        &self.osts
    }

    /// The spec the filesystem was started with.
    pub fn spec(&self) -> PfsSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use cluster::{Cluster, ClusterSpec};
    use simcore::{Sim, SimDuration};
    use transport::TransportSpec;

    /// Cluster layout for tests: node 0 = MDS, nodes 1..=n_ost = OSTs,
    /// remaining nodes are compute.
    fn setup(sim: &Sim, n_ost: usize, n_compute: usize) -> ParallelFs {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(1 + n_ost + n_compute));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let ost_nodes = (1..=n_ost as u32).map(NodeId).collect();
        ParallelFs::start(&ctx, &tp, NodeId(0), ost_nodes, PfsSpec::default())
    }

    #[test]
    fn write_read_round_trip_across_clients() {
        let sim = Sim::new(0);
        let fs = setup(&sim, 4, 2);
        let ctx = sim.ctx();
        let w = fs.client(&ctx, NodeId(5));
        let r = fs.client(&ctx, NodeId(6));
        let payload: Vec<u8> = (0..3_000_000u32).map(|i| (i % 253) as u8).collect();
        let expect = Bytes::from(payload.clone());
        let done = simcore::sync::Notify::new();
        {
            let done = done.clone();
            sim.spawn(async move {
                let fd = w.create("/runs/frame0").await.unwrap();
                w.write(fd, &payload).await.unwrap();
                w.close(fd).await.unwrap();
                done.notify_all();
            });
        }
        let h = sim.spawn(async move {
            done.wait().await;
            let fd = r.open("/runs/frame0").await.unwrap();
            let data = r.read_to_end(fd).await.unwrap();
            r.close(fd).await.unwrap();
            data
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), expect);
    }

    #[test]
    fn striping_spreads_bytes_across_osts() {
        let sim = Sim::new(0);
        let fs = setup(&sim, 4, 1);
        let ctx = sim.ctx();
        let c = fs.client(&ctx, NodeId(5));
        sim.spawn(async move {
            let fd = c.create("/big").await.unwrap();
            c.write(fd, &vec![1u8; 8 << 20]).await.unwrap(); // 8 MiB over 1 MiB stripes
            c.close(fd).await.unwrap();
        });
        sim.run();
        for ost in fs.osts() {
            let st = ost.stats();
            assert_eq!(st.bytes_written, 2 << 20, "ost {}", ost.index());
        }
    }

    #[test]
    fn open_missing_file_errors() {
        let sim = Sim::new(0);
        let fs = setup(&sim, 2, 1);
        let c = fs.client(&sim.ctx(), NodeId(3));
        let h = sim.spawn(async move { c.open("/ghost").await.err() });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(PfsError::NotFound));
    }

    #[test]
    fn size_is_visible_after_close() {
        let sim = Sim::new(0);
        let fs = setup(&sim, 2, 1);
        let c = fs.client(&sim.ctx(), NodeId(3));
        let h = sim.spawn(async move {
            let fd = c.create("/f").await.unwrap();
            c.write(fd, &[9u8; 1234]).await.unwrap();
            c.close(fd).await.unwrap();
            c.stat("/f").await.unwrap().1
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 1234);
    }

    #[test]
    fn unlink_destroys_objects() {
        let sim = Sim::new(0);
        let fs = setup(&sim, 2, 1);
        let c = fs.client(&sim.ctx(), NodeId(3));
        let h = sim.spawn(async move {
            let fd = c.create("/f").await.unwrap();
            c.write(fd, &[0u8; 4 << 20]).await.unwrap();
            c.close(fd).await.unwrap();
            c.unlink("/f").await.unwrap();
            c.open("/f").await.err()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(PfsError::NotFound));
        for ost in fs.osts() {
            assert_eq!(ost.object_count(), 0);
        }
    }

    #[test]
    fn every_byte_crosses_the_network() {
        // Unlike node-local storage, a 4 MB Lustre write must stream
        // through the writer's NIC.
        let sim = Sim::new(0);
        let fs = setup(&sim, 2, 1);
        let ctx = sim.ctx();
        let c = fs.client(&ctx, NodeId(3));
        let cl_ref = {
            // Rebuild a fabric reference via the transport in ParallelFs.
            fs.tp.fabric().clone()
        };
        sim.spawn(async move {
            let fd = c.create("/n").await.unwrap();
            c.write(fd, &vec![0u8; 4_000_000]).await.unwrap();
            c.close(fd).await.unwrap();
        });
        sim.run();
        let sent = cl_ref.tx_stats(NodeId(3)).bytes_moved;
        assert!(sent >= 4_000_000, "only {sent} bytes left the client NIC");
    }

    #[test]
    fn concurrent_clients_contend_on_shared_osts() {
        // 8 clients × 4 MB to a 2-OST fs: aggregate disk bandwidth is the
        // bottleneck, so each write takes far longer than solo.
        let sim = Sim::new(0);
        let fs = setup(&sim, 2, 8);
        let ctx = sim.ctx();
        let mut hs = Vec::new();
        for i in 0..8u32 {
            let c = fs.client(&ctx, NodeId(3 + i));
            let ctx2 = ctx.clone();
            hs.push(sim.spawn(async move {
                let fd = c.create(&format!("/c{i}")).await.unwrap();
                let t0 = ctx2.now();
                c.write(fd, &vec![0u8; 4_000_000]).await.unwrap();
                c.close(fd).await.unwrap();
                (ctx2.now() - t0).as_secs_f64()
            }));
        }
        sim.run();
        let times: Vec<f64> = hs.into_iter().map(|h| h.try_take().unwrap()).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        // 32 MB total over ~4.5 GB/s aggregate ≈ 7 ms; solo would be ~2 ms.
        assert!(mean > 0.004, "mean write took {mean}s — no contention?");
    }

    #[test]
    fn mds_counts_metadata_ops() {
        let sim = Sim::new(0);
        let fs = setup(&sim, 2, 1);
        let c = fs.client(&sim.ctx(), NodeId(3));
        sim.spawn(async move {
            for i in 0..5 {
                let fd = c.create(&format!("/f{i}")).await.unwrap();
                c.write(fd, b"x").await.unwrap();
                c.close(fd).await.unwrap();
            }
        });
        sim.run();
        let st = fs.mds().stats();
        assert_eq!(st.creates, 5);
        assert_eq!(st.setattrs, 5);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn striped_rope_writes_read_back_exactly(
                segments in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..40_000), 1..6),
                stripe_kib in 1u64..64,
            ) {
                let sim = Sim::new(0);
                let ctx = sim.ctx();
                let cl = Cluster::build(&ctx, &ClusterSpec::corona(3));
                let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
                let spec = PfsSpec {
                    stripe_size: stripe_kib * 1024,
                    ..PfsSpec::default()
                };
                let fs = ParallelFs::start(&ctx, &tp, NodeId(0), vec![NodeId(1)], spec);
                let c = fs.client(&ctx, NodeId(2));
                let expect: Vec<u8> = segments.concat();
                let rope: Vec<Bytes> = segments.into_iter().map(Bytes::from).collect();
                let h = sim.spawn(async move {
                    let fd = c.create("/p").await.unwrap();
                    c.write_segments(fd, rope).await.unwrap();
                    c.close(fd).await.unwrap();
                    let fd = c.open("/p").await.unwrap();
                    let back = c.read_to_end(fd).await.unwrap();
                    c.close(fd).await.unwrap();
                    back
                });
                prop_assert!(sim.run().is_clean());
                prop_assert_eq!(h.try_take().unwrap(), Bytes::from(expect));
            }
        }
    }

    #[test]
    fn interference_slows_bulk_io() {
        // Sustained writes on a noisy OST must take measurably longer
        // than on a quiet one. Measure many writes so that bursty
        // interference cannot be dodged by luck.
        fn run(interference: f64) -> f64 {
            let sim = Sim::new(3);
            let ctx = sim.ctx();
            let cl = Cluster::build(&ctx, &ClusterSpec::corona(3));
            let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
            // Raise the client stream caps so the OST disk (where the
            // interference lives) is the bottleneck under test.
            let spec = PfsSpec {
                interference,
                burst_cap: 4.0e9,
                sustained_cap: 4.0e9,
                ..PfsSpec::default()
            };
            let fs = ParallelFs::start(&ctx, &tp, NodeId(0), vec![NodeId(1)], spec);
            let c = fs.client(&ctx, NodeId(2));
            let ctx2 = ctx.clone();
            let h = sim.spawn(async move {
                ctx2.sleep(SimDuration::from_millis(10)).await;
                let t0 = ctx2.now();
                for i in 0..20 {
                    let fd = c.create(&format!("/x{i}")).await.unwrap();
                    c.write(fd, &vec![0u8; 16_000_000]).await.unwrap();
                    c.close(fd).await.unwrap();
                }
                (ctx2.now() - t0).as_secs_f64()
            });
            sim.run_until(simcore::SimTime::from_nanos(60_000_000_000));
            h.try_take().unwrap()
        }
        let quiet = run(0.0);
        let noisy = run(0.8);
        assert!(
            noisy > quiet * 1.10,
            "interference had no effect: quiet={quiet}s noisy={noisy}s"
        );
    }
}
