//! A Lustre-DLM-flavoured distributed lock service.
//!
//! The paper (§III) lists "file system locks" among the manual
//! synchronization options for producer-consumer workflows on shared
//! filesystems. This module provides that primitive: a lock server
//! colocated with the MDS granting whole-file **PR** (protected read,
//! shared) and **EX** (exclusive) locks with FIFO queuing, and blocking
//! RPCs from any client. Each operation costs a fabric round trip plus
//! server service time, so lock-based synchronization carries realistic
//! latency in the experiments.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cluster::NodeId;
use simcore::intern::{intern, FxHashMap, Symbol};
use simcore::resource::FifoResource;
use simcore::sync::Notify;
use simcore::{Ctx, SimDuration};
use transport::{AmId, Endpoint, LocalBoxFuture, Transport};

/// The AM id of the lock server.
pub const LDLM_AM: AmId = AmId(0x4C44);

/// Lock compatibility modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Protected read: compatible with other PR holders.
    ProtectedRead,
    /// Exclusive: compatible with nothing.
    Exclusive,
}

/// Counters for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdlmStats {
    /// Grants issued (including after waiting).
    pub grants: u64,
    /// Requests that had to queue.
    pub waits: u64,
    /// Releases processed.
    pub releases: u64,
}

#[derive(Default)]
struct LockState {
    readers: u32,
    writer: bool,
    queue: Notify,
}

struct ServerState {
    // Lock names intern once per RPC; repeated lock/unlock cycles on the
    // same resource hash a 4-byte symbol.
    locks: FxHashMap<Symbol, Rc<RefCell<LockState>>>,
    stats: LdlmStats,
}

/// The lock server (start it on the MDS node).
pub struct LdlmServer {
    node: NodeId,
    state: Rc<RefCell<ServerState>>,
}

/// Lock service tuning.
#[derive(Debug, Clone, Copy)]
pub struct LdlmSpec {
    /// Service time per lock operation.
    pub service_time: SimDuration,
    /// Parallel service threads.
    pub threads: u64,
}

impl Default for LdlmSpec {
    fn default() -> Self {
        LdlmSpec {
            service_time: SimDuration::from_micros(100),
            threads: 16,
        }
    }
}

const OP_LOCK_PR: u8 = 1;
const OP_LOCK_EX: u8 = 2;
const OP_UNLOCK_PR: u8 = 3;
const OP_UNLOCK_EX: u8 = 4;

fn encode_req(op: u8, path: &str) -> Bytes {
    let mut b = BytesMut::with_capacity(3 + path.len());
    b.put_u8(op);
    b.put_u16(path.len() as u16);
    b.put_slice(path.as_bytes());
    b.freeze()
}

fn decode_req(mut raw: Bytes) -> (u8, String) {
    let op = raw.get_u8();
    let len = raw.get_u16() as usize;
    let path = String::from_utf8(raw.split_to(len).to_vec()).expect("utf-8 path");
    (op, path)
}

impl LdlmServer {
    /// Start the lock server on `node`.
    pub fn start(ctx: &Ctx, tp: &Transport, node: NodeId, spec: LdlmSpec) -> Rc<LdlmServer> {
        let state = Rc::new(RefCell::new(ServerState {
            locks: FxHashMap::default(),
            stats: LdlmStats::default(),
        }));
        let service = FifoResource::new(ctx, spec.threads);
        let hstate = state.clone();
        tp.register_am(
            node,
            LDLM_AM,
            Rc::new(move |raw: Bytes| {
                let state = hstate.clone();
                let service = service.clone();
                Box::pin(async move {
                    service.request(spec.service_time).await;
                    let (op, path) = decode_req(raw);
                    let lock = state
                        .borrow_mut()
                        .locks
                        .entry(intern(&path))
                        .or_default()
                        .clone();
                    match op {
                        OP_LOCK_PR | OP_LOCK_EX => {
                            let exclusive = op == OP_LOCK_EX;
                            let mut waited = false;
                            loop {
                                let wait = {
                                    let mut st = lock.borrow_mut();
                                    let ok = if exclusive {
                                        !st.writer && st.readers == 0
                                    } else {
                                        !st.writer
                                    };
                                    if ok {
                                        if exclusive {
                                            st.writer = true;
                                        } else {
                                            st.readers += 1;
                                        }
                                        let mut sv = state.borrow_mut();
                                        sv.stats.grants += 1;
                                        if waited {
                                            sv.stats.waits += 1;
                                        }
                                        break;
                                    }
                                    waited = true;
                                    st.queue.clone()
                                };
                                wait.wait().await;
                            }
                        }
                        OP_UNLOCK_PR | OP_UNLOCK_EX => {
                            let mut st = lock.borrow_mut();
                            if op == OP_UNLOCK_EX {
                                assert!(st.writer, "unlock without EX lock");
                                st.writer = false;
                            } else {
                                assert!(st.readers > 0, "unlock without PR lock");
                                st.readers -= 1;
                            }
                            st.queue.notify_all();
                            state.borrow_mut().stats.releases += 1;
                        }
                        other => panic!("unknown ldlm op {other}"),
                    }
                    Bytes::new()
                }) as LocalBoxFuture<Bytes>
            }),
        );
        Rc::new(LdlmServer { node, state })
    }

    /// Node hosting the lock server.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Operation counters.
    pub fn stats(&self) -> LdlmStats {
        self.state.borrow().stats
    }
}

/// Client handle to the lock service.
#[derive(Clone)]
pub struct LdlmClient {
    ep: Endpoint,
    server: NodeId,
}

impl LdlmClient {
    /// Create a client on `node` against the server on `server`.
    pub fn new(_ctx: &Ctx, tp: &Transport, node: NodeId, server: NodeId) -> Self {
        LdlmClient {
            ep: tp.endpoint(node),
            server,
        }
    }

    /// Acquire a lock, blocking (inside the server) until compatible.
    pub async fn lock(&self, path: &str, mode: LockMode) {
        let op = match mode {
            LockMode::ProtectedRead => OP_LOCK_PR,
            LockMode::Exclusive => OP_LOCK_EX,
        };
        self.ep
            .rpc(self.server, LDLM_AM, encode_req(op, path))
            .await;
    }

    /// Release a previously granted lock.
    pub async fn unlock(&self, path: &str, mode: LockMode) {
        let op = match mode {
            LockMode::ProtectedRead => OP_UNLOCK_PR,
            LockMode::Exclusive => OP_UNLOCK_EX,
        };
        self.ep
            .rpc(self.server, LDLM_AM, encode_req(op, path))
            .await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use simcore::{Sim, SimDuration};
    use transport::TransportSpec;

    struct Rig {
        sim: Sim,
        tp: Transport,
        server: Rc<LdlmServer>,
    }

    fn rig(nodes: usize) -> Rig {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(nodes));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let server = LdlmServer::start(&ctx, &tp, NodeId(0), LdlmSpec::default());
        Rig { sim, tp, server }
    }

    #[test]
    fn exclusive_lock_serializes_cross_node_writers() {
        let r = rig(3);
        let ctx = r.sim.ctx();
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        for node in [1u32, 2u32] {
            let c = LdlmClient::new(&ctx, &r.tp, NodeId(node), NodeId(0));
            let ctx2 = ctx.clone();
            let order = order.clone();
            r.sim.spawn(async move {
                // Node 1 asks first (tiny head start).
                ctx2.sleep(SimDuration::from_micros(node as u64)).await;
                c.lock("/f", LockMode::Exclusive).await;
                order.borrow_mut().push(node);
                ctx2.sleep(SimDuration::from_millis(5)).await;
                c.unlock("/f", LockMode::Exclusive).await;
            });
        }
        assert!(r.sim.run().is_clean());
        assert_eq!(*order.borrow(), vec![1, 2]);
        assert_eq!(r.server.stats().grants, 2);
        assert_eq!(r.server.stats().waits, 1);
    }

    #[test]
    fn readers_share_but_exclude_writers() {
        let r = rig(4);
        let ctx = r.sim.ctx();
        let peak_readers = Rc::new(std::cell::Cell::new(0u32));
        let active = Rc::new(std::cell::Cell::new(0u32));
        for node in [1u32, 2u32] {
            let c = LdlmClient::new(&ctx, &r.tp, NodeId(node), NodeId(0));
            let ctx2 = ctx.clone();
            let (peak, act) = (peak_readers.clone(), active.clone());
            r.sim.spawn(async move {
                c.lock("/shared", LockMode::ProtectedRead).await;
                act.set(act.get() + 1);
                peak.set(peak.get().max(act.get()));
                ctx2.sleep(SimDuration::from_millis(3)).await;
                act.set(act.get() - 1);
                c.unlock("/shared", LockMode::ProtectedRead).await;
            });
        }
        let writer_done = {
            let c = LdlmClient::new(&ctx, &r.tp, NodeId(3), NodeId(0));
            let ctx2 = ctx.clone();
            r.sim.spawn(async move {
                ctx2.sleep(SimDuration::from_micros(500)).await;
                c.lock("/shared", LockMode::Exclusive).await;
                let at = ctx2.now();
                c.unlock("/shared", LockMode::Exclusive).await;
                at.as_secs_f64()
            })
        };
        assert!(r.sim.run().is_clean());
        assert_eq!(peak_readers.get(), 2, "readers should overlap");
        // The writer had to wait out the readers' 3 ms hold.
        assert!(writer_done.try_take().unwrap() >= 0.003);
    }

    #[test]
    fn locks_on_different_paths_are_independent() {
        let r = rig(2);
        let ctx = r.sim.ctx();
        let c = LdlmClient::new(&ctx, &r.tp, NodeId(1), NodeId(0));
        let h = r.sim.spawn(async move {
            c.lock("/a", LockMode::Exclusive).await;
            // No deadlock: /b is a different resource.
            c.lock("/b", LockMode::Exclusive).await;
            c.unlock("/a", LockMode::Exclusive).await;
            c.unlock("/b", LockMode::Exclusive).await;
            true
        });
        assert!(r.sim.run().is_clean());
        assert!(h.try_take().unwrap());
    }

    #[test]
    fn lock_rpc_costs_a_round_trip() {
        let r = rig(2);
        let ctx = r.sim.ctx();
        let c = LdlmClient::new(&ctx, &r.tp, NodeId(1), NodeId(0));
        let ctx2 = ctx.clone();
        let h = r.sim.spawn(async move {
            let t0 = ctx2.now();
            c.lock("/x", LockMode::ProtectedRead).await;
            (ctx2.now() - t0).micros()
        });
        r.sim.run();
        let us = h.try_take().unwrap();
        // Fabric round trip (~8 µs) + 100 µs service.
        assert!((100..200).contains(&us), "lock took {us} µs");
    }
}
