//! Wire codec for MDS and OSS RPCs.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// File layout: which objects on which OSTs hold the file's stripes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Stripe width in bytes.
    pub stripe_size: u64,
    /// OST index per stripe column.
    pub osts: Vec<u32>,
    /// Object id per stripe column (parallel to `osts`).
    pub objects: Vec<u64>,
}

impl Layout {
    /// Number of stripe columns.
    pub fn stripe_count(&self) -> usize {
        self.osts.len()
    }

    /// Map a byte range onto per-object chunks: returns
    /// `(column, object_offset, len)` triples covering
    /// `offset..offset+len` in file order.
    pub fn chunks(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        let sc = self.stripe_count() as u64;
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe_idx = pos / self.stripe_size;
            let within = pos % self.stripe_size;
            let column = (stripe_idx % sc) as usize;
            let row = stripe_idx / sc;
            let take = (self.stripe_size - within).min(end - pos);
            out.push((column, row * self.stripe_size + within, take));
            pos += take;
        }
        out
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64(self.stripe_size);
        buf.put_u16(self.osts.len() as u16);
        for (&o, &obj) in self.osts.iter().zip(&self.objects) {
            buf.put_u32(o);
            buf.put_u64(obj);
        }
    }

    fn decode_from(raw: &mut Bytes) -> Layout {
        let stripe_size = raw.get_u64();
        let n = raw.get_u16() as usize;
        let mut osts = Vec::with_capacity(n);
        let mut objects = Vec::with_capacity(n);
        for _ in 0..n {
            osts.push(raw.get_u32());
            objects.push(raw.get_u64());
        }
        Layout {
            stripe_size,
            osts,
            objects,
        }
    }
}

/// MDS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsRequest {
    /// Create (or truncate) a file and return its layout.
    Create {
        /// Full path.
        path: String,
    },
    /// Open an existing file: layout + current size.
    Open {
        /// Full path.
        path: String,
    },
    /// Record the file size at close.
    SetSize {
        /// Full path.
        path: String,
        /// New size in bytes.
        size: u64,
    },
    /// Remove the file.
    Unlink {
        /// Full path.
        path: String,
    },
    /// Stat the file.
    Stat {
        /// Full path.
        path: String,
    },
}

/// MDS responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsResponse {
    /// Layout (+size for open/stat).
    Meta {
        /// File layout.
        layout: Layout,
        /// Size known to the MDS.
        size: u64,
    },
    /// Operation acknowledged.
    Ok,
    /// Path missing.
    NotFound,
}

/// OSS (object server) operations. Bulk data never travels inside the
/// header — it rides the RPC's zero-copy payload (see
/// [`transport::Endpoint::bulk_rpc`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OssRequest {
    /// Write the RPC payload into `object` at `offset`.
    Write {
        /// Target object.
        object: u64,
        /// Byte offset inside the object.
        offset: u64,
        /// Payload length (must equal the attached payload's length).
        len: u64,
        /// Size of the whole logical client I/O this chunk belongs to
        /// (drives the burst-vs-sustained rate decision, modelling the
        /// Lustre client cache: small I/Os are absorbed at wire rate,
        /// large ones run at the facility's sustained per-stream rate).
        total: u64,
    },
    /// Read `len` bytes from `object` at `offset`.
    Read {
        /// Target object.
        object: u64,
        /// Byte offset inside the object.
        offset: u64,
        /// Length to read.
        len: u64,
        /// Size of the whole logical client I/O (see `Write::total`).
        total: u64,
    },
    /// Drop an object.
    Destroy {
        /// Target object.
        object: u64,
    },
}

/// OSS responses. Read data rides the RPC's zero-copy payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OssResponse {
    /// Write/destroy acknowledged.
    Ok,
    /// Read served; the payload carries `len` bytes.
    Data {
        /// Length of the attached payload.
        len: u64,
    },
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(raw: &mut Bytes) -> String {
    let len = raw.get_u16() as usize;
    String::from_utf8(raw.split_to(len).to_vec()).expect("paths are UTF-8")
}

impl MdsRequest {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            MdsRequest::Create { path } => {
                buf.put_u8(1);
                put_str(&mut buf, path);
            }
            MdsRequest::Open { path } => {
                buf.put_u8(2);
                put_str(&mut buf, path);
            }
            MdsRequest::SetSize { path, size } => {
                buf.put_u8(3);
                put_str(&mut buf, path);
                buf.put_u64(*size);
            }
            MdsRequest::Unlink { path } => {
                buf.put_u8(4);
                put_str(&mut buf, path);
            }
            MdsRequest::Stat { path } => {
                buf.put_u8(5);
                put_str(&mut buf, path);
            }
        }
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut raw: Bytes) -> MdsRequest {
        match raw.get_u8() {
            1 => MdsRequest::Create {
                path: get_str(&mut raw),
            },
            2 => MdsRequest::Open {
                path: get_str(&mut raw),
            },
            3 => {
                let path = get_str(&mut raw);
                let size = raw.get_u64();
                MdsRequest::SetSize { path, size }
            }
            4 => MdsRequest::Unlink {
                path: get_str(&mut raw),
            },
            5 => MdsRequest::Stat {
                path: get_str(&mut raw),
            },
            op => panic!("unknown mds op {op}"),
        }
    }
}

impl MdsResponse {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            MdsResponse::Meta { layout, size } => {
                buf.put_u8(1);
                layout.encode_into(&mut buf);
                buf.put_u64(*size);
            }
            MdsResponse::Ok => buf.put_u8(2),
            MdsResponse::NotFound => buf.put_u8(3),
        }
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut raw: Bytes) -> MdsResponse {
        match raw.get_u8() {
            1 => {
                let layout = Layout::decode_from(&mut raw);
                let size = raw.get_u64();
                MdsResponse::Meta { layout, size }
            }
            2 => MdsResponse::Ok,
            3 => MdsResponse::NotFound,
            op => panic!("unknown mds response {op}"),
        }
    }
}

impl OssRequest {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            OssRequest::Write {
                object,
                offset,
                len,
                total,
            } => {
                buf.put_u8(1);
                buf.put_u64(*object);
                buf.put_u64(*offset);
                buf.put_u64(*len);
                buf.put_u64(*total);
            }
            OssRequest::Read {
                object,
                offset,
                len,
                total,
            } => {
                buf.put_u8(2);
                buf.put_u64(*object);
                buf.put_u64(*offset);
                buf.put_u64(*len);
                buf.put_u64(*total);
            }
            OssRequest::Destroy { object } => {
                buf.put_u8(3);
                buf.put_u64(*object);
            }
        }
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut raw: Bytes) -> OssRequest {
        match raw.get_u8() {
            1 => {
                let object = raw.get_u64();
                let offset = raw.get_u64();
                let len = raw.get_u64();
                let total = raw.get_u64();
                OssRequest::Write {
                    object,
                    offset,
                    len,
                    total,
                }
            }
            2 => {
                let object = raw.get_u64();
                let offset = raw.get_u64();
                let len = raw.get_u64();
                let total = raw.get_u64();
                OssRequest::Read {
                    object,
                    offset,
                    len,
                    total,
                }
            }
            3 => OssRequest::Destroy {
                object: raw.get_u64(),
            },
            op => panic!("unknown oss op {op}"),
        }
    }
}

impl OssResponse {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            OssResponse::Ok => buf.put_u8(1),
            OssResponse::Data { len } => {
                buf.put_u8(2);
                buf.put_u64(*len);
            }
        }
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut raw: Bytes) -> OssResponse {
        match raw.get_u8() {
            1 => OssResponse::Ok,
            2 => OssResponse::Data { len: raw.get_u64() },
            op => panic!("unknown oss response {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout2() -> Layout {
        Layout {
            stripe_size: 1024,
            osts: vec![0, 1],
            objects: vec![100, 101],
        }
    }

    #[test]
    fn chunks_cover_range_in_order() {
        let l = layout2();
        // 0..3000 with 1 KiB stripes over 2 columns:
        // [col0 obj-off 0, 1024], [col1 obj-off 0, 1024], [col0 obj-off 1024, 952]
        let c = l.chunks(0, 3000);
        assert_eq!(c, vec![(0, 0, 1024), (1, 0, 1024), (0, 1024, 952)]);
        let total: u64 = c.iter().map(|x| x.2).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn chunks_handle_unaligned_offset() {
        let l = layout2();
        let c = l.chunks(1500, 1000);
        // 1500 is in stripe 1 (col 1) at within=476.
        assert_eq!(c[0], (1, 476, 548));
        assert_eq!(c[1], (0, 1024, 452));
    }

    #[test]
    fn single_stripe_small_file() {
        let l = Layout {
            stripe_size: 1 << 20,
            osts: vec![3],
            objects: vec![42],
        };
        let c = l.chunks(0, 659_671); // JAC frame
        assert_eq!(c, vec![(0, 0, 659_671)]);
    }

    #[test]
    fn mds_round_trips() {
        for req in [
            MdsRequest::Create { path: "/a".into() },
            MdsRequest::Open { path: "/b".into() },
            MdsRequest::SetSize {
                path: "/c".into(),
                size: 123,
            },
            MdsRequest::Unlink { path: "/d".into() },
            MdsRequest::Stat { path: "/e".into() },
        ] {
            assert_eq!(MdsRequest::decode(req.encode()), req);
        }
        for resp in [
            MdsResponse::Meta {
                layout: layout2(),
                size: 9,
            },
            MdsResponse::Ok,
            MdsResponse::NotFound,
        ] {
            assert_eq!(MdsResponse::decode(resp.encode()), resp);
        }
    }

    #[test]
    fn oss_round_trips() {
        for req in [
            OssRequest::Write {
                object: 1,
                offset: 2,
                len: 3,
                total: 3,
            },
            OssRequest::Read {
                object: 1,
                offset: 0,
                len: 10,
                total: 10,
            },
            OssRequest::Destroy { object: 5 },
        ] {
            assert_eq!(OssRequest::decode(req.encode()), req);
        }
        for resp in [OssResponse::Ok, OssResponse::Data { len: 1 }] {
            assert_eq!(OssResponse::decode(resp.encode()), resp);
        }
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn chunks_partition_any_range(
                stripe_size in 1u64..10_000,
                cols in 1usize..8,
                offset in 0u64..100_000,
                len in 1u64..100_000,
            ) {
                let l = Layout {
                    stripe_size,
                    osts: (0..cols as u32).collect(),
                    objects: (0..cols as u64).collect(),
                };
                let c = l.chunks(offset, len);
                let total: u64 = c.iter().map(|x| x.2).sum();
                prop_assert_eq!(total, len);
                // No chunk crosses a stripe boundary within its object.
                for (_, obj_off, clen) in &c {
                    let within = obj_off % stripe_size;
                    prop_assert!(within + clen <= stripe_size);
                }
            }
        }
    }
}
