//! The Lustre client: POSIX-ish file operations that translate into MDS
//! and OSS RPCs with parallel per-stripe bulk I/O.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use cluster::NodeId;
use simcore::{join_all, Ctx};
use transport::{AmId, Endpoint, Payload, Transport};

use crate::codec::{Layout, MdsRequest, MdsResponse, OssRequest, OssResponse};
use crate::server::{PfsSpec, MDS_AM, OSS_AM_BASE};

/// Errors surfaced by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfsError {
    /// Path unknown to the MDS.
    NotFound,
    /// Descriptor stale or wrong mode.
    BadDescriptor,
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NotFound => write!(f, "no such file on the MDS"),
            PfsError::BadDescriptor => write!(f, "bad file descriptor"),
        }
    }
}
impl std::error::Error for PfsError {}

/// Slice `len` bytes starting at `start` out of a segment rope,
/// zero-copy (the result holds slices of the input segments).
fn rope_slice(rope: &[Bytes], start: u64, len: u64) -> Payload {
    let mut out = Vec::new();
    let mut base = 0u64;
    let end = start + len;
    for seg in rope {
        let seg_len = seg.len() as u64;
        let seg_end = base + seg_len;
        if seg_end > start && base < end {
            let from = start.max(base) - base;
            let to = end.min(seg_end) - base;
            out.push(seg.slice(from as usize..to as usize));
        }
        base = seg_end;
        if base >= end {
            break;
        }
    }
    out
}

/// Client-side file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PfsFd(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Read,
    Write,
}

struct OpenFile {
    path: String,
    layout: Layout,
    size: u64,
    offset: u64,
    mode: Mode,
    dirty: bool,
}

struct ClientState {
    fds: HashMap<PfsFd, OpenFile>,
    next_fd: u64,
}

/// A Lustre-like client bound to one compute node.
#[derive(Clone)]
pub struct PfsClient {
    #[allow(dead_code)]
    ctx: Ctx,
    ep: Endpoint,
    mds: NodeId,
    /// Node hosting each OST, indexed by OST id.
    ost_nodes: Rc<Vec<NodeId>>,
    state: Rc<RefCell<ClientState>>,
    spec: PfsSpec,
    /// Per-client stream throttle: each logical I/O drains through this
    /// at the burst rate (≤ cache threshold) or the facility's sustained
    /// rate — the client-cache model of DESIGN.md §5.
    throttle: simcore::resource::SharedBandwidth,
}

impl PfsClient {
    /// Create a client on `node`; `ost_nodes[i]` hosts OST `i`.
    pub fn new(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        mds: NodeId,
        ost_nodes: Vec<NodeId>,
        spec: PfsSpec,
    ) -> Self {
        PfsClient {
            ctx: ctx.clone(),
            ep: tp.endpoint(node),
            mds,
            ost_nodes: Rc::new(ost_nodes),
            state: Rc::new(RefCell::new(ClientState {
                fds: HashMap::new(),
                next_fd: 3,
            })),
            spec,
            throttle: simcore::resource::SharedBandwidth::new(ctx, spec.burst_cap),
        }
    }

    /// Rate ceiling for one logical I/O of `total` bytes striped over
    /// `streams` OST columns: small I/O rides the client cache at burst
    /// rate; large I/O runs at the sustained per-stream rate times the
    /// number of parallel streams (more stripes → more client
    /// bandwidth, up to the burst ceiling).
    fn stream_cap(&self, total: u64, streams: usize) -> f64 {
        if total <= self.spec.cache_threshold {
            self.spec.burst_cap
        } else {
            (self.spec.sustained_cap * streams.max(1) as f64).min(self.spec.burst_cap)
        }
    }

    async fn mds_rpc(&self, req: MdsRequest) -> MdsResponse {
        MdsResponse::decode(self.ep.rpc(self.mds, MDS_AM, req.encode()).await)
    }

    async fn oss_rpc(&self, ost: u32, req: OssRequest, payload: Payload) -> (OssResponse, Payload) {
        let node = self.ost_nodes[ost as usize];
        let (hdr, data) = self
            .ep
            .bulk_rpc(node, AmId(OSS_AM_BASE + ost), req.encode(), payload)
            .await;
        (OssResponse::decode(hdr), data)
    }

    fn new_fd(&self, of: OpenFile) -> PfsFd {
        let mut st = self.state.borrow_mut();
        let fd = PfsFd(st.next_fd);
        st.next_fd += 1;
        st.fds.insert(fd, of);
        fd
    }

    /// Create (or truncate) a file for writing.
    pub async fn create(&self, path: &str) -> Result<PfsFd, PfsError> {
        match self.mds_rpc(MdsRequest::Create { path: path.into() }).await {
            MdsResponse::Meta { layout, size } => Ok(self.new_fd(OpenFile {
                path: path.into(),
                layout,
                size,
                offset: 0,
                mode: Mode::Write,
                dirty: false,
            })),
            _ => Err(PfsError::NotFound),
        }
    }

    /// Open an existing file read-only.
    pub async fn open(&self, path: &str) -> Result<PfsFd, PfsError> {
        match self.mds_rpc(MdsRequest::Open { path: path.into() }).await {
            MdsResponse::Meta { layout, size } => Ok(self.new_fd(OpenFile {
                path: path.into(),
                layout,
                size,
                offset: 0,
                mode: Mode::Read,
                dirty: false,
            })),
            _ => Err(PfsError::NotFound),
        }
    }

    /// Write at the descriptor's offset: stripes go to their OSTs in
    /// parallel.
    pub async fn write(&self, fd: PfsFd, data: &[u8]) -> Result<usize, PfsError> {
        self.write_bytes(fd, Bytes::copy_from_slice(data)).await?;
        Ok(data.len())
    }

    /// Zero-copy write: stripe chunks are `Bytes` slices of `data` and
    /// travel to their OSTs in parallel without copying.
    pub async fn write_bytes(&self, fd: PfsFd, data: Bytes) -> Result<(), PfsError> {
        self.write_segments(fd, vec![data]).await
    }

    /// Zero-copy write of a segment rope (e.g. a frame's
    /// `[header, body]` pair) as one logical write.
    pub async fn write_segments(&self, fd: PfsFd, data: Payload) -> Result<(), PfsError> {
        let total = transport::payload_len(&data);
        let (layout, chunks) = {
            let mut st = self.state.borrow_mut();
            let of = st.fds.get_mut(&fd).ok_or(PfsError::BadDescriptor)?;
            if of.mode != Mode::Write {
                return Err(PfsError::BadDescriptor);
            }
            let offset = of.offset;
            of.offset += total;
            of.size = of.size.max(of.offset);
            of.dirty = true;
            (of.layout.clone(), of.layout.chunks(offset, total))
        };
        // Fire all stripe writes concurrently, as the Lustre client
        // does, while the logical I/O drains through the client stream
        // throttle.
        let mut pos = 0u64;
        let mut handles = Vec::with_capacity(chunks.len() + 1);
        {
            let throttle = self.throttle.clone();
            let cap = self.stream_cap(total, layout.stripe_count());
            handles.push(self.ctx.spawn(async move {
                throttle.transfer_capped(total, Some(cap)).await;
            }));
        }
        for (column, obj_off, len) in chunks {
            let chunk = rope_slice(&data, pos, len);
            pos += len;
            let ost = layout.osts[column];
            let object = layout.objects[column];
            let this = self.clone();
            handles.push(self.ctx.spawn(async move {
                this.oss_rpc(
                    ost,
                    OssRequest::Write {
                        object,
                        offset: obj_off,
                        len,
                        total,
                    },
                    chunk,
                )
                .await;
            }));
        }
        join_all(handles).await;
        Ok(())
    }

    /// Read up to `len` bytes from the descriptor's offset.
    pub async fn read(&self, fd: PfsFd, len: u64) -> Result<Bytes, PfsError> {
        let (layout, offset, take) = {
            let mut st = self.state.borrow_mut();
            let of = st.fds.get_mut(&fd).ok_or(PfsError::BadDescriptor)?;
            let take = len.min(of.size.saturating_sub(of.offset));
            let offset = of.offset;
            of.offset += take;
            (of.layout.clone(), offset, take)
        };
        if take == 0 {
            return Ok(Bytes::new());
        }
        let parts = self.read_chunks(&layout, offset, take).await;
        if parts.len() == 1 {
            return Ok(parts.into_iter().next().unwrap());
        }
        let mut out = BytesMut::with_capacity(take as usize);
        for part in parts {
            out.extend_from_slice(&part);
        }
        Ok(out.freeze())
    }

    async fn read_chunks(&self, layout: &Layout, offset: u64, take: u64) -> Vec<Bytes> {
        let chunks = layout.chunks(offset, take);
        {
            // Drain the logical read through the client stream throttle
            // in parallel with the chunk RPCs.
            let throttle = self.throttle.clone();
            let cap = self.stream_cap(take, layout.stripe_count());
            let h = self.ctx.spawn(async move {
                throttle.transfer_capped(take, Some(cap)).await;
            });
            // Collected below together with the chunk data via join.
            let mut handles = Vec::with_capacity(chunks.len());
            for (column, obj_off, clen) in &chunks {
                let ost = layout.osts[*column];
                let object = layout.objects[*column];
                let (obj_off, clen) = (*obj_off, *clen);
                let this = self.clone();
                handles.push(self.ctx.spawn(async move {
                    let (_, data) = this
                        .oss_rpc(
                            ost,
                            OssRequest::Read {
                                object,
                                offset: obj_off,
                                len: clen,
                                total: take,
                            },
                            Vec::new(),
                        )
                        .await;
                    data
                }));
            }
            let ropes = join_all(handles).await;
            h.await;
            ropes.into_iter().flatten().collect()
        }
    }

    /// Read the remainder of the file.
    pub async fn read_to_end(&self, fd: PfsFd) -> Result<Bytes, PfsError> {
        self.read(fd, u64::MAX).await
    }

    /// Zero-copy read of the remainder of the file: one `Bytes` per
    /// stripe chunk, in file order.
    pub async fn read_segments(&self, fd: PfsFd) -> Result<Vec<Bytes>, PfsError> {
        let (layout, offset, take) = {
            let mut st = self.state.borrow_mut();
            let of = st.fds.get_mut(&fd).ok_or(PfsError::BadDescriptor)?;
            let take = of.size.saturating_sub(of.offset);
            let offset = of.offset;
            of.offset += take;
            (of.layout.clone(), offset, take)
        };
        if take == 0 {
            return Ok(Vec::new());
        }
        Ok(self.read_chunks(&layout, offset, take).await)
    }

    /// Close, publishing the size to the MDS if the file was written.
    pub async fn close(&self, fd: PfsFd) -> Result<(), PfsError> {
        let (path, size, dirty) = {
            let mut st = self.state.borrow_mut();
            let of = st.fds.remove(&fd).ok_or(PfsError::BadDescriptor)?;
            (of.path, of.size, of.dirty)
        };
        if dirty {
            self.mds_rpc(MdsRequest::SetSize { path, size }).await;
        }
        Ok(())
    }

    /// Unlink: MDS removal plus object destruction on every OST column.
    pub async fn unlink(&self, path: &str) -> Result<(), PfsError> {
        let meta = self.mds_rpc(MdsRequest::Stat { path: path.into() }).await;
        let layout = match meta {
            MdsResponse::Meta { layout, .. } => layout,
            _ => return Err(PfsError::NotFound),
        };
        self.mds_rpc(MdsRequest::Unlink { path: path.into() }).await;
        let mut handles = Vec::new();
        for (i, &ost) in layout.osts.iter().enumerate() {
            let object = layout.objects[i];
            let this = self.clone();
            handles.push(self.ctx.spawn(async move {
                this.oss_rpc(ost, OssRequest::Destroy { object }, Vec::new())
                    .await;
            }));
        }
        join_all(handles).await;
        Ok(())
    }

    /// Stat via the MDS.
    pub async fn stat(&self, path: &str) -> Result<(Layout, u64), PfsError> {
        match self.mds_rpc(MdsRequest::Stat { path: path.into() }).await {
            MdsResponse::Meta { layout, size } => Ok((layout, size)),
            _ => Err(PfsError::NotFound),
        }
    }
}
