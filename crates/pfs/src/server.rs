//! The Lustre-like servers: one MDS (metadata server) and N OSS/OST
//! object servers.
//!
//! Every request pays a fabric round trip (charged by the RPC layer), a
//! wait for one of the server's service threads, a fixed service
//! overhead, and — for bulk I/O — streaming through the OST's backing
//! disk (a processor-sharing channel shared by *all* clients of that
//! OST, which is what makes Lustre bandwidth a cluster-wide shared
//! resource in the experiments).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use cluster::NodeId;
use rand::RngExt;
use simcore::intern::{intern, FxHashMap, Symbol};
use simcore::resource::{FifoResource, SharedBandwidth};
use simcore::{Ctx, SimDuration};
use transport::{payload_len, AmId, LocalBoxFuture, Payload, Transport};

use crate::codec::{Layout, MdsRequest, MdsResponse, OssRequest, OssResponse};

/// AM id of the MDS.
pub const MDS_AM: AmId = AmId(0x4D44);
/// Base AM id of the OSS servers (`OSS_AM_BASE + ost_index`).
pub const OSS_AM_BASE: u32 = 0x4F00;

/// Server tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct PfsSpec {
    /// Stripe width.
    pub stripe_size: u64,
    /// Stripe columns for new files.
    pub default_stripe_count: usize,
    /// MDS service time per request.
    pub mds_service: SimDuration,
    /// MDS service threads.
    pub mds_threads: u64,
    /// OSS service time per request (request processing, not disk).
    pub oss_service: SimDuration,
    /// OSS service threads per OST.
    pub oss_threads: u64,
    /// Per-OST backing disk write bandwidth, bytes/second.
    pub ost_write_bw: f64,
    /// Per-OST backing disk read bandwidth, bytes/second.
    pub ost_read_bw: f64,
    /// Per-stream rate for I/O whose logical size is at most
    /// `cache_threshold` (client write-back cache / read-ahead absorbs
    /// it at near-wire rate), bytes/second.
    pub burst_cap: f64,
    /// Sustained rate for large I/O that bypasses the client cache,
    /// bytes/second **per OST stream** (the client aggregates one stream
    /// per stripe column).
    pub sustained_cap: f64,
    /// Logical I/O size at or below which the burst rate applies.
    pub cache_threshold: u64,
    /// Fraction of each OST's bandwidth consumed by background jobs
    /// (0.0 = quiet system). Adds both load and run-to-run variability.
    pub interference: f64,
    /// Number of parallel background streams per OST (a background job's
    /// clients). More streams grab a larger share of the fair-share disk
    /// channels.
    pub interference_streams: u32,
}

impl Default for PfsSpec {
    /// A modest Lustre fs of the paper's era: 1 MiB stripes, 4-way
    /// striping, ~2 GB/s per OST, 300 µs MDS ops, 150 µs OSS ops.
    fn default() -> Self {
        PfsSpec {
            stripe_size: 1 << 20,
            default_stripe_count: 4,
            mds_service: SimDuration::from_micros(300),
            mds_threads: 16,
            oss_service: SimDuration::from_micros(150),
            oss_threads: 16,
            ost_write_bw: 2.0e9,
            ost_read_bw: 2.5e9,
            burst_cap: 2.0e9,
            sustained_cap: 0.6e9,
            cache_threshold: 2 << 20,
            interference: 0.0,
            interference_streams: 8,
        }
    }
}

/// MDS operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MdsStats {
    /// Creates served.
    pub creates: u64,
    /// Opens served.
    pub opens: u64,
    /// SetSize (close) requests.
    pub setattrs: u64,
    /// Unlinks served.
    pub unlinks: u64,
    /// Stats served.
    pub stats: u64,
}

struct FileMeta {
    layout: Layout,
    size: u64,
}

struct MdsState {
    // Paths intern once per RPC; repeat opens/stats of the same frame
    // path hash a 4-byte symbol.
    files: FxHashMap<Symbol, FileMeta>,
    next_object: u64,
    next_ost: u32,
    n_osts: u32,
    stats: MdsStats,
}

/// The metadata server.
pub struct MdsServer {
    node: NodeId,
    state: Rc<RefCell<MdsState>>,
}

impl MdsServer {
    /// Start the MDS on `node`, laying files out across `n_osts` OSTs.
    pub fn start(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        n_osts: u32,
        spec: PfsSpec,
    ) -> Rc<MdsServer> {
        assert!(n_osts >= 1);
        let state = Rc::new(RefCell::new(MdsState {
            files: FxHashMap::default(),
            next_object: 1,
            next_ost: 0,
            n_osts,
            stats: MdsStats::default(),
        }));
        let service = FifoResource::new(ctx, spec.mds_threads);
        let hstate = state.clone();
        // Weak: a strong clone would cycle through the handler table and
        // leak the namespace (see `Transport::downgrade`).
        let htp = tp.downgrade();
        let hctx = ctx.clone();
        tp.register_am(
            node,
            MDS_AM,
            Rc::new(move |raw: Bytes| {
                let state = hstate.clone();
                let service = service.clone();
                let tp = htp.upgrade();
                let ctx = hctx.clone();
                Box::pin(async move {
                    service.request(spec.mds_service).await;
                    // Injected MDS stall: hold every request until the
                    // stall window closes. No board / no stall: free.
                    if let Some(board) = tp.faults() {
                        if let Some(until) = board.mds_stall_until() {
                            ctx.sleep(until.since(ctx.now())).await;
                        }
                    }
                    let req = MdsRequest::decode(raw);
                    mds_handle(&state, &spec, req).encode()
                }) as LocalBoxFuture<Bytes>
            }),
        );
        Rc::new(MdsServer { node, state })
    }

    /// Node hosting the MDS.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Operation counters.
    pub fn stats(&self) -> MdsStats {
        self.state.borrow().stats
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.state.borrow().files.len()
    }
}

fn mds_handle(state: &Rc<RefCell<MdsState>>, spec: &PfsSpec, req: MdsRequest) -> MdsResponse {
    let mut st = state.borrow_mut();
    match req {
        MdsRequest::Create { path } => {
            st.stats.creates += 1;
            let count = spec.default_stripe_count.min(st.n_osts as usize).max(1);
            let mut osts = Vec::with_capacity(count);
            let mut objects = Vec::with_capacity(count);
            for _ in 0..count {
                osts.push(st.next_ost % st.n_osts);
                st.next_ost = (st.next_ost + 1) % st.n_osts;
                objects.push(st.next_object);
                st.next_object += 1;
            }
            let layout = Layout {
                stripe_size: spec.stripe_size,
                osts,
                objects,
            };
            st.files.insert(
                intern(&path),
                FileMeta {
                    layout: layout.clone(),
                    size: 0,
                },
            );
            MdsResponse::Meta { layout, size: 0 }
        }
        MdsRequest::Open { path } => {
            st.stats.opens += 1;
            match st.files.get(&intern(&path)) {
                Some(m) => MdsResponse::Meta {
                    layout: m.layout.clone(),
                    size: m.size,
                },
                None => MdsResponse::NotFound,
            }
        }
        MdsRequest::SetSize { path, size } => {
            st.stats.setattrs += 1;
            match st.files.get_mut(&intern(&path)) {
                Some(m) => {
                    m.size = m.size.max(size);
                    MdsResponse::Ok
                }
                None => MdsResponse::NotFound,
            }
        }
        MdsRequest::Unlink { path } => {
            st.stats.unlinks += 1;
            match st.files.remove(&intern(&path)) {
                Some(_) => MdsResponse::Ok,
                None => MdsResponse::NotFound,
            }
        }
        MdsRequest::Stat { path } => {
            st.stats.stats += 1;
            match st.files.get(&intern(&path)) {
                Some(m) => MdsResponse::Meta {
                    layout: m.layout.clone(),
                    size: m.size,
                },
                None => MdsResponse::NotFound,
            }
        }
    }
}

/// Per-OST counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OstStats {
    /// Bulk writes served.
    pub writes: u64,
    /// Bulk reads served.
    pub reads: u64,
    /// Bytes written to the backing disk.
    pub bytes_written: u64,
    /// Bytes read from the backing disk.
    pub bytes_read: u64,
}

struct OstState {
    /// Object id → segment map (offset → bytes), zero-copy storage.
    objects: FxHashMap<u64, BTreeMap<u64, Bytes>>,
    stats: OstStats,
}

/// Gather `offset..offset+len` from a segment map as a zero-copy rope
/// (slices of the stored segments, gaps zero-filled).
fn gather_object(segments: &BTreeMap<u64, Bytes>, offset: u64, len: u64) -> Vec<Bytes> {
    let mut out: Vec<Bytes> = Vec::new();
    let end = offset + len;
    let mut covered = offset;
    // Include a possible segment starting before `offset`.
    let start_key = segments
        .range(..=offset)
        .next_back()
        .map(|(k, _)| *k)
        .unwrap_or(offset);
    for (&seg_off, seg) in segments.range(start_key..end) {
        let seg_end = seg_off + seg.len() as u64;
        if seg_end <= offset {
            continue;
        }
        let from = covered.max(seg_off);
        let to = end.min(seg_end);
        if from >= to {
            continue;
        }
        // Zero-fill any gap before this segment.
        if from > covered {
            out.push(Bytes::from(vec![0u8; (from - covered) as usize]));
        }
        out.push(seg.slice((from - seg_off) as usize..(to - seg_off) as usize));
        covered = to;
    }
    out
}

/// One object storage target and its OSS front-end.
pub struct OstServer {
    node: NodeId,
    index: u32,
    state: Rc<RefCell<OstState>>,
    write_bw: SharedBandwidth,
    read_bw: SharedBandwidth,
}

impl OstServer {
    /// Start OST `index` on `node`.
    pub fn start(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        index: u32,
        spec: PfsSpec,
    ) -> Rc<OstServer> {
        let state = Rc::new(RefCell::new(OstState {
            objects: FxHashMap::default(),
            stats: OstStats::default(),
        }));
        let write_bw = SharedBandwidth::new(ctx, spec.ost_write_bw).with_flow_cap(spec.burst_cap);
        let read_bw = SharedBandwidth::new(ctx, spec.ost_read_bw).with_flow_cap(spec.burst_cap);
        let service = FifoResource::new(ctx, spec.oss_threads);
        let server = Rc::new(OstServer {
            node,
            index,
            state: state.clone(),
            write_bw: write_bw.clone(),
            read_bw: read_bw.clone(),
        });
        let hstate = state;
        // Weak: a strong clone would cycle through the handler table and
        // leak every stored object segment (see `Transport::downgrade`).
        let htp = tp.downgrade();
        let hctx = ctx.clone();
        tp.register_bulk(
            node,
            AmId(OSS_AM_BASE + index),
            Rc::new(move |hdr: Bytes, payload: Payload| {
                let state = hstate.clone();
                let service = service.clone();
                let write_bw = write_bw.clone();
                let read_bw = read_bw.clone();
                let tp = htp.upgrade();
                let ctx = hctx.clone();
                Box::pin(async move {
                    service.request(spec.oss_service).await;
                    // Injected OST degradation factor, sampled per
                    // request (1.0 = healthy). Disk phases below stretch
                    // by `factor − 1` of their own duration.
                    let factor = tp.faults().map_or(1.0, |board| board.ost_factor(index));
                    match OssRequest::decode(hdr) {
                        OssRequest::Write {
                            object,
                            offset,
                            len,
                            total,
                        } => {
                            debug_assert_eq!(payload_len(&payload), len);
                            let cap = if total <= spec.cache_threshold {
                                spec.burst_cap
                            } else {
                                spec.sustained_cap
                            };
                            let t0 = ctx.now();
                            write_bw.transfer_capped_counted(len, Some(cap)).await;
                            if factor > 1.0 {
                                ctx.sleep(ctx.now().since(t0).mul_f64(factor - 1.0)).await;
                            }
                            let mut st = state.borrow_mut();
                            let obj = st.objects.entry(object).or_default();
                            let mut at = offset;
                            for seg in payload {
                                let seg_len = seg.len() as u64;
                                obj.insert(at, seg);
                                at += seg_len;
                            }
                            st.stats.writes += 1;
                            st.stats.bytes_written += len;
                            (OssResponse::Ok.encode(), Vec::new())
                        }
                        OssRequest::Read {
                            object,
                            offset,
                            len,
                            total,
                        } => {
                            let data: Payload = {
                                let st = state.borrow();
                                match st.objects.get(&object) {
                                    Some(segments) => {
                                        // Clamp to the object's extent.
                                        let obj_end = segments
                                            .iter()
                                            .next_back()
                                            .map(|(o, s)| o + s.len() as u64)
                                            .unwrap_or(0);
                                        let end = (offset + len).min(obj_end);
                                        if end <= offset {
                                            Vec::new()
                                        } else {
                                            gather_object(segments, offset, end - offset)
                                        }
                                    }
                                    None => Vec::new(),
                                }
                            };
                            let dlen = payload_len(&data);
                            let cap = if total <= spec.cache_threshold {
                                spec.burst_cap
                            } else {
                                spec.sustained_cap
                            };
                            let t0 = ctx.now();
                            read_bw.transfer_capped_counted(dlen, Some(cap)).await;
                            if factor > 1.0 {
                                ctx.sleep(ctx.now().since(t0).mul_f64(factor - 1.0)).await;
                            }
                            let mut st = state.borrow_mut();
                            st.stats.reads += 1;
                            st.stats.bytes_read += dlen;
                            (OssResponse::Data { len: dlen }.encode(), data)
                        }
                        OssRequest::Destroy { object } => {
                            state.borrow_mut().objects.remove(&object);
                            (OssResponse::Ok.encode(), Vec::new())
                        }
                    }
                }) as LocalBoxFuture<(Bytes, Payload)>
            }),
        );
        server
    }

    /// Node hosting this OST.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// OST index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Operation counters.
    pub fn stats(&self) -> OstStats {
        self.state.borrow().stats
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.state.borrow().objects.len()
    }

    /// Spawn background-interference streams consuming roughly
    /// `spec.interference` duty cycle per stream on this OST's disk
    /// channels, with bursty, randomly sized transfers (models the
    /// "other jobs" the paper blames for Lustre's variability at large
    /// ensemble sizes). The streams run until the simulation ends.
    pub fn spawn_interference(self: &Rc<Self>, ctx: &Ctx, spec: &PfsSpec, stream: u64) {
        if spec.interference <= 0.0 {
            return;
        }
        let intensity = spec.interference.min(0.95);
        for s in 0..spec.interference_streams {
            let write_bw = self.write_bw.clone();
            let read_bw = self.read_bw.clone();
            let ctx2 = ctx.clone();
            let mut rng =
                ctx.rng(0x1F57 ^ stream ^ ((self.index as u64) << 32) ^ ((s as u64) << 48));
            ctx.spawn(async move {
                // Stagger stream start.
                let lead: u64 = rng.random_range(0..20_000_000);
                ctx2.sleep(SimDuration::from_nanos(lead)).await;
                loop {
                    // Burst, then idle sized from the burst's *actual*
                    // duration so each stream's duty cycle is `intensity`
                    // regardless of how contended the disk is.
                    let burst: u64 = rng.random_range(1_000_000..32_000_000);
                    let t0 = ctx2.now();
                    if rng.random_bool(0.5) {
                        write_bw.transfer_counted(burst).await;
                    } else {
                        read_bw.transfer_counted(burst).await;
                    }
                    let busy = (ctx2.now() - t0).as_secs_f64();
                    let idle = busy * (1.0 - intensity) / intensity;
                    let jitter: f64 = rng.random_range(0.5..1.5);
                    ctx2.sleep(SimDuration::from_secs_f64(idle * jitter)).await;
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use simcore::Sim;
    use transport::TransportSpec;

    #[test]
    fn mds_create_assigns_round_robin_layouts() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let mds = MdsServer::start(&ctx, &tp, NodeId(0), 4, PfsSpec::default());
        let ep = tp.endpoint(NodeId(1));
        let h = sim.spawn(async move {
            let r1 = MdsResponse::decode(
                ep.rpc(
                    NodeId(0),
                    MDS_AM,
                    MdsRequest::Create { path: "/a".into() }.encode(),
                )
                .await,
            );
            let r2 = MdsResponse::decode(
                ep.rpc(
                    NodeId(0),
                    MDS_AM,
                    MdsRequest::Create { path: "/b".into() }.encode(),
                )
                .await,
            );
            (r1, r2)
        });
        sim.run();
        let (r1, r2) = h.try_take().unwrap();
        let (l1, l2) = match (r1, r2) {
            (MdsResponse::Meta { layout: l1, .. }, MdsResponse::Meta { layout: l2, .. }) => {
                (l1, l2)
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(l1.stripe_count(), 4);
        // Second file starts on the next OST after the first file's span.
        assert_ne!(l1.objects, l2.objects);
        assert_eq!(mds.stats().creates, 2);
        assert_eq!(mds.file_count(), 2);
    }

    #[test]
    fn ost_write_read_round_trip() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let ost = OstServer::start(&ctx, &tp, NodeId(0), 0, PfsSpec::default());
        let ep = tp.endpoint(NodeId(1));
        let h = sim.spawn(async move {
            let w = OssRequest::Write {
                object: 9,
                offset: 4,
                len: 5,
                total: 5,
            };
            ep.bulk_rpc(
                NodeId(0),
                AmId(OSS_AM_BASE),
                w.encode(),
                vec![Bytes::from_static(b"hello")],
            )
            .await;
            let r = OssRequest::Read {
                object: 9,
                offset: 4,
                len: 5,
                total: 5,
            };
            ep.bulk_rpc(NodeId(0), AmId(OSS_AM_BASE), r.encode(), Vec::new())
                .await
        });
        sim.run();
        let (hdr, data) = h.try_take().unwrap();
        assert_eq!(OssResponse::decode(hdr), OssResponse::Data { len: 5 });
        assert_eq!(&transport::flatten_payload(data)[..], b"hello");
        assert_eq!(ost.stats().writes, 1);
        assert_eq!(ost.stats().reads, 1);
    }

    #[test]
    fn ost_degrade_stretches_bulk_io() {
        use faults::{FaultBoard, FaultEvent, FaultKind, FaultPlan};
        let run = |degrade: bool| -> f64 {
            let sim = Sim::new(0);
            let ctx = sim.ctx();
            let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
            let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
            let _ost = OstServer::start(&ctx, &tp, NodeId(0), 0, PfsSpec::default());
            if degrade {
                let board = FaultBoard::new(&ctx, 2, 1);
                tp.set_faults(board.clone());
                board.arm(&FaultPlan::scheduled(vec![FaultEvent {
                    at: SimDuration::from_nanos(0),
                    kind: FaultKind::OstDegrade {
                        ost: 0,
                        factor: 4.0,
                        duration: SimDuration::from_secs(10),
                    },
                }]));
            }
            let ep = tp.endpoint(NodeId(1));
            let ctx2 = ctx.clone();
            let h = sim.spawn(async move {
                let w = OssRequest::Write {
                    object: 1,
                    offset: 0,
                    len: 64 << 20,
                    total: 64 << 20,
                };
                ep.bulk_rpc(
                    NodeId(0),
                    AmId(OSS_AM_BASE),
                    w.encode(),
                    vec![Bytes::from(vec![0u8; 64 << 20])],
                )
                .await;
                ctx2.now().as_secs_f64()
            });
            sim.run();
            h.try_take().unwrap()
        };
        let healthy = run(false);
        let degraded = run(true);
        // The disk phase dominates a 64 MiB write; a 4× degrade should
        // roughly triple-to-quadruple the total.
        assert!(
            degraded > healthy * 2.5,
            "healthy {healthy}s degraded {degraded}s"
        );
    }

    #[test]
    fn mds_stall_holds_metadata_requests() {
        use faults::{FaultBoard, FaultEvent, FaultKind, FaultPlan};
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let _mds = MdsServer::start(&ctx, &tp, NodeId(0), 4, PfsSpec::default());
        let board = FaultBoard::new(&ctx, 2, 0);
        tp.set_faults(board.clone());
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_nanos(0),
            kind: FaultKind::MdsStall {
                duration: SimDuration::from_millis(20),
            },
        }]));
        let ep = tp.endpoint(NodeId(1));
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            ep.rpc(
                NodeId(0),
                MDS_AM,
                MdsRequest::Create { path: "/a".into() }.encode(),
            )
            .await;
            ctx2.now().as_secs_f64()
        });
        assert!(sim.run().is_clean());
        let t = h.try_take().unwrap();
        assert!(t >= 0.020, "create finished at {t}s, before the stall end");
        assert!(t < 0.022, "create finished at {t}s, long after the stall");
    }

    #[test]
    fn interference_consumes_bandwidth_over_time() {
        let sim = Sim::new(7);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(2));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let spec = PfsSpec {
            interference: 0.5,
            ..PfsSpec::default()
        };
        let ost = OstServer::start(&ctx, &tp, NodeId(0), 0, spec);
        ost.spawn_interference(&ctx, &spec, 0);
        sim.run_until(simcore::SimTime::from_nanos(2_000_000_000));
        // The interference loop must have moved a nontrivial amount of
        // data in 2 s at ~50% duty on a 2 GB/s disk.
        let moved = ost.write_bw.stats().bytes_moved + ost.read_bw.stats().bytes_moved;
        assert!(
            moved > 500_000_000,
            "only {moved} bytes of interference traffic"
        );
    }
}
