//! # transport — UCX-like communication layer
//!
//! DYAD's data plane uses UCX; the repro hint notes that Rust UCX bindings
//! are thin and the paper's testbed is unavailable, so this crate provides
//! a faithful *protocol-level* model of the UCP tag-matching API on top of
//! the simulated [`cluster::Fabric`]:
//!
//! * **Eager protocol** — payloads at or below the rendezvous threshold
//!   travel inside the first message.
//! * **Rendezvous protocol** — larger sends publish an RTS (ready-to-send)
//!   header; the matching receiver pulls the payload with an RDMA read and
//!   acknowledges with a FIN, exactly the UCP `rndv` scheme. The sender's
//!   buffer is held until FIN.
//! * **Active messages** — a registered handler per `(node, am_id)`
//!   services request/response RPCs (used by the KVS broker and the
//!   Lustre-like servers).
//!
//! Payloads are real `bytes::Bytes`, so data integrity can be asserted
//! end-to-end in tests and analytics runs on the actual frame contents.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use bytes::Bytes;
use cluster::{Fabric, NodeId};
use faults::{FaultBoard, RetryPolicy};
use rand::rngs::StdRng;
use simcore::intern::FxHashMap;
use simcore::sync::{oneshot, OneSender};
use simcore::{timeout, Ctx};

/// Errors surfaced by the fallible RPC paths when a fault board is
/// attached. Without a board these paths cannot fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The destination node is down, or the link to it is flapped.
    Unreachable {
        /// The node that could not be reached.
        node: NodeId,
    },
    /// The per-attempt timeout expired before a response arrived.
    Timeout {
        /// The node the attempt targeted.
        node: NodeId,
    },
    /// Every retry attempt failed.
    Exhausted {
        /// The node the RPC targeted.
        node: NodeId,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable { node } => write!(f, "{node} unreachable"),
            TransportError::Timeout { node } => write!(f, "rpc to {node} timed out"),
            TransportError::Exhausted { node, attempts } => {
                write!(f, "rpc to {node} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Message tag used for matching sends to receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

/// Identifier of a registered active-message handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AmId(pub u32);

/// A boxed local (non-`Send`) future, the return type of AM handlers.
pub type LocalBoxFuture<T> = Pin<Box<dyn Future<Output = T>>>;

/// An active-message handler: request bytes in, response bytes out.
pub type AmHandler = Rc<dyn Fn(Bytes) -> LocalBoxFuture<Bytes>>;

/// A bulk payload: an ordered rope of zero-copy `Bytes` segments.
pub type Payload = Vec<Bytes>;

/// Total byte length of a payload rope.
pub fn payload_len(p: &[Bytes]) -> u64 {
    p.iter().map(|s| s.len() as u64).sum()
}

/// Flatten a payload rope into one contiguous `Bytes` (copies unless the
/// rope has a single segment). Convenience for tests and small data.
pub fn flatten_payload(p: Payload) -> Bytes {
    if p.len() == 1 {
        return p.into_iter().next().unwrap();
    }
    let total: usize = p.iter().map(|s| s.len()).sum();
    let mut out = bytes::BytesMut::with_capacity(total);
    for s in p {
        out.extend_from_slice(&s);
    }
    out.freeze()
}

/// A bulk active-message handler: `(header, payload)` in, `(header,
/// payload)` out. Payloads are passed zero-copy (`Bytes` clones); only
/// their *length* is charged on the wire, which models Lustre-style bulk
/// RDMA where a small RPC descriptor is followed by an RDMA transfer of
/// the data pages.
pub type BulkHandler = Rc<dyn Fn(Bytes, Payload) -> LocalBoxFuture<(Bytes, Payload)>>;

/// Protocol tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransportSpec {
    /// Payloads larger than this use the rendezvous protocol.
    pub rndv_threshold: u64,
    /// Bytes of protocol header per message on the wire.
    pub header_bytes: u64,
}

impl Default for TransportSpec {
    /// UCX defaults on InfiniBand-class fabrics: ~8 KiB rendezvous
    /// threshold, 64-byte headers.
    fn default() -> Self {
        TransportSpec {
            rndv_threshold: 8192,
            header_bytes: 64,
        }
    }
}

/// A send waiting for its matching receive (or vice versa).
struct PendingSend {
    src: NodeId,
    payload: Bytes,
    /// Completed when the receiver has the data (eager: immediately on
    /// match; rendezvous: after RDMA read + FIN).
    done: OneSender<()>,
}

struct MatchQueues {
    /// Sends that arrived before a matching receive was posted.
    unexpected: FxHashMap<Tag, VecDeque<PendingSend>>,
    /// Receives posted before a matching send arrived.
    expected: FxHashMap<Tag, VecDeque<OneSender<PendingSend>>>,
}

struct WorkerState {
    queues: MatchQueues,
    handlers: FxHashMap<AmId, AmHandler>,
    bulk_handlers: FxHashMap<AmId, BulkHandler>,
}

/// Message counters (whole-transport aggregates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Eager-protocol sends.
    pub eager_sends: u64,
    /// Rendezvous-protocol sends.
    pub rndv_sends: u64,
    /// Payload bytes sent through tag messaging.
    pub tag_bytes: u64,
    /// Control (non-bulk) RPCs issued.
    pub rpcs: u64,
    /// Bulk RPCs issued.
    pub bulk_rpcs: u64,
    /// Payload bytes moved by bulk RPCs (both directions).
    pub bulk_bytes: u64,
    /// RPC attempts that failed (unreachable or timed out) and were
    /// followed by another attempt.
    pub rpc_retries: u64,
    /// RPCs abandoned after exhausting their retry budget.
    pub rpc_giveups: u64,
    /// Nanoseconds spent sleeping in retry backoff — pure recovery time,
    /// not data movement.
    pub retry_backoff_ns: u64,
}

struct Inner {
    workers: Vec<RefCell<WorkerState>>,
    stats: RefCell<TransportStats>,
    faults: RefCell<Option<FaultBoard>>,
}

/// The transport context: one worker per cluster node.
#[derive(Clone)]
pub struct Transport {
    ctx: Ctx,
    fabric: Fabric,
    spec: TransportSpec,
    inner: Rc<Inner>,
}

impl Transport {
    /// Create a transport spanning every node of `fabric`.
    pub fn new(ctx: &Ctx, fabric: Fabric, spec: TransportSpec) -> Self {
        let workers = (0..fabric.n_nodes())
            .map(|_| {
                RefCell::new(WorkerState {
                    queues: MatchQueues {
                        unexpected: FxHashMap::default(),
                        expected: FxHashMap::default(),
                    },
                    handlers: FxHashMap::default(),
                    bulk_handlers: FxHashMap::default(),
                })
            })
            .collect();
        Transport {
            ctx: ctx.clone(),
            fabric,
            spec,
            inner: Rc::new(Inner {
                workers,
                stats: RefCell::new(TransportStats::default()),
                faults: RefCell::new(None),
            }),
        }
    }

    /// Aggregate message counters.
    pub fn stats(&self) -> TransportStats {
        *self.inner.stats.borrow()
    }

    /// Attach a fault board. The fallible RPC paths consult it for
    /// reachability; the infallible paths are unaffected. Without a board
    /// the fallible paths reduce to the infallible ones.
    pub fn set_faults(&self, board: FaultBoard) {
        *self.inner.faults.borrow_mut() = Some(board);
    }

    /// The attached fault board, if any.
    pub fn faults(&self) -> Option<FaultBoard> {
        self.inner.faults.borrow().clone()
    }

    /// Protocol parameters.
    pub fn spec(&self) -> TransportSpec {
        self.spec
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Obtain the endpoint handle for a node.
    pub fn endpoint(&self, node: NodeId) -> Endpoint {
        assert!((node.0 as usize) < self.inner.workers.len());
        Endpoint {
            tp: self.clone(),
            node,
        }
    }

    /// A weak handle for use inside registered handlers.
    ///
    /// Handler closures live in the transport's own tables, so a closure
    /// that captured a strong `Transport` clone would form a reference
    /// cycle (`Inner → handler → Transport → Inner`) that keeps the
    /// transport — and everything every handler captured, such as OST
    /// object data or a staged-frame store — alive after the simulation
    /// is torn down. Handlers must capture `downgrade()` instead and
    /// [`WeakTransport::upgrade`] at call time; a handler only ever runs
    /// while the transport that dispatched it is alive.
    pub fn downgrade(&self) -> WeakTransport {
        WeakTransport {
            ctx: self.ctx.clone(),
            fabric: self.fabric.clone(),
            spec: self.spec,
            inner: Rc::downgrade(&self.inner),
        }
    }

    /// Register an active-message handler on `node`. Replaces any previous
    /// handler with the same id.
    pub fn register_am(&self, node: NodeId, id: AmId, handler: AmHandler) {
        self.inner.workers[node.0 as usize]
            .borrow_mut()
            .handlers
            .insert(id, handler);
    }

    /// Register a bulk handler on `node` (see [`BulkHandler`]).
    pub fn register_bulk(&self, node: NodeId, id: AmId, handler: BulkHandler) {
        self.inner.workers[node.0 as usize]
            .borrow_mut()
            .bulk_handlers
            .insert(id, handler);
    }
}

/// A non-owning [`Transport`] handle (see [`Transport::downgrade`]).
#[derive(Clone)]
pub struct WeakTransport {
    ctx: Ctx,
    fabric: Fabric,
    spec: TransportSpec,
    inner: std::rc::Weak<Inner>,
}

impl WeakTransport {
    /// Recover the strong handle. Panics if the transport has been torn
    /// down — valid inside handlers, which only run while it is alive.
    pub fn upgrade(&self) -> Transport {
        Transport {
            ctx: self.ctx.clone(),
            fabric: self.fabric.clone(),
            spec: self.spec,
            inner: self
                .inner
                .upgrade()
                .expect("WeakTransport used after the transport was dropped"),
        }
    }
}

/// A node-local communication endpoint.
#[derive(Clone)]
pub struct Endpoint {
    tp: Transport,
    node: NodeId,
}

impl Endpoint {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send `payload` to `dst` with tag `tag`, completing when the
    /// receiver has the data (UCX semantics for rendezvous sends).
    pub async fn tag_send(&self, dst: NodeId, tag: Tag, payload: Bytes) {
        let spec = self.tp.spec;
        let len = payload.len() as u64;
        {
            let mut st = self.tp.inner.stats.borrow_mut();
            if len <= spec.rndv_threshold {
                st.eager_sends += 1;
            } else {
                st.rndv_sends += 1;
            }
            st.tag_bytes += len;
        }
        if len <= spec.rndv_threshold {
            // Eager: header + payload in one message.
            self.tp
                .fabric
                .send(self.node, dst, spec.header_bytes + len)
                .await;
            let (done_tx, done_rx) = oneshot();
            deliver_send(
                &self.tp,
                dst,
                tag,
                PendingSend {
                    src: self.node,
                    payload,
                    done: done_tx,
                },
            );
            // Eager sends complete locally once the wire transfer is done;
            // matching later cannot fail, so don't wait for it.
            drop(done_rx);
        } else {
            // Rendezvous: RTS header now; the receiver RDMA-reads the
            // payload and FINs. `done` resolves at FIN.
            self.tp.fabric.send(self.node, dst, spec.header_bytes).await;
            let (done_tx, done_rx) = oneshot();
            deliver_send(
                &self.tp,
                dst,
                tag,
                PendingSend {
                    src: self.node,
                    payload,
                    done: done_tx,
                },
            );
            done_rx.await.expect("receiver side dropped mid-rendezvous");
        }
    }

    /// Receive a message sent to this node with tag `tag`. Returns the
    /// sender and the payload.
    pub async fn tag_recv(&self, tag: Tag) -> (NodeId, Bytes) {
        // Check the unexpected queue or park, without holding the worker
        // borrow across any await.
        let parked = {
            let mut w = self.tp.inner.workers[self.node.0 as usize].borrow_mut();
            match w
                .queues
                .unexpected
                .get_mut(&tag)
                .and_then(|q| q.pop_front())
            {
                Some(p) => Ok(p),
                None => {
                    let (tx, rx) = oneshot();
                    w.queues.expected.entry(tag).or_default().push_back(tx);
                    Err(rx)
                }
            }
        };
        let pending = match parked {
            Ok(p) => p,
            // Park until a send matches us.
            Err(rx) => rx.await.expect("transport closed"),
        };
        self.complete_recv(pending).await
    }

    async fn complete_recv(&self, pending: PendingSend) -> (NodeId, Bytes) {
        let spec = self.tp.spec;
        let len = pending.payload.len() as u64;
        if len <= spec.rndv_threshold {
            // Eager: payload already arrived with the message.
            let _ = pending.done.send(());
            (pending.src, pending.payload)
        } else {
            // Rendezvous: pull payload via RDMA read, then FIN.
            self.tp.fabric.rdma_read(self.node, pending.src, len).await;
            self.tp
                .fabric
                .send(self.node, pending.src, spec.header_bytes)
                .await;
            let _ = pending.done.send(());
            (pending.src, pending.payload)
        }
    }

    /// Issue a bulk request/response RPC: a small `header` plus a
    /// zero-copy `payload`. The wire charges descriptor + payload length
    /// in each direction (RPC descriptor followed by bulk RDMA, as in
    /// Lustre `brw` and UCX rendezvous).
    pub async fn bulk_rpc(
        &self,
        dst: NodeId,
        id: AmId,
        header: Bytes,
        payload: Payload,
    ) -> (Bytes, Payload) {
        let spec = self.tp.spec;
        {
            let mut st = self.tp.inner.stats.borrow_mut();
            st.bulk_rpcs += 1;
            st.bulk_bytes += payload_len(&payload);
        }
        self.tp
            .fabric
            .send(
                self.node,
                dst,
                spec.header_bytes + header.len() as u64 + payload_len(&payload),
            )
            .await;
        let handler = {
            let w = self.tp.inner.workers[dst.0 as usize].borrow();
            w.bulk_handlers
                .get(&id)
                .unwrap_or_else(|| panic!("no bulk handler {id:?} on {dst}"))
                .clone()
        };
        let (resp_header, resp_payload) = handler(header, payload).await;
        self.tp.inner.stats.borrow_mut().bulk_bytes += payload_len(&resp_payload);
        self.tp
            .fabric
            .send(
                dst,
                self.node,
                spec.header_bytes + resp_header.len() as u64 + payload_len(&resp_payload),
            )
            .await;
        (resp_header, resp_payload)
    }

    /// Issue a request/response RPC against the handler registered as
    /// `(dst, id)`. The handler runs on the destination node's worker.
    pub async fn rpc(&self, dst: NodeId, id: AmId, request: Bytes) -> Bytes {
        let spec = self.tp.spec;
        self.tp.inner.stats.borrow_mut().rpcs += 1;
        // Control-plane requests are small; model as header + payload.
        self.tp
            .fabric
            .send(self.node, dst, spec.header_bytes + request.len() as u64)
            .await;
        let handler = {
            let w = self.tp.inner.workers[dst.0 as usize].borrow();
            w.handlers
                .get(&id)
                .unwrap_or_else(|| panic!("no AM handler {id:?} on {dst}"))
                .clone()
        };
        let response = handler(request).await;
        self.tp
            .fabric
            .send(dst, self.node, spec.header_bytes + response.len() as u64)
            .await;
        response
    }

    /// One fallible RPC attempt. With no fault board attached this is
    /// exactly [`Endpoint::rpc`] and cannot fail. With a board, the
    /// destination's reachability is checked before the request goes on
    /// the wire, after it lands (the node may crash mid-flight), and
    /// before the response is sent back (a reply lost to a crash still
    /// leaves the handler's side effects applied, as on real systems).
    pub async fn try_rpc(
        &self,
        dst: NodeId,
        id: AmId,
        request: Bytes,
    ) -> Result<Bytes, TransportError> {
        let spec = self.tp.spec;
        let board = self.tp.faults();
        self.tp.inner.stats.borrow_mut().rpcs += 1;
        if let Some(b) = &board {
            if !b.reachable(self.node.0, dst.0) {
                return Err(TransportError::Unreachable { node: dst });
            }
        }
        self.tp
            .fabric
            .send(self.node, dst, spec.header_bytes + request.len() as u64)
            .await;
        if let Some(b) = &board {
            if !b.node_up(dst.0) {
                return Err(TransportError::Unreachable { node: dst });
            }
        }
        let handler = {
            let w = self.tp.inner.workers[dst.0 as usize].borrow();
            w.handlers
                .get(&id)
                .unwrap_or_else(|| panic!("no AM handler {id:?} on {dst}"))
                .clone()
        };
        let response = handler(request).await;
        if let Some(b) = &board {
            if !b.reachable(dst.0, self.node.0) {
                return Err(TransportError::Unreachable { node: dst });
            }
        }
        self.tp
            .fabric
            .send(dst, self.node, spec.header_bytes + response.len() as u64)
            .await;
        Ok(response)
    }

    /// One fallible bulk RPC attempt; see [`Endpoint::try_rpc`].
    pub async fn try_bulk_rpc(
        &self,
        dst: NodeId,
        id: AmId,
        header: Bytes,
        payload: Payload,
    ) -> Result<(Bytes, Payload), TransportError> {
        let spec = self.tp.spec;
        let board = self.tp.faults();
        {
            let mut st = self.tp.inner.stats.borrow_mut();
            st.bulk_rpcs += 1;
            st.bulk_bytes += payload_len(&payload);
        }
        if let Some(b) = &board {
            if !b.reachable(self.node.0, dst.0) {
                return Err(TransportError::Unreachable { node: dst });
            }
        }
        self.tp
            .fabric
            .send(
                self.node,
                dst,
                spec.header_bytes + header.len() as u64 + payload_len(&payload),
            )
            .await;
        if let Some(b) = &board {
            if !b.node_up(dst.0) {
                return Err(TransportError::Unreachable { node: dst });
            }
        }
        let handler = {
            let w = self.tp.inner.workers[dst.0 as usize].borrow();
            w.bulk_handlers
                .get(&id)
                .unwrap_or_else(|| panic!("no bulk handler {id:?} on {dst}"))
                .clone()
        };
        let (resp_header, resp_payload) = handler(header, payload).await;
        self.tp.inner.stats.borrow_mut().bulk_bytes += payload_len(&resp_payload);
        if let Some(b) = &board {
            if !b.reachable(dst.0, self.node.0) {
                return Err(TransportError::Unreachable { node: dst });
            }
        }
        self.tp
            .fabric
            .send(
                dst,
                self.node,
                spec.header_bytes + resp_header.len() as u64 + payload_len(&resp_payload),
            )
            .await;
        Ok((resp_header, resp_payload))
    }

    /// RPC with retry: exponential backoff with jitter between attempts
    /// and a per-attempt timeout, per `policy`. With no fault board
    /// attached this is a single infallible [`Endpoint::rpc`] — no timer
    /// is armed and `rng` is not drawn, so healthy-path trajectories are
    /// unchanged.
    pub async fn rpc_retrying(
        &self,
        dst: NodeId,
        id: AmId,
        request: Bytes,
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> Result<Bytes, TransportError> {
        if self.tp.faults().is_none() {
            return Ok(self.rpc(dst, id, request).await);
        }
        let ctx = self.tp.ctx.clone();
        let mut attempts = 0;
        loop {
            let attempt_fut = self.try_rpc(dst, id, request.clone());
            let outcome = match timeout(&ctx, policy.attempt_timeout, attempt_fut).await {
                Ok(Ok(resp)) => return Ok(resp),
                Ok(Err(e)) => e,
                Err(_) => TransportError::Timeout { node: dst },
            };
            attempts += 1;
            if attempts >= policy.max_attempts {
                self.tp.inner.stats.borrow_mut().rpc_giveups += 1;
                let _ = outcome;
                return Err(TransportError::Exhausted {
                    node: dst,
                    attempts,
                });
            }
            let pause = policy.backoff(attempts - 1, rng);
            {
                let mut st = self.tp.inner.stats.borrow_mut();
                st.rpc_retries += 1;
                st.retry_backoff_ns += pause.nanos();
            }
            ctx.sleep(pause).await;
        }
    }

    /// Bulk RPC with retry; see [`Endpoint::rpc_retrying`]. Payload
    /// segments are zero-copy `Bytes` clones, so re-sending is cheap.
    pub async fn bulk_rpc_retrying(
        &self,
        dst: NodeId,
        id: AmId,
        header: Bytes,
        payload: Payload,
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> Result<(Bytes, Payload), TransportError> {
        if self.tp.faults().is_none() {
            return Ok(self.bulk_rpc(dst, id, header, payload).await);
        }
        let ctx = self.tp.ctx.clone();
        let mut attempts = 0;
        loop {
            let attempt_fut = self.try_bulk_rpc(dst, id, header.clone(), payload.clone());
            let outcome = match timeout(&ctx, policy.attempt_timeout, attempt_fut).await {
                Ok(Ok(resp)) => return Ok(resp),
                Ok(Err(e)) => e,
                Err(_) => TransportError::Timeout { node: dst },
            };
            attempts += 1;
            if attempts >= policy.max_attempts {
                self.tp.inner.stats.borrow_mut().rpc_giveups += 1;
                let _ = outcome;
                return Err(TransportError::Exhausted {
                    node: dst,
                    attempts,
                });
            }
            let pause = policy.backoff(attempts - 1, rng);
            {
                let mut st = self.tp.inner.stats.borrow_mut();
                st.rpc_retries += 1;
                st.retry_backoff_ns += pause.nanos();
            }
            ctx.sleep(pause).await;
        }
    }
}

/// Route an arrived send to a parked receive, or queue it as unexpected.
fn deliver_send(tp: &Transport, dst: NodeId, tag: Tag, pending: PendingSend) {
    let mut w = tp.inner.workers[dst.0 as usize].borrow_mut();
    // Skip receives whose futures were dropped (send() returns Err).
    let mut pending = pending;
    if let Some(q) = w.queues.expected.get_mut(&tag) {
        while let Some(rx) = q.pop_front() {
            match rx.send(pending) {
                Ok(()) => return,
                Err(p) => pending = p,
            }
        }
    }
    w.queues
        .unexpected
        .entry(tag)
        .or_default()
        .push_back(pending);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use simcore::{Sim, SimDuration};

    fn setup(sim: &Sim, n: usize) -> Transport {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(n));
        Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default())
    }

    #[test]
    fn eager_send_recv_roundtrip() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        let data = Bytes::from_static(b"hello world");
        let rx_ep = tp.endpoint(NodeId(1));
        let h = sim.spawn(async move { rx_ep.tag_recv(Tag(7)).await });
        let tx_ep = tp.endpoint(NodeId(0));
        let d2 = data.clone();
        sim.spawn(async move { tx_ep.tag_send(NodeId(1), Tag(7), d2).await });
        sim.run();
        let (src, got) = h.try_take().unwrap();
        assert_eq!(src, NodeId(0));
        assert_eq!(got, data);
    }

    #[test]
    fn rendezvous_used_for_large_payloads() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        let payload = Bytes::from(vec![0xAB; 1_000_000]); // 1 MB > 8 KiB
        let rx_ep = tp.endpoint(NodeId(1));
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let (_, data) = rx_ep.tag_recv(Tag(1)).await;
            (ctx.now().as_secs_f64(), data.len())
        });
        let tx_ep = tp.endpoint(NodeId(0));
        sim.spawn(async move { tx_ep.tag_send(NodeId(1), Tag(1), payload).await });
        sim.run();
        let (t, len) = h.try_take().unwrap();
        assert_eq!(len, 1_000_000);
        // At least the payload streaming time at 4 GB/s (~250 µs).
        assert!(t >= 0.000250, "took {t}");
        // And well under a millisecond (no pathological serialization).
        assert!(t < 0.001, "took {t}");
    }

    #[test]
    fn unexpected_messages_queue_until_recv_posted() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        let tx_ep = tp.endpoint(NodeId(0));
        sim.spawn(async move {
            tx_ep
                .tag_send(NodeId(1), Tag(3), Bytes::from_static(b"x"))
                .await;
        });
        let rx_ep = tp.endpoint(NodeId(1));
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(10)).await; // post late
            rx_ep.tag_recv(Tag(3)).await.1
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Bytes::from_static(b"x"));
    }

    #[test]
    fn different_tags_do_not_match() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        let got_wrong = Rc::new(std::cell::Cell::new(false));
        {
            let rx_ep = tp.endpoint(NodeId(1));
            let got_wrong = got_wrong.clone();
            sim.spawn(async move {
                rx_ep.tag_recv(Tag(99)).await;
                got_wrong.set(true);
            });
        }
        let tx_ep = tp.endpoint(NodeId(0));
        sim.spawn(async move {
            tx_ep
                .tag_send(NodeId(1), Tag(1), Bytes::from_static(b"y"))
                .await;
        });
        let report = sim.run();
        assert!(!got_wrong.get());
        assert_eq!(report.deadlocked_tasks, 1); // the Tag(99) recv never matches
    }

    #[test]
    fn sends_matched_in_fifo_order() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        for i in 0..3u8 {
            let ep = tp.endpoint(NodeId(0));
            let ctx = sim.ctx();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_micros(i as u64 * 100)).await;
                ep.tag_send(NodeId(1), Tag(5), Bytes::from(vec![i])).await;
            });
        }
        let rx_ep = tp.endpoint(NodeId(1));
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_millis(1)).await;
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(rx_ep.tag_recv(Tag(5)).await.1[0]);
            }
            got
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn rpc_invokes_remote_handler() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        // Handler on node 1 doubles each byte.
        tp.register_am(
            NodeId(1),
            AmId(1),
            Rc::new(|req: Bytes| {
                Box::pin(async move {
                    let out: Vec<u8> = req.iter().map(|b| b * 2).collect();
                    Bytes::from(out)
                }) as LocalBoxFuture<Bytes>
            }),
        );
        let ep = tp.endpoint(NodeId(0));
        let h = sim.spawn(async move {
            ep.rpc(NodeId(1), AmId(1), Bytes::from_static(&[1, 2, 3]))
                .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Bytes::from_static(&[2, 4, 6]));
    }

    #[test]
    fn rpc_pays_round_trip_latency() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        tp.register_am(
            NodeId(1),
            AmId(2),
            Rc::new(|_req| Box::pin(async move { Bytes::new() }) as LocalBoxFuture<Bytes>),
        );
        let ep = tp.endpoint(NodeId(0));
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            ep.rpc(NodeId(1), AmId(2), Bytes::new()).await;
            ctx.now().nanos()
        });
        sim.run();
        // Two fabric messages, each 1 µs overhead + 3 µs wire + 64 B
        // payload streaming (16 ns at 4 GB/s each).
        let t = h.try_take().unwrap();
        assert!((8_000..9_000).contains(&t), "took {t} ns");
    }

    #[test]
    fn local_rpc_is_cheap() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        tp.register_am(
            NodeId(0),
            AmId(3),
            Rc::new(|_req| Box::pin(async move { Bytes::new() }) as LocalBoxFuture<Bytes>),
        );
        let ep = tp.endpoint(NodeId(0));
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            ep.rpc(NodeId(0), AmId(3), Bytes::new()).await;
            ctx.now().nanos()
        });
        sim.run();
        // Intra-node: memory-copy cost only (64 B headers at 20 GB/s).
        assert!(h.try_take().unwrap() < 100);
    }

    #[test]
    fn payload_integrity_through_rendezvous() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let rx_ep = tp.endpoint(NodeId(1));
        let h = sim.spawn(async move { rx_ep.tag_recv(Tag(9)).await.1 });
        let tx_ep = tp.endpoint(NodeId(0));
        sim.spawn(async move {
            tx_ep
                .tag_send(NodeId(1), Tag(9), Bytes::from(payload))
                .await;
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Bytes::from(expect));
    }

    #[test]
    fn stats_count_protocols_and_bytes() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        tp.register_am(
            NodeId(1),
            AmId(9),
            Rc::new(|_req| Box::pin(async move { Bytes::new() }) as LocalBoxFuture<Bytes>),
        );
        tp.register_bulk(
            NodeId(1),
            AmId(10),
            Rc::new(|_h, p| {
                Box::pin(async move { (Bytes::new(), p) }) as LocalBoxFuture<(Bytes, Payload)>
            }),
        );
        let rx_ep = tp.endpoint(NodeId(1));
        sim.spawn(async move {
            rx_ep.tag_recv(Tag(1)).await;
            rx_ep.tag_recv(Tag(2)).await;
        });
        let ep = tp.endpoint(NodeId(0));
        sim.spawn(async move {
            ep.tag_send(NodeId(1), Tag(1), Bytes::from(vec![0u8; 100]))
                .await;
            ep.tag_send(NodeId(1), Tag(2), Bytes::from(vec![0u8; 100_000]))
                .await;
            ep.rpc(NodeId(1), AmId(9), Bytes::new()).await;
            ep.bulk_rpc(
                NodeId(1),
                AmId(10),
                Bytes::new(),
                vec![Bytes::from(vec![1u8; 500])],
            )
            .await;
        });
        assert!(sim.run().is_clean());
        let st = tp.stats();
        assert_eq!(st.eager_sends, 1);
        assert_eq!(st.rndv_sends, 1);
        assert_eq!(st.tag_bytes, 100_100);
        assert_eq!(st.rpcs, 1);
        assert_eq!(st.bulk_rpcs, 1);
        // 500 request + 500 echoed response.
        assert_eq!(st.bulk_bytes, 1_000);
    }

    #[test]
    fn concurrent_rendezvous_transfers_share_links() {
        // Two large transfers from the same source node must take about
        // twice as long as one (tx port is the bottleneck).
        let sim = Sim::new(0);
        let tp = setup(&sim, 3);
        let mut hs = Vec::new();
        for dst in [1u32, 2u32] {
            let rx_ep = tp.endpoint(NodeId(dst));
            let ctx = sim.ctx();
            hs.push(sim.spawn(async move {
                rx_ep.tag_recv(Tag(dst as u64)).await;
                ctx.now().as_secs_f64()
            }));
            let tx_ep = tp.endpoint(NodeId(0));
            sim.spawn(async move {
                tx_ep
                    .tag_send(
                        NodeId(dst),
                        Tag(dst as u64),
                        Bytes::from(vec![0u8; 400_000_000]),
                    )
                    .await;
            });
        }
        sim.run();
        for h in hs {
            let t = h.try_take().unwrap();
            // 0.8 GB total over a 4 GB/s tx port ≈ 0.2 s.
            assert!((t - 0.2).abs() < 0.01, "took {t}");
        }
    }

    use faults::{FaultEvent, FaultKind, FaultPlan};
    use rand::SeedableRng;

    fn echo_handler() -> AmHandler {
        Rc::new(|req: Bytes| Box::pin(async move { req }) as LocalBoxFuture<Bytes>)
    }

    #[test]
    fn retrying_without_board_is_plain_rpc() {
        let sim = Sim::new(0);
        let tp = setup(&sim, 2);
        tp.register_am(NodeId(1), AmId(1), echo_handler());
        let ep = tp.endpoint(NodeId(0));
        let h = sim.spawn(async move {
            let mut rng = StdRng::seed_from_u64(1);
            ep.rpc_retrying(
                NodeId(1),
                AmId(1),
                Bytes::from_static(b"ping"),
                &RetryPolicy::transport_default(),
                &mut rng,
            )
            .await
        });
        assert!(sim.run().is_clean());
        assert_eq!(h.try_take().unwrap().unwrap(), Bytes::from_static(b"ping"));
        let st = tp.stats();
        assert_eq!(st.rpcs, 1);
        assert_eq!(st.rpc_retries, 0);
        assert_eq!(st.retry_backoff_ns, 0);
    }

    #[test]
    fn rpc_retries_through_a_crash_window() {
        let sim = Sim::new(7);
        let ctx = sim.ctx();
        let tp = setup(&sim, 2);
        tp.register_am(NodeId(1), AmId(1), echo_handler());
        let board = FaultBoard::new(&ctx, 2, 0);
        tp.set_faults(board.clone());
        // Node 1 is down from t=0 for 2 ms; backoff must carry the
        // caller past the restart.
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_nanos(0),
            kind: FaultKind::NodeCrash {
                node: 1,
                down_for: SimDuration::from_millis(2),
            },
        }]));
        let ep = tp.endpoint(NodeId(0));
        let h = sim.spawn(async move {
            let mut rng = StdRng::seed_from_u64(2);
            ep.rpc_retrying(
                NodeId(1),
                AmId(1),
                Bytes::from_static(b"hi"),
                &RetryPolicy::transport_default(),
                &mut rng,
            )
            .await
        });
        assert!(sim.run().is_clean());
        assert_eq!(h.try_take().unwrap().unwrap(), Bytes::from_static(b"hi"));
        let st = tp.stats();
        assert!(st.rpc_retries >= 1, "expected retries, got {st:?}");
        assert_eq!(st.rpc_giveups, 0);
        assert!(st.retry_backoff_ns > 0);
    }

    #[test]
    fn rpc_exhausts_retries_when_node_stays_down() {
        let sim = Sim::new(3);
        let ctx = sim.ctx();
        let tp = setup(&sim, 2);
        tp.register_am(NodeId(1), AmId(1), echo_handler());
        let board = FaultBoard::new(&ctx, 2, 0);
        tp.set_faults(board.clone());
        board.arm(&FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_nanos(0),
            kind: FaultKind::NodeCrash {
                node: 1,
                down_for: SimDuration::from_secs(3600),
            },
        }]));
        let policy = RetryPolicy::transport_default();
        let max = policy.max_attempts;
        let ep = tp.endpoint(NodeId(0));
        let h = sim.spawn(async move {
            let mut rng = StdRng::seed_from_u64(4);
            ep.rpc_retrying(NodeId(1), AmId(1), Bytes::new(), &policy, &mut rng)
                .await
        });
        assert!(sim.run().is_clean());
        assert_eq!(
            h.try_take().unwrap(),
            Err(TransportError::Exhausted {
                node: NodeId(1),
                attempts: max,
            })
        );
        assert_eq!(tp.stats().rpc_giveups, 1);
    }

    #[test]
    fn bulk_rpc_retries_are_deterministic_per_seed() {
        // Same seed → same completion time and stats; different seed →
        // (almost surely) different backoff jitter.
        let run = |seed: u64| -> (u64, TransportStats) {
            let sim = Sim::new(seed);
            let ctx = sim.ctx();
            let tp = setup(&sim, 2);
            tp.register_bulk(
                NodeId(1),
                AmId(10),
                Rc::new(|h, p| Box::pin(async move { (h, p) }) as LocalBoxFuture<(Bytes, Payload)>),
            );
            let board = FaultBoard::new(&ctx, 2, 0);
            tp.set_faults(board.clone());
            board.arm(&FaultPlan::scheduled(vec![FaultEvent {
                at: SimDuration::from_nanos(0),
                kind: FaultKind::NodeCrash {
                    node: 1,
                    down_for: SimDuration::from_millis(1),
                },
            }]));
            let ep = tp.endpoint(NodeId(0));
            let ctx2 = ctx.clone();
            let h = sim.spawn(async move {
                let mut rng = StdRng::seed_from_u64(seed);
                let got = ep
                    .bulk_rpc_retrying(
                        NodeId(1),
                        AmId(10),
                        Bytes::new(),
                        vec![Bytes::from_static(b"frame")],
                        &RetryPolicy::transport_default(),
                        &mut rng,
                    )
                    .await;
                assert!(got.is_ok());
                ctx2.now().nanos()
            });
            assert!(sim.run().is_clean());
            (h.try_take().unwrap(), tp.stats())
        };
        let (t_a1, st_a1) = run(11);
        let (t_a2, st_a2) = run(11);
        let (t_b, _) = run(12);
        assert_eq!(t_a1, t_a2);
        assert_eq!(st_a1, st_a2);
        assert_ne!(t_a1, t_b, "different seeds should jitter differently");
    }
}
