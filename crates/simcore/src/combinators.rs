//! Future combinators for simulated processes: timeouts and races.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::{Ctx, Sleep};
use crate::time::SimDuration;

/// Result of [`timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedOut {
    /// The deadline elapsed before the future completed.
    Elapsed,
}

impl std::fmt::Display for TimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline elapsed")
    }
}
impl std::error::Error for TimedOut {}

/// Run `fut` with a simulated-time deadline. Returns `Err(Elapsed)` if
/// the deadline fires first; the inner future is dropped (cancelled).
///
/// ```
/// use simcore::{Sim, SimDuration, timeout};
///
/// let sim = Sim::new(0);
/// let ctx = sim.ctx();
/// let h = sim.spawn(async move {
///     let slow = ctx.sleep(SimDuration::from_secs(10));
///     timeout(&ctx, SimDuration::from_millis(5), slow).await.is_err()
/// });
/// sim.run();
/// assert!(h.try_take().unwrap());
/// ```
pub fn timeout<F: Future>(ctx: &Ctx, deadline: SimDuration, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        sleep: ctx.sleep(deadline),
    }
}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    fut: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, TimedOut>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: standard structural pinning — neither field is moved.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if let Poll::Ready(v) = fut.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        let sleep = Pin::new(&mut this.sleep);
        match sleep.poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(TimedOut::Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Which side of a [`race`] finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future won.
    Left(A),
    /// The second future won.
    Right(B),
}

/// Race two futures; the loser is dropped. Ties go to the left.
pub fn race<A: Future, B: Future>(a: A, b: B) -> Race<A, B> {
    Race { a, b }
}

/// Future returned by [`race`].
pub struct Race<A, B> {
    a: A,
    b: B,
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning as above.
        let this = unsafe { self.get_unchecked_mut() };
        if let Poll::Ready(v) = unsafe { Pin::new_unchecked(&mut this.a) }.poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = unsafe { Pin::new_unchecked(&mut this.b) }.poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;

    #[test]
    fn timeout_passes_through_fast_futures() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let fast = async {
                ctx.sleep(SimDuration::from_millis(1)).await;
                42
            };
            timeout(&ctx, SimDuration::from_secs(1), fast).await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Ok(42));
    }

    #[test]
    fn timeout_cancels_slow_futures() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let slow = async {
                ctx.sleep(SimDuration::from_secs(100)).await;
                42
            };
            let r = timeout(&ctx, SimDuration::from_millis(3), slow).await;
            (r, ctx.now().nanos() / 1_000_000)
        });
        let report = sim.run();
        let (r, at) = h.try_take().unwrap();
        assert_eq!(r, Err(TimedOut::Elapsed));
        assert_eq!(at, 3);
        // The cancelled sleep's calendar entry still fires harmlessly.
        assert!(report.is_clean());
    }

    #[test]
    fn race_returns_first_winner() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let c1 = ctx.clone();
        let c2 = ctx.clone();
        let h = sim.spawn(async move {
            let a = async move {
                c1.sleep(SimDuration::from_millis(10)).await;
                "a"
            };
            let b = async move {
                c2.sleep(SimDuration::from_millis(5)).await;
                "b"
            };
            race(a, b).await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Either::Right("b"));
    }

    #[test]
    fn race_ties_go_left() {
        let sim = Sim::new(0);
        let h = sim.spawn(async move { race(async { 1 }, async { 2 }).await });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Either::Left(1));
    }

    #[test]
    fn timeout_composes_with_channels() {
        use crate::sync::channel;
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let (tx, mut rx) = channel::<u32>();
        let h = sim.spawn(async move {
            // Nothing sent for 2 ms, then a value.
            let first = timeout(&ctx, SimDuration::from_millis(1), rx.recv()).await;
            let second = timeout(&ctx, SimDuration::from_secs(1), rx.recv()).await;
            (first.is_err(), second)
        });
        let ctx2 = sim.ctx();
        sim.spawn(async move {
            ctx2.sleep(SimDuration::from_millis(2)).await;
            tx.send(7);
        });
        sim.run();
        let (timed_out, got) = h.try_take().unwrap();
        assert!(timed_out);
        assert_eq!(got, Ok(Some(7)));
    }
}
