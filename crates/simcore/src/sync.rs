//! Simulation-aware synchronization primitives.
//!
//! These mirror the async primitives of a production runtime but operate
//! entirely inside one simulated process group: waking a waiter costs zero
//! simulated time (the caller models any real cost explicitly with
//! [`crate::Ctx::sleep`] or a [`crate::resource`]).
//!
//! All primitives are `!Send` (the simulator is single-threaded) and
//! cancellation-safe: dropping a pending wait future removes it from the
//! wait queue and, for [`Semaphore`], returns any permits that were granted
//! but never observed.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

/// Create a oneshot channel: a single value, sent once.
pub fn oneshot<T>() -> (OneSender<T>, OneReceiver<T>) {
    let st = Rc::new(RefCell::new(OneState {
        value: None,
        waker: None,
        closed: false,
    }));
    (OneSender { st: st.clone() }, OneReceiver { st })
}

struct OneState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    closed: bool,
}

/// Sending half of a oneshot channel.
pub struct OneSender<T> {
    st: Rc<RefCell<OneState<T>>>,
}

/// Receiving half of a oneshot channel.
pub struct OneReceiver<T> {
    st: Rc<RefCell<OneState<T>>>,
}

/// Error returned when the sending half was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}
impl std::error::Error for RecvError {}

impl<T> OneSender<T> {
    /// Deliver the value, waking the receiver. Returns the value back if
    /// the receiver was dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut st = self.st.borrow_mut();
        if Rc::strong_count(&self.st) == 1 {
            return Err(value); // receiver gone
        }
        st.value = Some(value);
        if let Some(w) = st.waker.take() {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for OneSender<T> {
    fn drop(&mut self) {
        let mut st = self.st.borrow_mut();
        st.closed = true;
        if let Some(w) = st.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneReceiver<T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.st.borrow_mut();
        if let Some(v) = st.value.take() {
            return Poll::Ready(Ok(v));
        }
        if st.closed {
            return Poll::Ready(Err(RecvError));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// mpsc (unbounded)
// ---------------------------------------------------------------------------

/// Create an unbounded multi-producer single-consumer channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let st = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
    }));
    (Sender { st: st.clone() }, Receiver { st })
}

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    st: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    st: Rc<RefCell<ChanState<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.st.borrow_mut().senders += 1;
        Sender {
            st: self.st.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.st.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            if let Some(w) = st.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a message, waking the receiver if it is parked.
    pub fn send(&self, value: T) {
        let mut st = self.st.borrow_mut();
        st.queue.push_back(value);
        if let Some(w) = st.recv_waker.take() {
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Await the next message. Resolves to `None` once every sender has
    /// been dropped and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.st.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.st.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.rx.st.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if st.senders == 0 {
            return Poll::Ready(None);
        }
        st.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitState {
    Queued,
    Granted,
    Cancelled,
}

struct SemWaiter {
    amount: u64,
    state: WaitState,
    waker: Option<Waker>,
}

struct SemState {
    permits: u64,
    waiters: VecDeque<Rc<RefCell<SemWaiter>>>,
    peak_queue: usize,
}

/// A counting semaphore with FIFO wakeups.
///
/// FIFO ordering means a large request at the head of the queue blocks
/// later small requests (no barging), which models fair device queues.
#[derive(Clone)]
pub struct Semaphore {
    st: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create a semaphore holding `permits` initial permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            st: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
                peak_queue: 0,
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.st.borrow().permits
    }

    /// Number of parked waiters.
    pub fn queue_len(&self) -> usize {
        self.st.borrow().waiters.len()
    }

    /// Largest queue length observed so far.
    pub fn peak_queue(&self) -> usize {
        self.st.borrow().peak_queue
    }

    /// Acquire `amount` permits; the returned guard releases them on drop.
    pub fn acquire(&self, amount: u64) -> Acquire {
        Acquire {
            sem: self.clone(),
            amount,
            waiter: None,
        }
    }

    /// Try to acquire without waiting.
    pub fn try_acquire(&self, amount: u64) -> Option<Permit> {
        let mut st = self.st.borrow_mut();
        if st.waiters.is_empty() && st.permits >= amount {
            st.permits -= amount;
            Some(Permit {
                sem: self.clone(),
                amount,
            })
        } else {
            None
        }
    }

    /// Return `amount` permits and hand them to queued waiters in order.
    pub fn add_permits(&self, amount: u64) {
        {
            // Fast path: nobody queued, so this is a pure counter bump.
            let mut st = self.st.borrow_mut();
            st.permits += amount;
            if st.waiters.is_empty() {
                return;
            }
        }
        let mut to_wake = Vec::new();
        {
            let mut st = self.st.borrow_mut();
            while let Some(front) = st.waiters.front().cloned() {
                let mut w = front.borrow_mut();
                match w.state {
                    WaitState::Cancelled => {
                        drop(w);
                        st.waiters.pop_front();
                    }
                    WaitState::Queued if st.permits >= w.amount => {
                        st.permits -= w.amount;
                        w.state = WaitState::Granted;
                        if let Some(wk) = w.waker.take() {
                            to_wake.push(wk);
                        }
                        drop(w);
                        st.waiters.pop_front();
                    }
                    _ => break,
                }
            }
        }
        for w in to_wake {
            w.wake();
        }
    }
}

/// RAII permit returned by [`Semaphore::acquire`].
pub struct Permit {
    sem: Semaphore,
    amount: u64,
}

impl Permit {
    /// Number of permits held.
    pub fn amount(&self) -> u64 {
        self.amount
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.add_permits(self.amount);
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    amount: u64,
    waiter: Option<Rc<RefCell<SemWaiter>>>,
}

impl Future for Acquire {
    type Output = Permit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        let amount = self.amount;
        if let Some(waiter) = &self.waiter {
            let mut w = waiter.borrow_mut();
            match w.state {
                WaitState::Granted => {
                    w.state = WaitState::Cancelled; // consumed; Drop must not refund
                    drop(w);
                    self.waiter = None;
                    return Poll::Ready(Permit {
                        sem: self.sem.clone(),
                        amount,
                    });
                }
                WaitState::Queued => {
                    w.waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
                WaitState::Cancelled => unreachable!("poll after cancellation"),
            }
        }
        let mut st = self.sem.st.borrow_mut();
        if st.waiters.is_empty() && st.permits >= amount {
            st.permits -= amount;
            drop(st);
            return Poll::Ready(Permit {
                sem: self.sem.clone(),
                amount,
            });
        }
        let waiter = Rc::new(RefCell::new(SemWaiter {
            amount,
            state: WaitState::Queued,
            waker: Some(cx.waker().clone()),
        }));
        st.waiters.push_back(waiter.clone());
        let qlen = st.waiters.len();
        st.peak_queue = st.peak_queue.max(qlen);
        drop(st);
        self.waiter = Some(waiter);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(waiter) = self.waiter.take() {
            let state = {
                let mut w = waiter.borrow_mut();
                let s = w.state;
                w.state = WaitState::Cancelled;
                s
            };
            // If permits were granted but the future was dropped before
            // observing them, refund so they are not leaked.
            if state == WaitState::Granted {
                self.sem.add_permits(self.amount);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

struct NotifyWaiter {
    notified: bool,
    waker: Option<Waker>,
}

/// Edge-triggered notification: waiters park until a notify call.
#[derive(Clone, Default)]
pub struct Notify {
    st: Rc<RefCell<Vec<Rc<RefCell<NotifyWaiter>>>>>,
}

impl Notify {
    /// Create an empty notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake every currently-parked waiter.
    pub fn notify_all(&self) {
        let waiters = std::mem::take(&mut *self.st.borrow_mut());
        for w in waiters {
            let mut w = w.borrow_mut();
            w.notified = true;
            if let Some(wk) = w.waker.take() {
                wk.wake();
            }
        }
    }

    /// Wake the longest-parked waiter, if any. Returns whether one was
    /// woken.
    pub fn notify_one(&self) -> bool {
        let mut st = self.st.borrow_mut();
        if st.is_empty() {
            return false;
        }
        let w = st.remove(0);
        drop(st);
        let mut w = w.borrow_mut();
        w.notified = true;
        if let Some(wk) = w.waker.take() {
            wk.wake();
        }
        true
    }

    /// Park until the next notification.
    pub fn wait(&self) -> Wait {
        Wait {
            notify: self.clone(),
            waiter: None,
        }
    }

    /// Number of parked waiters.
    pub fn waiter_count(&self) -> usize {
        self.st.borrow().len()
    }
}

/// Future returned by [`Notify::wait`].
pub struct Wait {
    notify: Notify,
    waiter: Option<Rc<RefCell<NotifyWaiter>>>,
}

impl Future for Wait {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match &self.waiter {
            Some(w) => {
                let mut w = w.borrow_mut();
                if w.notified {
                    Poll::Ready(())
                } else {
                    w.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
            None => {
                let w = Rc::new(RefCell::new(NotifyWaiter {
                    notified: false,
                    waker: Some(cx.waker().clone()),
                }));
                self.notify.st.borrow_mut().push(w.clone());
                self.waiter = Some(w);
                Poll::Pending
            }
        }
    }
}

impl Drop for Wait {
    fn drop(&mut self) {
        if let Some(w) = self.waiter.take() {
            // Remove ourselves so notify_one is not wasted on a dead waiter.
            let mut st = self.notify.st.borrow_mut();
            st.retain(|x| !Rc::ptr_eq(x, &w));
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    notify: Notify,
}

/// A cyclic barrier for `parties` processes, reusable across generations.
#[derive(Clone)]
pub struct Barrier {
    st: Rc<RefCell<BarrierState>>,
}

/// Result of [`Barrier::wait`]: exactly one arriving process per generation
/// is the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    /// True for the process whose arrival released the barrier.
    pub is_leader: bool,
}

impl Barrier {
    /// Create a barrier for `parties` processes (must be ≥ 1).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        Barrier {
            st: Rc::new(RefCell::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
                notify: Notify::new(),
            })),
        }
    }

    /// Arrive and wait for all parties.
    pub async fn wait(&self) -> BarrierWaitResult {
        let (generation, leader, notify) = {
            let mut st = self.st.borrow_mut();
            st.arrived += 1;
            if st.arrived == st.parties {
                st.arrived = 0;
                st.generation += 1;
                st.notify.notify_all();
                return BarrierWaitResult { is_leader: true };
            }
            (st.generation, false, st.notify.clone())
        };
        let _ = leader;
        // Wait until the generation advances; a single notify_all releases
        // everyone from this generation.
        loop {
            notify.wait().await;
            if self.st.borrow().generation > generation {
                return BarrierWaitResult { is_leader: false };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn oneshot_delivers_value() {
        let sim = Sim::new(0);
        let (tx, rx) = oneshot::<u32>();
        let ctx = sim.ctx();
        let h = sim.spawn(rx);
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_nanos(5)).await;
            tx.send(9).unwrap();
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Ok(9));
    }

    #[test]
    fn oneshot_sender_drop_errors() {
        let sim = Sim::new(0);
        let (tx, rx) = oneshot::<u32>();
        let h = sim.spawn(rx);
        drop(tx);
        sim.run();
        assert_eq!(h.try_take().unwrap(), Err(RecvError));
    }

    #[test]
    fn channel_fifo_and_close() {
        let sim = Sim::new(0);
        let (tx, mut rx) = channel::<u32>();
        let h = sim.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        let ctx = sim.ctx();
        sim.spawn(async move {
            for i in 0..5 {
                tx.send(i);
                ctx.sleep(SimDuration::from_nanos(1)).await;
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_multiple_senders() {
        let sim = Sim::new(0);
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        tx.send(1);
        tx2.send(2);
        drop(tx);
        drop(tx2);
        let h = sim.spawn(async move {
            let mut n = 0;
            while rx.recv().await.is_some() {
                n += 1;
            }
            n
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 2);
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(2);
        let active = Rc::new(Cell::new(0u32));
        let peak = Rc::new(Cell::new(0u32));
        for _ in 0..10 {
            let sem = sem.clone();
            let ctx = sim.ctx();
            let active = active.clone();
            let peak = peak.clone();
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                active.set(active.get() + 1);
                peak.set(peak.get().max(active.get()));
                ctx.sleep(SimDuration::from_nanos(10)).await;
                active.set(active.get() - 1);
            });
        }
        assert!(sim.run().is_clean());
        assert_eq!(peak.get(), 2);
    }

    #[test]
    fn semaphore_fifo_order() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(0);
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..4u32 {
            let sem = sem.clone();
            let order = order.clone();
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                order.borrow_mut().push(i);
            });
        }
        let sem2 = sem.clone();
        let ctx = sim.ctx();
        sim.spawn(async move {
            for _ in 0..4 {
                ctx.sleep(SimDuration::from_nanos(1)).await;
                sem2.add_permits(1);
            }
        });
        assert!(sim.run().is_clean());
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn semaphore_large_request_blocks_smaller_later_ones() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(2);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        {
            // Occupy both permits briefly.
            let sem = sem.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                let _p = sem.acquire(2).await;
                ctx.sleep(SimDuration::from_nanos(10)).await;
            });
        }
        {
            let sem = sem.clone();
            let ctx = sim.ctx();
            let order = order.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(1)).await;
                let _p = sem.acquire(2).await; // queued first
                order.borrow_mut().push("big");
            });
        }
        {
            let sem = sem.clone();
            let ctx = sim.ctx();
            let order = order.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(2)).await;
                let _p = sem.acquire(1).await; // must not barge past "big"
                order.borrow_mut().push("small");
            });
        }
        assert!(sim.run().is_clean());
        assert_eq!(*order.borrow(), vec!["big", "small"]);
    }

    #[test]
    fn semaphore_cancelled_waiter_is_skipped() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(0);
        let got: Rc<Cell<bool>> = Rc::default();
        // First waiter times out (future dropped).
        {
            let sem = sem.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                let acq = sem.acquire(1);
                // Poor man's timeout: race the acquire against a timer.
                let sleep = ctx.sleep(SimDuration::from_nanos(5));
                let mut acq = Box::pin(acq);
                let mut sleep = Box::pin(sleep);
                std::future::poll_fn(|cx| {
                    if Pin::new(&mut acq).poll(cx).is_ready() {
                        return Poll::Ready(());
                    }
                    Pin::new(&mut sleep).poll(cx)
                })
                .await;
            });
        }
        {
            let sem = sem.clone();
            let got = got.clone();
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                got.set(true);
            });
        }
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_nanos(10)).await;
            sem.add_permits(1);
        });
        assert!(sim.run().is_clean());
        assert!(got.get());
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let p = sem.try_acquire(1).unwrap();
        assert!(sem.try_acquire(1).is_none());
        // Park a waiter, then release: try_acquire must not barge.
        let sem2 = sem.clone();
        let h = sim.spawn(async move {
            let _p = sem2.acquire(1).await;
            true
        });
        drop(p);
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let sim = Sim::new(0);
        let n = Notify::new();
        let count = Rc::new(Cell::new(0));
        for _ in 0..3 {
            let n = n.clone();
            let count = count.clone();
            sim.spawn(async move {
                n.wait().await;
                count.set(count.get() + 1);
            });
        }
        let ctx = sim.ctx();
        let n2 = n.clone();
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_nanos(1)).await;
            assert_eq!(n2.waiter_count(), 3);
            n2.notify_all();
        });
        assert!(sim.run().is_clean());
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn notify_one_wakes_in_order() {
        let sim = Sim::new(0);
        let n = Notify::new();
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..3u32 {
            let n = n.clone();
            let order = order.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(i as u64)).await;
                n.wait().await;
                order.borrow_mut().push(i);
            });
        }
        let ctx = sim.ctx();
        sim.spawn(async move {
            for _ in 0..3 {
                ctx.sleep(SimDuration::from_nanos(10)).await;
                n.notify_one();
            }
        });
        assert!(sim.run().is_clean());
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn barrier_releases_all_parties_with_one_leader() {
        let sim = Sim::new(0);
        let b = Barrier::new(4);
        let leaders = Rc::new(Cell::new(0));
        let released = Rc::new(Cell::new(0));
        for i in 0..4u64 {
            let b = b.clone();
            let ctx = sim.ctx();
            let leaders = leaders.clone();
            let released = released.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(i * 7)).await;
                let r = b.wait().await;
                if r.is_leader {
                    leaders.set(leaders.get() + 1);
                }
                released.set(released.get() + 1);
            });
        }
        assert!(sim.run().is_clean());
        assert_eq!(leaders.get(), 1);
        assert_eq!(released.get(), 4);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let sim = Sim::new(0);
        let b = Barrier::new(2);
        let laps = Rc::new(Cell::new(0));
        for i in 0..2u64 {
            let b = b.clone();
            let ctx = sim.ctx();
            let laps = laps.clone();
            sim.spawn(async move {
                for _ in 0..5 {
                    ctx.sleep(SimDuration::from_nanos(1 + i)).await;
                    b.wait().await;
                    laps.set(laps.get() + 1);
                }
            });
        }
        assert!(sim.run().is_clean());
        assert_eq!(laps.get(), 10);
    }
}
