//! String interning and fast hashing for hot-path keys.
//!
//! The workloads publish and look up the same frame paths
//! (`.../frame0042.dcd`) thousands of times per run; keying the KVS
//! store, staging tables and file-system maps by [`Symbol`] instead of
//! `String` replaces repeated SipHash passes over long paths with a
//! single intern per distinct string and O(1) integer-keyed map hits
//! afterwards.
//!
//! The interner is thread-local: the simulator is single-threaded, so a
//! run only ever sees one table, and parallel sweeps (one run per rayon
//! worker) each reuse their worker's table across runs. Tables are
//! append-only and bounded by the number of distinct strings a worker
//! ever interns. Symbols are only meaningful on the thread that created
//! them and must not be stored in cross-run results.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// An interned string: a dense integer id that is `Copy`, `Eq` and cheap
/// to hash. Obtain one with [`intern`]; get the text back with
/// [`Symbol::resolve`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The interned text. O(1) table lookup; the returned `Rc` shares
    /// the interner's storage.
    pub fn resolve(self) -> Rc<str> {
        INTERNER.with(|i| i.borrow().strings[self.0 as usize].clone())
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Symbol({}: {:?})", self.0, self.resolve())
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

#[derive(Default)]
struct Interner {
    ids: FxHashMap<Rc<str>, u32>,
    strings: Vec<Rc<str>>,
}

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::default());
}

/// Intern `s`, returning its stable (per-thread) [`Symbol`].
pub fn intern(s: &str) -> Symbol {
    INTERNER.with(|i| {
        let mut i = i.borrow_mut();
        if let Some(&id) = i.ids.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(i.strings.len()).expect("interner overflow");
        let rc: Rc<str> = Rc::from(s);
        i.strings.push(rc.clone());
        i.ids.insert(rc, id);
        Symbol(id)
    })
}

/// Number of distinct strings interned on this thread (tests/diagnostics).
pub fn interned_count() -> usize {
    INTERNER.with(|i| i.borrow().strings.len())
}

// ---------------------------------------------------------------------------
// FxHash-style hasher
// ---------------------------------------------------------------------------

/// Multiplicative word-at-a-time hasher in the style of rustc's FxHash:
/// not DoS-resistant, but several times faster than SipHash for the short
/// integer and string keys on the simulator's hot paths (and the
/// simulator never hashes adversarial input).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            buf[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for hot-path tables keyed by
/// [`Symbol`] or small integers.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("alpha/frame0001.dcd");
        let b = intern("alpha/frame0001.dcd");
        let c = intern("alpha/frame0002.dcd");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(&*a.resolve(), "alpha/frame0001.dcd");
        assert_eq!(&*c.resolve(), "alpha/frame0002.dcd");
    }

    #[test]
    fn symbols_key_fx_maps() {
        let mut m: FxHashMap<Symbol, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(intern(&format!("key{i}")), i);
        }
        for i in 0..100 {
            assert_eq!(m[&intern(&format!("key{i}"))], i);
        }
    }

    #[test]
    fn fxhash_distinguishes_tails() {
        fn h(b: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        }
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn display_round_trips() {
        let s = intern("pfs/ost3/stripe9");
        assert_eq!(format!("{s}"), "pfs/ost3/stripe9");
        assert!(format!("{s:?}").contains("pfs/ost3/stripe9"));
    }
}
