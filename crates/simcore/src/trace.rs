//! Event tracing for simulated runs.
//!
//! A [`Tracer`] collects `(time, track, category, name)` events and
//! duration spans from anywhere in a simulation and exports them in the
//! Chrome trace-event JSON format (load in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)) — one timeline track per process
//! or resource, simulated microseconds on the x-axis. Tracing is
//! entirely opt-in and costs nothing in simulated time.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::Ctx;
use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A point-in-time marker.
    Instant {
        /// When it happened.
        at: SimTime,
        /// Timeline track (process/resource name).
        track: String,
        /// Event category for filtering.
        category: &'static str,
        /// Event label.
        name: String,
    },
    /// A closed duration span.
    Span {
        /// Span start.
        start: SimTime,
        /// Span end.
        end: SimTime,
        /// Timeline track.
        track: String,
        /// Event category for filtering.
        category: &'static str,
        /// Span label.
        name: String,
    },
}

impl TraceEvent {
    /// The track the event belongs to.
    pub fn track(&self) -> &str {
        match self {
            TraceEvent::Instant { track, .. } | TraceEvent::Span { track, .. } => track,
        }
    }
}

#[derive(Default)]
struct TracerState {
    events: Vec<TraceEvent>,
    enabled: bool,
}

/// A shared, cloneable trace sink.
#[derive(Clone, Default)]
pub struct Tracer {
    state: Rc<RefCell<TracerState>>,
}

impl Tracer {
    /// A tracer that records events.
    pub fn enabled() -> Tracer {
        let t = Tracer::default();
        t.state.borrow_mut().enabled = true;
        t
    }

    /// A tracer that drops everything (zero overhead beyond a branch).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Record a point event at the current simulated time.
    pub fn instant(&self, ctx: &Ctx, track: &str, category: &'static str, name: &str) {
        if !self.is_enabled() {
            return;
        }
        self.state.borrow_mut().events.push(TraceEvent::Instant {
            at: ctx.now(),
            track: track.to_string(),
            category,
            name: name.to_string(),
        });
    }

    /// Open a span; it closes (and records) when the guard drops.
    /// A disabled tracer returns an inert guard without copying the
    /// labels, so spans on hot paths cost two empty strings at most.
    pub fn span(&self, ctx: &Ctx, track: &str, category: &'static str, name: &str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                tracer: self.clone(),
                ctx: ctx.clone(),
                start: SimTime::ZERO,
                track: String::new(),
                category,
                name: String::new(),
                closed: true,
            };
        }
        SpanGuard {
            tracer: self.clone(),
            ctx: ctx.clone(),
            start: ctx.now(),
            track: track.to_string(),
            category,
            name: name.to_string(),
            closed: false,
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.borrow().events.clone()
    }

    /// Export as Chrome trace-event JSON (the `traceEvents` array form).
    /// Timestamps are simulated microseconds; each track becomes a
    /// thread id.
    pub fn to_chrome_json(&self) -> String {
        let st = self.state.borrow();
        let tid = |track: &str, tracks: &mut Vec<String>| -> usize {
            match tracks.iter().position(|t| t == track) {
                Some(i) => i,
                None => {
                    tracks.push(track.to_string());
                    tracks.len() - 1
                }
            }
        };
        let mut track_names: Vec<String> = Vec::new();
        let mut out = String::from("[");
        for (i, ev) in st.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match ev {
                TraceEvent::Instant {
                    at,
                    track,
                    category,
                    name,
                } => {
                    let t = tid(track, &mut track_names);
                    out.push_str(&format!(
                        r#"{{"name":{},"cat":"{}","ph":"i","ts":{},"pid":1,"tid":{},"s":"t"}}"#,
                        json_str(name),
                        category,
                        at.nanos() / 1_000,
                        t
                    ));
                }
                TraceEvent::Span {
                    start,
                    end,
                    track,
                    category,
                    name,
                } => {
                    let t = tid(track, &mut track_names);
                    out.push_str(&format!(
                        r#"{{"name":{},"cat":"{}","ph":"X","ts":{},"dur":{},"pid":1,"tid":{}}}"#,
                        json_str(name),
                        category,
                        start.nanos() / 1_000,
                        (end.nanos() - start.nanos()) / 1_000,
                        t
                    ));
                }
            }
        }
        // Thread-name metadata so tracks are labelled in the viewer.
        for (i, name) in track_names.iter().enumerate() {
            out.push_str(&format!(
                r#",{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":{}}}}}"#,
                i,
                json_str(name)
            ));
        }
        out.push(']');
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// RAII guard from [`Tracer::span`].
pub struct SpanGuard {
    tracer: Tracer,
    ctx: Ctx,
    start: SimTime,
    track: String,
    category: &'static str,
    name: String,
    closed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        self.tracer
            .state
            .borrow_mut()
            .events
            .push(TraceEvent::Span {
                start: self.start,
                end: self.ctx.now(),
                track: std::mem::take(&mut self.track),
                category: self.category,
                name: std::mem::take(&mut self.name),
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn spans_record_simulated_durations() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let tracer = Tracer::enabled();
        let t2 = tracer.clone();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            let _s = t2.span(&ctx2, "producer-0", "io", "write");
            ctx2.sleep(SimDuration::from_micros(250)).await;
        });
        sim.run();
        let evs = tracer.events();
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            TraceEvent::Span {
                start, end, name, ..
            } => {
                assert_eq!(name, "write");
                assert_eq!((*end - *start).micros(), 250);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let tracer = Tracer::disabled();
        tracer.instant(&ctx, "x", "c", "ev");
        let _s = tracer.span(&ctx, "x", "c", "span");
        drop(_s);
        assert!(tracer.is_empty());
    }

    #[test]
    fn chrome_json_is_valid_and_labelled() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let tracer = Tracer::enabled();
        let t2 = tracer.clone();
        let ctx2 = ctx.clone();
        sim.spawn(async move {
            t2.instant(&ctx2, "consumer-1", "sync", "cold_wait");
            let _s = t2.span(&ctx2, "consumer-1", "io", "read \"frame\"");
            ctx2.sleep(SimDuration::from_micros(10)).await;
        });
        sim.run();
        let json = tracer.to_chrome_json();
        // Must parse as JSON (validated without serde to keep simcore
        // dependency-free: just check with a quick structural parse).
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains("thread_name"));
        // Escaped quotes in names survive.
        assert!(json.contains(r#"read \"frame\""#));
    }

    #[test]
    fn events_keep_calendar_order_per_track() {
        let sim = Sim::new(0);
        let tracer = Tracer::enabled();
        for i in 0..3u64 {
            let ctx = sim.ctx();
            let t = tracer.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_micros(i * 10)).await;
                t.instant(&ctx, "track", "c", &format!("e{i}"));
            });
        }
        sim.run();
        let evs = tracer.events();
        let times: Vec<u64> = evs
            .iter()
            .map(|e| match e {
                TraceEvent::Instant { at, .. } => at.nanos(),
                TraceEvent::Span { start, .. } => start.nanos(),
            })
            .collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }
}
