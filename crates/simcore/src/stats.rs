//! Lightweight statistics used throughout the experiment harness.

use crate::time::SimDuration;

/// Streaming mean/variance/extrema via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a duration observation, in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Sample variance (n-1 denominator; 0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Five-number-ish summary of a sample, with percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    /// Build from a sample (NaNs are rejected by assertion).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.to_vec();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "summary cannot contain NaN"
        );
        sorted.sort_by(f64::total_cmp);
        let mut stats = OnlineStats::new();
        for &s in &sorted {
            stats.push(s);
        }
        Summary { sorted, stats }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Linear-interpolated percentile, `p` in [0, 100].
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        if self.sorted.is_empty() {
            return 0.0;
        }
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }
}

/// Fixed-bound histogram with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with the given ascending bucket upper bounds.
    /// Bucket `i` counts samples in `(bounds[i-1], bounds[i]]`; an extra
    /// final bucket counts samples above the last bound.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty());
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            total: 0,
        }
    }

    /// Logarithmically spaced bounds from `lo` to `hi` with `n` buckets.
    pub fn log_spaced(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && n >= 1);
        let ratio = (hi / lo).powf(1.0 / n as f64);
        let mut bounds = Vec::with_capacity(n);
        let mut b = lo;
        for _ in 0..n {
            bounds.push(b);
            b *= ratio;
        }
        Histogram::new(bounds)
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b < x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts (last bucket is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        let mut s = OnlineStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(25.0), 2.0);
        assert!((s.percentile(90.0) - 4.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_log_spaced() {
        let h = Histogram::log_spaced(1.0, 1000.0, 3);
        let b = h.bounds();
        assert_eq!(b.len(), 3);
        assert!((b[0] - 1.0).abs() < 1e-9);
        assert!((b[1] - 10.0).abs() < 1e-6);
        assert!((b[2] - 100.0).abs() < 1e-6);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn merge_matches_sequential(xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
                                        split in 0usize..200) {
                let split = split.min(xs.len());
                let mut whole = OnlineStats::new();
                for &x in &xs { whole.push(x); }
                let mut a = OnlineStats::new();
                let mut b = OnlineStats::new();
                for &x in &xs[..split] { a.push(x); }
                for &x in &xs[split..] { b.push(x); }
                a.merge(&b);
                prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
                prop_assert!((a.variance() - whole.variance()).abs() / whole.variance().max(1.0) < 1e-6);
            }

            #[test]
            fn percentiles_are_monotone(xs in proptest::collection::vec(0f64..1e3, 1..100)) {
                let s = Summary::from_samples(&xs);
                let mut last = f64::NEG_INFINITY;
                for p in 0..=20 {
                    let v = s.percentile(p as f64 * 5.0);
                    prop_assert!(v >= last - 1e-9);
                    last = v;
                }
                prop_assert_eq!(s.percentile(0.0), s.min());
                prop_assert_eq!(s.percentile(100.0), s.max());
            }

            #[test]
            fn histogram_conserves_count(xs in proptest::collection::vec(0f64..1e4, 0..300)) {
                let mut h = Histogram::log_spaced(1.0, 1e3, 10);
                for &x in &xs { h.record(x); }
                prop_assert_eq!(h.total(), xs.len() as u64);
                prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
            }
        }
    }
}
