//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a monotonically non-decreasing count of nanoseconds
//! since the start of the simulation. Using integer nanoseconds keeps event
//! ordering exact and runs deterministic across platforms; conversions to
//! floating-point seconds are provided for reporting only.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// End instant of a conservative time window opening at `self`:
    /// `self + lookahead`, saturating at [`SimTime::MAX`] so a window
    /// sealed near the end of time stays well-formed. Used by the
    /// sharded executor; lookahead only batches, it never reorders.
    pub const fn window_end(self, lookahead: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(lookahead.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = (s * 1e9).round();
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Construct from fractional seconds, rounding *up* to the next
    /// nanosecond. Used for scheduling completion events: rounding up
    /// guarantees the event fires at-or-after the exact completion
    /// instant, so the work is fully done when the event is handled (no
    /// residual-byte epsilon needed). Negative and non-finite inputs
    /// clamp to zero.
    pub fn from_secs_f64_ceil(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = (s * 1e9).ceil();
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    pub const fn micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncated).
    pub const fn millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional milliseconds (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(5).nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(5).nanos(), 5_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).nanos(), 500_000_000);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        // Sub-nanosecond values round.
        assert_eq!(SimDuration::from_secs_f64(0.6e-9).nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.4e-9).nanos(), 0);
    }

    #[test]
    fn from_secs_f64_ceil_rounds_up() {
        assert_eq!(SimDuration::from_secs_f64_ceil(0.5).nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64_ceil(0.1e-9).nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64_ceil(0.9e-9).nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64_ceil(1.1e-9).nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64_ceil(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64_ceil(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64_ceil(f64::INFINITY),
            SimDuration::MAX
        );
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_nanos(100);
        let t2 = t + SimDuration::from_nanos(50);
        assert_eq!(t2.nanos(), 150);
        assert_eq!((t2 - t).nanos(), 50);
        // Saturating: earlier.since(later) is zero.
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(30);
        assert_eq!((a + b).nanos(), 130);
        assert_eq!((a - b).nanos(), 70);
        assert_eq!((b - a).nanos(), 0);
        assert_eq!((a * 3).nanos(), 300);
        assert_eq!((a / 4).nanos(), 25);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimDuration::from_micros(10)), "10.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(10)), "10.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(10)), "10.000s");
    }
}
