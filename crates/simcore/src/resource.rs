//! Contended resources: FIFO servers and fair-share bandwidth links.
//!
//! [`FifoResource`] models a server pool with a fixed number of service
//! slots (e.g. metadata-server worker threads): requests queue FIFO and
//! each occupies a slot for its service time.
//!
//! [`SharedBandwidth`] models a processor-sharing link or device channel
//! (an NVMe write stream, a NIC port, an OST disk): all in-flight transfers
//! progress simultaneously at `rate / n`, so a transfer that overlaps
//! others slows down and speeds back up as the set of flows changes. This
//! is the standard fluid model for TCP-like and device-bandwidth fairness
//! and is what produces realistic contention curves in the experiments.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::executor::Ctx;
use crate::sync::{oneshot, OneSender, Semaphore};
use crate::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------------
// FifoResource
// ---------------------------------------------------------------------------

/// Aggregate statistics for a [`FifoResource`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FifoStats {
    /// Requests completed.
    pub served: u64,
    /// Total time requests spent in service (not queueing).
    pub busy: SimDuration,
    /// Total time requests spent waiting for a slot.
    pub waited: SimDuration,
    /// Largest number of queued requests observed.
    pub peak_queue: usize,
}

/// A server pool with `slots` parallel servers and FIFO admission.
#[derive(Clone)]
pub struct FifoResource {
    ctx: Ctx,
    sem: Semaphore,
    stats: Rc<RefCell<FifoStats>>,
}

impl FifoResource {
    /// Create a resource with `slots` parallel service slots.
    pub fn new(ctx: &Ctx, slots: u64) -> Self {
        assert!(slots >= 1, "resource needs at least one slot");
        FifoResource {
            ctx: ctx.clone(),
            sem: Semaphore::new(slots),
            stats: Rc::default(),
        }
    }

    /// Queue for a slot, hold it for `service`, then release it.
    pub async fn request(&self, service: SimDuration) {
        let queued_at = self.ctx.now();
        let permit = self.sem.acquire(1).await;
        let start = self.ctx.now();
        self.ctx.sleep(service).await;
        drop(permit);
        let mut st = self.stats.borrow_mut();
        st.served += 1;
        st.busy += service;
        st.waited += start - queued_at;
        st.peak_queue = st.peak_queue.max(self.sem.peak_queue());
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> FifoStats {
        let mut s = *self.stats.borrow();
        s.peak_queue = s.peak_queue.max(self.sem.peak_queue());
        s
    }

    /// Requests currently waiting for a slot.
    pub fn queue_len(&self) -> usize {
        self.sem.queue_len()
    }
}

// ---------------------------------------------------------------------------
// SharedBandwidth
// ---------------------------------------------------------------------------

/// Aggregate statistics for a [`SharedBandwidth`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BwStats {
    /// Bytes fully transferred.
    pub bytes_moved: u64,
    /// Transfers completed.
    pub flows_served: u64,
    /// Largest number of simultaneous flows observed.
    pub peak_concurrency: usize,
    /// Total time during which at least one flow was active.
    pub busy: SimDuration,
}

struct Flow {
    remaining: f64, // bytes
    /// Per-flow rate ceiling (defaults to the resource's flow cap).
    cap: Option<f64>,
    done: Option<OneSender<()>>,
}

struct BwInner {
    rate: f64, // bytes/sec aggregate
    flow_cap: Option<f64>,
    flows: HashMap<u64, Flow>,
    next_id: u64,
    last_update: SimTime,
    generation: u64,
    stats: BwStats,
}

impl BwInner {
    /// Fair share before per-flow caps.
    fn fair(&self) -> f64 {
        self.rate / self.flows.len().max(1) as f64
    }

    /// Actual rate of one flow: fair share bounded by its cap (or the
    /// resource default cap).
    fn rate_of(&self, flow: &Flow) -> f64 {
        let fair = self.fair();
        match flow.cap.or(self.flow_cap) {
            Some(cap) => fair.min(cap),
            None => fair,
        }
    }
}

/// A processor-sharing bandwidth resource.
///
/// All active transfers progress at `rate / n` bytes per second (optionally
/// capped per flow). The implementation is event-driven: whenever the flow
/// set changes, progress is credited for the elapsed interval and the next
/// completion is (re)scheduled on the simulation calendar.
#[derive(Clone)]
pub struct SharedBandwidth {
    ctx: Ctx,
    inner: Rc<RefCell<BwInner>>,
}

/// Byte tolerance when deciding that a flow has finished; absorbs
/// nanosecond rounding in completion scheduling.
const FINISH_EPS: f64 = 1e-2;

impl SharedBandwidth {
    /// Create a link with the given aggregate rate in bytes/second.
    pub fn new(ctx: &Ctx, rate_bytes_per_sec: f64) -> Self {
        assert!(
            rate_bytes_per_sec > 0.0 && rate_bytes_per_sec.is_finite(),
            "bandwidth must be positive and finite"
        );
        SharedBandwidth {
            ctx: ctx.clone(),
            inner: Rc::new(RefCell::new(BwInner {
                rate: rate_bytes_per_sec,
                flow_cap: None,
                flows: HashMap::new(),
                next_id: 0,
                last_update: SimTime::ZERO,
                generation: 0,
                stats: BwStats::default(),
            })),
        }
    }

    /// Additionally cap each individual flow at `cap` bytes/second.
    pub fn with_flow_cap(self, cap: f64) -> Self {
        assert!(cap > 0.0 && cap.is_finite());
        self.inner.borrow_mut().flow_cap = Some(cap);
        self
    }

    /// Aggregate rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.inner.borrow().rate
    }

    /// Number of in-flight transfers.
    pub fn active_flows(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> BwStats {
        self.inner.borrow().stats
    }

    /// Transfer `bytes` through the link, completing when the fair-share
    /// fluid model has delivered every byte.
    pub async fn transfer(&self, bytes: u64) {
        self.transfer_capped(bytes, None).await
    }

    /// Transfer with an explicit per-flow rate ceiling (e.g. a sustained
    /// client stream rate that is lower than the device's burst rate).
    pub async fn transfer_capped(&self, bytes: u64, cap: Option<f64>) {
        if bytes == 0 {
            return;
        }
        let (tx, rx) = oneshot();
        {
            let mut inner = self.inner.borrow_mut();
            Self::advance(&mut inner, self.ctx.now());
            let id = inner.next_id;
            inner.next_id += 1;
            inner.flows.insert(
                id,
                Flow {
                    remaining: bytes as f64,
                    cap,
                    done: Some(tx),
                },
            );
            let n = inner.flows.len();
            inner.stats.peak_concurrency = inner.stats.peak_concurrency.max(n);
        }
        self.reschedule();
        rx.await.expect("bandwidth resource dropped mid-transfer");
    }

    /// Credit progress to all flows for the interval since `last_update`.
    /// Must be called before any change to the flow set.
    fn advance(inner: &mut BwInner, now: SimTime) {
        let dt = (now - inner.last_update).as_secs_f64();
        inner.last_update = now;
        if dt <= 0.0 || inner.flows.is_empty() {
            return;
        }
        let fair = inner.fair();
        let default_cap = inner.flow_cap;
        for flow in inner.flows.values_mut() {
            let rate = match flow.cap.or(default_cap) {
                Some(cap) => fair.min(cap),
                None => fair,
            };
            flow.remaining -= dt * rate;
        }
        inner.stats.busy += SimDuration::from_secs_f64(dt);
    }

    /// Complete finished flows and schedule the next completion event.
    fn reschedule(&self) {
        let mut to_signal: Vec<(OneSender<()>, u64)> = Vec::new();
        let next: Option<(u64, SimDuration)>;
        {
            let mut inner = self.inner.borrow_mut();
            let finished: Vec<u64> = inner
                .flows
                .iter()
                .filter(|(_, f)| f.remaining <= FINISH_EPS)
                .map(|(&id, _)| id)
                .collect();
            for id in finished {
                let mut flow = inner.flows.remove(&id).unwrap();
                // `remaining` may be a hair below zero from rounding; the
                // full original byte count was delivered.
                if let Some(tx) = flow.done.take() {
                    to_signal.push((tx, id));
                }
                inner.stats.flows_served += 1;
            }
            if inner.flows.is_empty() {
                next = None;
            } else {
                let min_secs = inner
                    .flows
                    .values()
                    .map(|f| f.remaining.max(0.0) / inner.rate_of(f))
                    .fold(f64::INFINITY, f64::min);
                let secs = min_secs.max(1e-9);
                let d = SimDuration::from_secs_f64(secs);
                let d = if d.is_zero() {
                    SimDuration::from_nanos(1)
                } else {
                    d
                };
                inner.generation += 1;
                next = Some((inner.generation, d));
            }
        }
        for (tx, _) in to_signal {
            let _ = tx.send(());
        }
        if let Some((generation, delay)) = next {
            let this = self.clone();
            self.ctx.call_after(delay, move || {
                let stale = this.inner.borrow().generation != generation;
                if stale {
                    return;
                }
                {
                    let mut inner = this.inner.borrow_mut();
                    let now = this.ctx.now();
                    Self::advance(&mut inner, now);
                }
                this.reschedule();
            });
        }
    }
}

// Track bytes_moved on completion: done in reschedule would need original
// sizes; expose a helper instead.
impl SharedBandwidth {
    /// Transfer and account the byte count in [`BwStats::bytes_moved`].
    pub async fn transfer_counted(&self, bytes: u64) {
        self.transfer(bytes).await;
        self.inner.borrow_mut().stats.bytes_moved += bytes;
    }

    /// [`SharedBandwidth::transfer_capped`] with byte accounting.
    pub async fn transfer_capped_counted(&self, bytes: u64, cap: Option<f64>) {
        self.transfer_capped(bytes, cap).await;
        self.inner.borrow_mut().stats.bytes_moved += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::Cell;

    fn secs(ns: u64) -> f64 {
        ns as f64 / 1e9
    }

    #[test]
    fn solo_transfer_takes_size_over_rate() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1_000_000_000.0); // 1 GB/s
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            bw.transfer(500_000_000).await; // 0.5 GB -> 0.5 s
            ctx2.now()
        });
        sim.run();
        let t = h.try_take().unwrap();
        assert!((t.as_secs_f64() - 0.5).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn two_equal_flows_each_take_twice_as_long() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1_000_000_000.0);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let bw = bw.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(async move {
                bw.transfer(500_000_000).await;
                ctx.now()
            }));
        }
        sim.run();
        for h in handles {
            let t = h.try_take().unwrap();
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "took {t}");
        }
    }

    #[test]
    fn staggered_arrival_shares_only_while_overlapping() {
        // Flow A (1000 bytes) starts at t=0 on a 1000 B/s link.
        // Flow B (1000 bytes) starts at t=0.5s.
        // 0.0-0.5: A alone, moves 500.
        // 0.5-1.5: both at 500 B/s, A finishes at 1.5 having moved 1000.
        // 1.5-2.0: B alone at 1000 B/s, finishes at 2.0.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1000.0);
        let a = {
            let bw = bw.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                bw.transfer(1000).await;
                ctx.now().as_secs_f64()
            })
        };
        let b = {
            let bw = bw.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_millis(500)).await;
                bw.transfer(1000).await;
                ctx.now().as_secs_f64()
            })
        };
        sim.run();
        assert!((a.try_take().unwrap() - 1.5).abs() < 1e-6);
        assert!((b.try_take().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn flow_cap_limits_a_lone_flow() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 4000.0).with_flow_cap(1000.0);
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            bw.transfer(1000).await;
            ctx2.now().as_secs_f64()
        });
        sim.run();
        assert!((h.try_take().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1000.0);
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            bw.transfer(0).await;
            ctx2.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn throughput_never_exceeds_rate() {
        // Many random flows; total bytes / makespan must be <= rate.
        let sim = Sim::new(3);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 10_000.0);
        let total = Rc::new(Cell::new(0u64));
        use rand::RngExt;
        let mut rng = ctx.rng(0);
        for _ in 0..50 {
            let bytes: u64 = rng.random_range(1..5_000);
            let start_ns: u64 = rng.random_range(0..1_000_000_000);
            let bw = bw.clone();
            let ctx = ctx.clone();
            let total = total.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(start_ns)).await;
                bw.transfer_counted(bytes).await;
                total.set(total.get() + bytes);
            });
        }
        let report = sim.run();
        assert!(report.is_clean());
        let rate_observed = total.get() as f64 / report.end_time.as_secs_f64();
        assert!(
            rate_observed <= 10_000.0 * (1.0 + 1e-6),
            "observed {rate_observed}"
        );
        assert_eq!(bw.stats().flows_served, 50);
        assert_eq!(bw.stats().bytes_moved, total.get());
    }

    #[test]
    fn busy_time_counts_only_active_intervals() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1000.0);
        {
            let bw = bw.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                bw.transfer(500).await; // 0.5 s busy
                ctx.sleep(SimDuration::from_secs(2)).await; // idle
                bw.transfer(500).await; // 0.5 s busy
            });
        }
        sim.run();
        let busy = bw.stats().busy.as_secs_f64();
        assert!((busy - 1.0).abs() < 1e-6, "busy {busy}");
    }

    #[test]
    fn fifo_resource_serializes_beyond_slots() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let res = FifoResource::new(&ctx, 2);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let res = res.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(async move {
                res.request(SimDuration::from_secs(1)).await;
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        let mut ends: Vec<f64> = handles.into_iter().map(|h| h.try_take().unwrap()).collect();
        ends.sort_by(f64::total_cmp);
        assert_eq!(ends, vec![1.0, 1.0, 2.0, 2.0]);
        let st = res.stats();
        assert_eq!(st.served, 4);
        assert!((st.busy.as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((st.waited.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_resource_tracks_peak_queue() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let res = FifoResource::new(&ctx, 1);
        for _ in 0..5 {
            let res = res.clone();
            sim.spawn(async move {
                res.request(SimDuration::from_nanos(10)).await;
            });
        }
        sim.run();
        assert_eq!(res.stats().peak_queue, 4);
    }

    #[test]
    fn proptest_secs_helper() {
        assert_eq!(secs(1_500_000_000), 1.5);
    }
}
