//! Contended resources: FIFO servers and fair-share bandwidth links.
//!
//! [`FifoResource`] models a server pool with a fixed number of service
//! slots (e.g. metadata-server worker threads): requests queue FIFO and
//! each occupies a slot for its service time.
//!
//! [`SharedBandwidth`] models a processor-sharing link or device channel
//! (an NVMe write stream, a NIC port, an OST disk): all in-flight transfers
//! progress simultaneously at `rate / n`, so a transfer that overlaps
//! others slows down and speeds back up as the set of flows changes. This
//! is the standard fluid model for TCP-like and device-bandwidth fairness
//! and is what produces realistic contention curves in the experiments.
//! Internally it tracks per-cap-class virtual service clocks with
//! precomputed finish tags (O(log n) per join/completion) rather than
//! crediting every in-flight flow on every event; see DESIGN.md.

use std::cell::RefCell;
use std::rc::Rc;

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::{Ctx, TaskId, TimerHandle};
use crate::sync::Semaphore;
use crate::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------------
// FifoResource
// ---------------------------------------------------------------------------

/// Aggregate statistics for a [`FifoResource`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FifoStats {
    /// Requests completed.
    pub served: u64,
    /// Total time requests spent in service (not queueing).
    pub busy: SimDuration,
    /// Total time requests spent waiting for a slot.
    pub waited: SimDuration,
    /// Largest number of queued requests observed.
    pub peak_queue: usize,
}

/// A server pool with `slots` parallel servers and FIFO admission.
#[derive(Clone)]
pub struct FifoResource {
    ctx: Ctx,
    sem: Semaphore,
    stats: Rc<RefCell<FifoStats>>,
}

impl FifoResource {
    /// Create a resource with `slots` parallel service slots.
    pub fn new(ctx: &Ctx, slots: u64) -> Self {
        assert!(slots >= 1, "resource needs at least one slot");
        FifoResource {
            ctx: ctx.clone(),
            sem: Semaphore::new(slots),
            stats: Rc::default(),
        }
    }

    /// Queue for a slot, hold it for `service`, then release it.
    pub async fn request(&self, service: SimDuration) {
        let queued_at = self.ctx.now();
        let permit = self.sem.acquire(1).await;
        let start = self.ctx.now();
        self.ctx.sleep(service).await;
        drop(permit);
        let mut st = self.stats.borrow_mut();
        st.served += 1;
        st.busy += service;
        st.waited += start - queued_at;
    }

    /// Snapshot of accumulated statistics.
    ///
    /// `peak_queue` is observed in exactly one place — the semaphore's
    /// waiter-enqueue path — and only read here, so it is monotone by
    /// construction and never under-reports between snapshots.
    pub fn stats(&self) -> FifoStats {
        let mut s = *self.stats.borrow();
        s.peak_queue = self.sem.peak_queue();
        s
    }

    /// Requests currently waiting for a slot.
    pub fn queue_len(&self) -> usize {
        self.sem.queue_len()
    }
}

// ---------------------------------------------------------------------------
// SharedBandwidth
// ---------------------------------------------------------------------------

/// Aggregate statistics for a [`SharedBandwidth`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BwStats {
    /// Bytes fully transferred.
    pub bytes_moved: u64,
    /// Transfers completed.
    pub flows_served: u64,
    /// Largest number of simultaneous flows observed.
    pub peak_concurrency: usize,
    /// Total time during which at least one flow was active.
    pub busy: SimDuration,
}

/// A transfer waiting for its virtual finish tag to be reached.
///
/// Min-ordered by `(fin, seq)`; the monotonically assigned sequence
/// number both breaks ties deterministically (arrival order, exactly as
/// the old per-flow id did) and makes the ordering total despite the
/// float tag. `slot` indexes the flow slab, which holds the waiter
/// state; slots are reused, which is why they cannot double as the
/// heap tie-break.
#[derive(Clone, Copy)]
struct Pending {
    /// Virtual finish tag: the class service level `s` at which every
    /// byte of this flow has been delivered.
    fin: f64,
    seq: u64,
    slot: u32,
    /// Bytes added to [`BwStats::bytes_moved`] when this flow completes
    /// (zero for transfers started through the uncounted entry points).
    counted_bytes: u64,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.fin.total_cmp(&other.fin).is_eq() && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.fin
            .total_cmp(&other.fin)
            .then(self.seq.cmp(&other.seq))
    }
}

/// 4-ary implicit min-heap of pending flows, keyed by `(fin, seq)`.
///
/// Same rationale as the executor's calendar heap: a heavily shared link
/// (a spine tier under 100k+ concurrent pairs) holds thousands of
/// in-flight flows, and the 4-ary layout halves the levels — and so the
/// cache lines — touched per join and completion. Pop order is the total
/// `(fin, seq)` order (`seq` is unique), identical to any correct
/// priority queue, so heap arity cannot perturb completion order.
#[derive(Default)]
struct PendingHeap {
    v: Vec<Pending>,
}

impl PendingHeap {
    const D: usize = 4;

    fn new() -> Self {
        PendingHeap::default()
    }

    fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    fn peek(&self) -> Option<&Pending> {
        self.v.first()
    }

    fn push(&mut self, p: Pending) {
        self.v.push(p);
        let mut i = self.v.len() - 1;
        let e = self.v[i];
        while i > 0 {
            let parent = (i - 1) / Self::D;
            let pa = self.v[parent];
            if pa.cmp(&e).is_le() {
                break;
            }
            self.v[i] = pa;
            i = parent;
        }
        self.v[i] = e;
    }

    fn pop(&mut self) -> Option<Pending> {
        let n = self.v.len();
        if n == 0 {
            return None;
        }
        self.v.swap(0, n - 1);
        let top = self.v.pop();
        let n = self.v.len();
        if n > 0 {
            let mut i = 0;
            let e = self.v[0];
            loop {
                let first = i * Self::D + 1;
                if first >= n {
                    break;
                }
                let last = (first + Self::D).min(n);
                let mut min_j = first;
                for j in first + 1..last {
                    if self.v[j].cmp(&self.v[min_j]).is_lt() {
                        min_j = j;
                    }
                }
                if e.cmp(&self.v[min_j]).is_le() {
                    break;
                }
                self.v[i] = self.v[min_j];
                i = min_j;
            }
            self.v[i] = e;
        }
        top
    }
}

/// Sentinel for "flow free list empty".
const NO_FREE: u32 = u32::MAX;

/// Waiter bookkeeping for one in-flight transfer, held in a dense slab
/// indexed by the `u32` slot in [`Pending`] and [`TfState::Waiting`].
/// Replaces the old `parked: FxHashMap<u64, TaskId>` +
/// `finished: FxHashSet<u64>` pair: one direct index instead of two hash
/// probes on every poll/complete, and fixed 16-byte slots instead of map
/// buckets on the hottest allocation path in the simulator.
struct FlowSlot {
    /// Bumped when the slot is vacated; [`TfState::Waiting`] carries the
    /// generation it was issued so protocol bugs surface as panics
    /// instead of cross-flow wakes.
    gen: u32,
    state: FlowState,
}

enum FlowState {
    Vacant {
        next_free: u32,
    },
    /// Transfer modeled, future not yet parked (or re-polled).
    InFlight,
    /// Future polled and parked: wake this task on completion.
    Parked(TaskId),
    /// Completed before the future was (re)polled; the next poll (or the
    /// future's drop) vacates the slot.
    Finished,
    /// Future dropped while the modeled flow was still in flight; the
    /// flow still completes (and is counted), then the slot is vacated.
    Abandoned,
}

/// All flows sharing one resolved per-flow rate ceiling.
///
/// Every flow in a class progresses at the same instantaneous rate
/// `min(fair, cap)`, so the class's cumulative per-flow service `s`
/// (bytes delivered to each member since the class was created) is a
/// shared virtual clock: a flow joining at service level `s0` with `b`
/// bytes finishes exactly when `s` reaches `s0 + b`, and finish order
/// within the class is tag order. Real links here have only a handful of
/// distinct caps (uncapped, burst, sustained), so the per-event work is
/// O(#classes) + O(log n) heap maintenance instead of an O(n) credit
/// sweep over every in-flight flow.
struct Class {
    /// Resolved per-flow ceiling (explicit cap or the link default).
    cap: Option<f64>,
    /// Cumulative per-flow service in bytes — the class virtual clock.
    s: f64,
    queue: PendingHeap,
}

struct BwInner {
    rate: f64, // bytes/sec aggregate
    flow_cap: Option<f64>,
    /// Cap classes in creation order (deterministic iteration).
    classes: Vec<Class>,
    n_total: usize,
    /// Monotonic arrival counter, used only for the heap tie-break.
    next_seq: u64,
    last_update: SimTime,
    /// Provisional next-completion event; retired (cancelled) whenever
    /// the flow set changes instead of firing as a stale no-op.
    timer: Option<TimerHandle>,
    /// `(class index, finish tag)` the armed timer will complete. Stored
    /// here so the (single, reusable) timer callback can read them back
    /// instead of capturing them in a fresh closure per arm.
    armed: (usize, f64),
    /// The reusable timer callback, built on first arm. Re-arming clones
    /// this `Rc` — no allocation — which matters because the timer is
    /// retired and re-armed on *every* flow join and completion.
    timer_cb: Option<Rc<dyn Fn()>>,
    /// Dense per-flow waiter slab; see [`FlowSlot`].
    flows: Vec<FlowSlot>,
    flow_free: u32,
    /// Calendar shard the completion timer is pinned to. Unpinned links
    /// arm on the ambient shard of whoever changed the flow set, which
    /// scatters a shared link's timer churn across shards; pinning keeps
    /// it on the link's home domain. Locality only — never ordering.
    pin_shard: Option<u32>,
    stats: BwStats,
}

impl BwInner {
    fn class_rate(&self, cap: Option<f64>) -> f64 {
        let fair = self.rate / self.n_total.max(1) as f64;
        match cap {
            Some(c) => fair.min(c),
            None => fair,
        }
    }

    /// Advance every class virtual clock across the interval since
    /// `last_update`. O(#classes), independent of the flow count.
    fn advance(&mut self, now: SimTime) {
        let dt = (now - self.last_update).as_secs_f64();
        self.last_update = now;
        if dt <= 0.0 || self.n_total == 0 {
            return;
        }
        for i in 0..self.classes.len() {
            if self.classes[i].queue.is_empty() {
                continue;
            }
            let r = self.class_rate(self.classes[i].cap);
            self.classes[i].s += dt * r;
        }
        self.stats.busy += SimDuration::from_secs_f64(dt);
    }

    /// Allocate a flow slot, returning `(slot, gen)`.
    fn alloc_flow(&mut self) -> (u32, u32) {
        let slot = if self.flow_free != NO_FREE {
            let s = self.flow_free;
            let FlowState::Vacant { next_free } = self.flows[s as usize].state else {
                unreachable!("flow free list points at a live slot");
            };
            self.flow_free = next_free;
            self.flows[s as usize].state = FlowState::InFlight;
            s
        } else {
            let s = u32::try_from(self.flows.len()).expect("flow slab overflow");
            self.flows.push(FlowSlot {
                gen: 0,
                state: FlowState::InFlight,
            });
            s
        };
        (slot, self.flows[slot as usize].gen)
    }

    /// Vacate a flow slot and bump its generation.
    fn free_flow(&mut self, slot: u32) {
        let s = &mut self.flows[slot as usize];
        debug_assert!(!matches!(s.state, FlowState::Vacant { .. }));
        s.state = FlowState::Vacant {
            next_free: self.flow_free,
        };
        s.gen = s.gen.wrapping_add(1);
        self.flow_free = slot;
    }

    /// Index of the class for `cap`, creating it on first use.
    fn class_index(&mut self, cap: Option<f64>) -> usize {
        let key = cap.map(f64::to_bits);
        if let Some(i) = self
            .classes
            .iter()
            .position(|c| c.cap.map(f64::to_bits) == key)
        {
            return i;
        }
        self.classes.push(Class {
            cap,
            s: 0.0,
            queue: PendingHeap::new(),
        });
        self.classes.len() - 1
    }
}

/// A processor-sharing bandwidth resource.
///
/// All active transfers progress at `rate / n` bytes per second (optionally
/// capped per flow). The implementation tracks *virtual service time*
/// rather than per-flow residual bytes: each cap class keeps a cumulative
/// service clock and every flow a precomputed virtual finish tag, so a
/// join or completion costs O(log n) and advancing the clocks is O(1) in
/// the flow count. Completion happens on the exact finish tag — the event
/// is scheduled with ceiling rounding so the tag has been reached when it
/// fires — with no residual-byte epsilon.
#[derive(Clone)]
pub struct SharedBandwidth {
    ctx: Ctx,
    inner: Rc<RefCell<BwInner>>,
}

impl SharedBandwidth {
    /// Create a link with the given aggregate rate in bytes/second.
    pub fn new(ctx: &Ctx, rate_bytes_per_sec: f64) -> Self {
        assert!(
            rate_bytes_per_sec > 0.0 && rate_bytes_per_sec.is_finite(),
            "bandwidth must be positive and finite"
        );
        SharedBandwidth {
            ctx: ctx.clone(),
            inner: Rc::new(RefCell::new(BwInner {
                rate: rate_bytes_per_sec,
                flow_cap: None,
                classes: Vec::new(),
                n_total: 0,
                next_seq: 0,
                last_update: SimTime::ZERO,
                timer: None,
                armed: (0, 0.0),
                timer_cb: None,
                flows: Vec::new(),
                flow_free: NO_FREE,
                pin_shard: None,
                stats: BwStats::default(),
            })),
        }
    }

    /// Additionally cap each individual flow at `cap` bytes/second.
    pub fn with_flow_cap(self, cap: f64) -> Self {
        assert!(cap > 0.0 && cap.is_finite());
        self.inner.borrow_mut().flow_cap = Some(cap);
        self
    }

    /// Pin this link's completion timer to calendar shard `shard`.
    /// Unpinned links arm on the ambient shard of whoever changed the
    /// flow set, scattering a shared link's timer churn across shards;
    /// pinning keeps it on the link's home domain. A pure placement
    /// hint: trajectories are identical pinned or not.
    pub fn pin_to_shard(self, shard: u32) -> Self {
        self.inner.borrow_mut().pin_shard = Some(shard);
        self
    }

    /// Aggregate rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.inner.borrow().rate
    }

    /// Number of in-flight transfers.
    pub fn active_flows(&self) -> usize {
        self.inner.borrow().n_total
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> BwStats {
        self.inner.borrow().stats
    }

    /// Transfer `bytes` through the link, completing when the fair-share
    /// fluid model has delivered every byte.
    pub async fn transfer(&self, bytes: u64) {
        self.transfer_capped(bytes, None).await
    }

    /// Transfer with an explicit per-flow rate ceiling (e.g. a sustained
    /// client stream rate that is lower than the device's burst rate).
    pub async fn transfer_capped(&self, bytes: u64, cap: Option<f64>) {
        self.start(bytes, cap, 0).await
    }

    /// Join the flow set *now* and return a future resolving when the
    /// fluid model has delivered every byte. Splitting the synchronous
    /// join from the await lets a caller start several flows at the same
    /// instant (e.g. the tx and rx side of one message) and then await
    /// them in any order, with no helper tasks.
    pub fn transfer_capped_start(&self, bytes: u64, cap: Option<f64>) -> TransferFut {
        self.start(bytes, cap, 0)
    }

    /// [`SharedBandwidth::transfer_capped_start`] that also accounts the
    /// bytes in [`BwStats::bytes_moved`] once the flow completes.
    pub fn transfer_counted_start(&self, bytes: u64) -> TransferFut {
        self.start(bytes, None, bytes)
    }

    fn start(&self, bytes: u64, cap: Option<f64>, counted_bytes: u64) -> TransferFut {
        if bytes == 0 {
            self.inner.borrow_mut().stats.bytes_moved += counted_bytes;
            return TransferFut {
                state: TfState::Done,
            };
        }
        let (slot, gen);
        {
            let mut inner = self.inner.borrow_mut();
            let now = self.ctx.now();
            inner.advance(now);
            (slot, gen) = inner.alloc_flow();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let resolved = cap.or(inner.flow_cap);
            let ci = inner.class_index(resolved);
            let fin = inner.classes[ci].s + bytes as f64;
            inner.classes[ci].queue.push(Pending {
                fin,
                seq,
                slot,
                counted_bytes,
            });
            inner.n_total += 1;
            inner.stats.peak_concurrency = inner.stats.peak_concurrency.max(inner.n_total);
        }
        self.reschedule();
        TransferFut {
            state: TfState::Waiting {
                bw: self.clone(),
                slot,
                gen,
            },
        }
    }

    /// Complete every flow whose finish tag has been reached and arm a
    /// timer for the next completion. Called after any flow-set change;
    /// the previously armed timer (if any) is retired first, so exactly
    /// one provisional completion event exists per link.
    fn reschedule(&self) {
        let old_timer = self.inner.borrow_mut().timer.take();
        if let Some(t) = old_timer {
            t.cancel();
        }
        let next: Option<(SimDuration, usize, f64)>;
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let mut served = 0u64;
            let mut bytes_moved = 0u64;
            for ci in 0..inner.classes.len() {
                loop {
                    let class = &mut inner.classes[ci];
                    let Some(p) = class.queue.peek() else {
                        break;
                    };
                    if p.fin > class.s {
                        break;
                    }
                    let p = class.queue.pop().unwrap();
                    bytes_moved += p.counted_bytes;
                    // Mark done first — the woken future's re-poll looks
                    // at the slot state. Waking goes through the
                    // executor's ordinary wake queue (same ordering as a
                    // waker would produce) and touches neither `inner`
                    // nor any allocation.
                    let prev = std::mem::replace(
                        &mut inner.flows[p.slot as usize].state,
                        FlowState::Finished,
                    );
                    match prev {
                        FlowState::InFlight => {}
                        FlowState::Parked(task) => self.ctx.wake_task(task),
                        // Future already dropped: nobody will poll again,
                        // vacate the slot here.
                        FlowState::Abandoned => inner.free_flow(p.slot),
                        FlowState::Vacant { .. } | FlowState::Finished => {
                            unreachable!("completed flow in impossible state")
                        }
                    }
                    served += 1;
                }
            }
            inner.n_total -= served as usize;
            inner.stats.flows_served += served;
            inner.stats.bytes_moved += bytes_moved;
            next = if inner.n_total == 0 {
                None
            } else {
                // Earliest completion across classes: each class clock
                // runs at its own constant rate until the next flow-set
                // change, so the head tag's arrival time is exact.
                let mut best: Option<(f64, usize, f64)> = None;
                for (ci, class) in inner.classes.iter().enumerate() {
                    let Some(p) = class.queue.peek() else {
                        continue;
                    };
                    let secs = (p.fin - class.s) / inner.class_rate(class.cap);
                    if best.is_none_or(|(b, _, _)| secs < b) {
                        best = Some((secs, ci, p.fin));
                    }
                }
                best.map(|(secs, ci, fin)| (SimDuration::from_secs_f64_ceil(secs), ci, fin))
            };
        }
        if let Some((delay, ci, fin)) = next {
            let cb = {
                let mut inner = self.inner.borrow_mut();
                inner.armed = (ci, fin);
                match &inner.timer_cb {
                    Some(cb) => cb.clone(),
                    None => {
                        // Built once per link. Captures a `Weak` so the
                        // callback does not keep the link alive through
                        // the calendar (mirroring how the boxed-closure
                        // path dropped its captures on cancellation).
                        let ctx = self.ctx.clone();
                        let weak = Rc::downgrade(&self.inner);
                        let cb: Rc<dyn Fn()> = Rc::new(move || {
                            if let Some(inner) = weak.upgrade() {
                                let (ci, fin) = inner.borrow().armed;
                                let bw = SharedBandwidth {
                                    ctx: ctx.clone(),
                                    inner,
                                };
                                bw.on_completion(ci, fin);
                            }
                        });
                        inner.timer_cb = Some(cb.clone());
                        cb
                    }
                }
            };
            let pin = self.inner.borrow().pin_shard;
            let handle = match pin {
                Some(sh) => self
                    .ctx
                    .with_shard(sh, || self.ctx.call_after_rc(delay, cb)),
                None => self.ctx.call_after_rc(delay, cb),
            };
            self.inner.borrow_mut().timer = Some(handle);
        }
    }

    /// Timer body: the head flow of class `ci` has reached tag `fin`.
    fn on_completion(&self, ci: usize, fin: f64) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.timer = None;
            let now = self.ctx.now();
            inner.advance(now);
            // The timer fired, so the flow set is unchanged since it was
            // armed and every class rate held constant: in exact
            // arithmetic the target clock has reached `fin` (the delay
            // was ceiling-rounded). Nudge past any float-ulp shortfall so
            // the completion pops on an exact tag comparison.
            let class = &mut inner.classes[ci];
            if class.s < fin {
                class.s = fin;
            }
        }
        self.reschedule();
    }
}

impl SharedBandwidth {
    /// Transfer and account the byte count in [`BwStats::bytes_moved`].
    pub async fn transfer_counted(&self, bytes: u64) {
        self.start(bytes, None, bytes).await
    }

    /// [`SharedBandwidth::transfer_capped`] with byte accounting.
    pub async fn transfer_capped_counted(&self, bytes: u64, cap: Option<f64>) {
        self.start(bytes, cap, bytes).await
    }
}

enum TfState {
    Done,
    Waiting {
        bw: SharedBandwidth,
        slot: u32,
        gen: u32,
    },
}

/// Future for one in-flight transfer, returned by the
/// [`SharedBandwidth`] transfer methods.
///
/// Completion is delivered through the link's own flow slab (slot →
/// waiting task), not a per-transfer channel, so starting and finishing
/// a transfer allocates nothing beyond the heap entry. Dropping the
/// future abandons the wait; the modeled flow still runs to completion
/// and is counted in the link statistics.
pub struct TransferFut {
    state: TfState,
}

impl Future for TransferFut {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let TfState::Waiting { bw, slot, gen } = &self.state else {
            return Poll::Ready(());
        };
        let (slot, gen) = (*slot, *gen);
        let task = bw.ctx.current_task();
        let mut inner = bw.inner.borrow_mut();
        let fs = &mut inner.flows[slot as usize];
        // The slot is vacated only by this future's own poll/drop, so a
        // generation mismatch is a protocol bug, not a race.
        assert_eq!(fs.gen, gen, "transfer future polled a reused flow slot");
        if matches!(fs.state, FlowState::Finished) {
            inner.free_flow(slot);
            drop(inner);
            self.state = TfState::Done;
            Poll::Ready(())
        } else {
            fs.state = FlowState::Parked(task);
            drop(inner);
            // Woken directly by task id on completion; no waker wraps
            // exist in this workspace (see `EventKind::WakeTask`).
            let _ = cx;
            Poll::Pending
        }
    }
}

impl Drop for TransferFut {
    fn drop(&mut self) {
        if let TfState::Waiting { bw, slot, gen } = &self.state {
            let mut inner = bw.inner.borrow_mut();
            let fs = &mut inner.flows[*slot as usize];
            assert_eq!(fs.gen, *gen, "transfer future dropped a reused flow slot");
            match fs.state {
                // Completed but never re-polled: vacate now.
                FlowState::Finished => inner.free_flow(*slot),
                // Still in flight: the modeled flow runs to completion
                // and the completion path vacates the slot.
                FlowState::InFlight | FlowState::Parked(_) => {
                    fs.state = FlowState::Abandoned;
                }
                FlowState::Vacant { .. } | FlowState::Abandoned => {
                    unreachable!("live transfer future over a dead slot")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::Cell;

    fn secs(ns: u64) -> f64 {
        ns as f64 / 1e9
    }

    #[test]
    fn solo_transfer_takes_size_over_rate() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1_000_000_000.0); // 1 GB/s
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            bw.transfer(500_000_000).await; // 0.5 GB -> 0.5 s
            ctx2.now()
        });
        sim.run();
        let t = h.try_take().unwrap();
        assert!((t.as_secs_f64() - 0.5).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn two_equal_flows_each_take_twice_as_long() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1_000_000_000.0);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let bw = bw.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(async move {
                bw.transfer(500_000_000).await;
                ctx.now()
            }));
        }
        sim.run();
        for h in handles {
            let t = h.try_take().unwrap();
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "took {t}");
        }
    }

    #[test]
    fn staggered_arrival_shares_only_while_overlapping() {
        // Flow A (1000 bytes) starts at t=0 on a 1000 B/s link.
        // Flow B (1000 bytes) starts at t=0.5s.
        // 0.0-0.5: A alone, moves 500.
        // 0.5-1.5: both at 500 B/s, A finishes at 1.5 having moved 1000.
        // 1.5-2.0: B alone at 1000 B/s, finishes at 2.0.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1000.0);
        let a = {
            let bw = bw.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                bw.transfer(1000).await;
                ctx.now().as_secs_f64()
            })
        };
        let b = {
            let bw = bw.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_millis(500)).await;
                bw.transfer(1000).await;
                ctx.now().as_secs_f64()
            })
        };
        sim.run();
        assert!((a.try_take().unwrap() - 1.5).abs() < 1e-6);
        assert!((b.try_take().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn flow_cap_limits_a_lone_flow() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 4000.0).with_flow_cap(1000.0);
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            bw.transfer(1000).await;
            ctx2.now().as_secs_f64()
        });
        sim.run();
        assert!((h.try_take().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1000.0);
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            bw.transfer(0).await;
            ctx2.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn throughput_never_exceeds_rate() {
        // Many random flows; total bytes / makespan must be <= rate.
        let sim = Sim::new(3);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 10_000.0);
        let total = Rc::new(Cell::new(0u64));
        use rand::RngExt;
        let mut rng = ctx.rng(0);
        for _ in 0..50 {
            let bytes: u64 = rng.random_range(1..5_000);
            let start_ns: u64 = rng.random_range(0..1_000_000_000);
            let bw = bw.clone();
            let ctx = ctx.clone();
            let total = total.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(start_ns)).await;
                bw.transfer_counted(bytes).await;
                total.set(total.get() + bytes);
            });
        }
        let report = sim.run();
        assert!(report.is_clean());
        let rate_observed = total.get() as f64 / report.end_time.as_secs_f64();
        assert!(
            rate_observed <= 10_000.0 * (1.0 + 1e-6),
            "observed {rate_observed}"
        );
        assert_eq!(bw.stats().flows_served, 50);
        assert_eq!(bw.stats().bytes_moved, total.get());
    }

    #[test]
    fn busy_time_counts_only_active_intervals() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let bw = SharedBandwidth::new(&ctx, 1000.0);
        {
            let bw = bw.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                bw.transfer(500).await; // 0.5 s busy
                ctx.sleep(SimDuration::from_secs(2)).await; // idle
                bw.transfer(500).await; // 0.5 s busy
            });
        }
        sim.run();
        let busy = bw.stats().busy.as_secs_f64();
        assert!((busy - 1.0).abs() < 1e-6, "busy {busy}");
    }

    #[test]
    fn fifo_resource_serializes_beyond_slots() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let res = FifoResource::new(&ctx, 2);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let res = res.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(async move {
                res.request(SimDuration::from_secs(1)).await;
                ctx.now().as_secs_f64()
            }));
        }
        sim.run();
        let mut ends: Vec<f64> = handles.into_iter().map(|h| h.try_take().unwrap()).collect();
        ends.sort_by(f64::total_cmp);
        assert_eq!(ends, vec![1.0, 1.0, 2.0, 2.0]);
        let st = res.stats();
        assert_eq!(st.served, 4);
        assert!((st.busy.as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((st.waited.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_resource_tracks_peak_queue() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let res = FifoResource::new(&ctx, 1);
        for _ in 0..5 {
            let res = res.clone();
            sim.spawn(async move {
                res.request(SimDuration::from_nanos(10)).await;
            });
        }
        sim.run();
        assert_eq!(res.stats().peak_queue, 4);
    }

    #[test]
    fn proptest_secs_helper() {
        assert_eq!(secs(1_500_000_000), 1.5);
    }

    /// Regression test for the peak-queue observation point: waiters
    /// arrive in two waves with drains in between, and the reported peak
    /// must be the true high-water mark (observed exactly once, at
    /// waiter enqueue) and monotone across snapshots.
    #[test]
    fn peak_queue_survives_interleaved_waves_and_drains() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let res = FifoResource::new(&ctx, 1);
        let service = SimDuration::from_nanos(100);
        // Wave 1 at t=0: one runs, two queue.
        for _ in 0..3 {
            let res = res.clone();
            sim.spawn(async move {
                res.request(service).await;
            });
        }
        // Wave 2 at t=10ns while wave 1 still queues: queue hits 4.
        for _ in 0..2 {
            let res = res.clone();
            let ctx2 = ctx.clone();
            sim.spawn(async move {
                ctx2.sleep(SimDuration::from_nanos(10)).await;
                res.request(service).await;
            });
        }
        // Wave 3 long after everything drained: queue only reaches 1, so
        // the peak must not be reset by the idle period.
        for _ in 0..2 {
            let res = res.clone();
            let ctx2 = ctx.clone();
            sim.spawn(async move {
                ctx2.sleep(SimDuration::from_micros(10)).await;
                res.request(service).await;
            });
        }
        // Monitor: snapshots are monotone and never exceed the true max.
        let peaks: Rc<RefCell<Vec<usize>>> = Rc::default();
        {
            let res = res.clone();
            let ctx2 = ctx.clone();
            let peaks = peaks.clone();
            sim.spawn(async move {
                for _ in 0..8 {
                    ctx2.sleep(SimDuration::from_nanos(60)).await;
                    peaks.borrow_mut().push(res.stats().peak_queue);
                }
            });
        }
        assert!(sim.run().is_clean());
        assert_eq!(res.stats().peak_queue, 4);
        let peaks = peaks.borrow();
        assert!(
            peaks.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone: {peaks:?}"
        );
        assert!(peaks.iter().all(|&p| p <= 4), "over-report: {peaks:?}");
    }
}
