//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the DYAD-vs-traditional-I/O reproduction: a
//! deterministic discrete-event simulator whose processes are plain Rust
//! `async` functions. The core dispatch loop is single-threaded; an
//! opt-in staging pool ([`SimConfig::workers`]) pre-sorts sharded event
//! calendars inside conservative time windows without ever changing the
//! schedule.
//!
//! * [`Sim`] owns the event calendar and executor; [`Ctx`] is the handle
//!   processes use to sleep, spawn, and draw random numbers.
//! * [`sync`] provides simulation-aware channels, semaphores, notifies and
//!   barriers (zero simulated cost; model real costs explicitly).
//! * [`resource`] provides contended resources: FIFO server pools and
//!   processor-sharing bandwidth links — the building blocks for NVMe
//!   devices, NICs, and file-system servers.
//! * [`stats`] provides Welford accumulators, percentile summaries and
//!   histograms for the experiment harness.
//!
//! Determinism: given the same seed and the same program, every run
//! produces the identical event trajectory. All randomness flows through
//! [`Ctx::rng`] streams derived from the simulation seed.
//!
//! ```
//! use simcore::{Sim, SimDuration};
//!
//! let sim = Sim::new(1);
//! let ctx = sim.ctx();
//! let handle = sim.spawn(async move {
//!     ctx.sleep(SimDuration::from_micros(3)).await;
//!     ctx.now().nanos()
//! });
//! sim.run();
//! assert_eq!(handle.try_take(), Some(3_000));
//! ```

#![warn(missing_docs)]

mod combinators;
mod executor;
pub mod intern;
pub mod resource;
pub mod stats;
pub mod sync;
mod time;
pub mod trace;

pub use combinators::{race, timeout, Either, Race, TimedOut, Timeout};
pub use executor::{
    splitmix64, CalendarStats, Ctx, JoinHandle, RunReport, ShardStats, Sim, SimArena, SimConfig,
    Sleep, TimerHandle, YieldNow,
};
pub use time::{SimDuration, SimTime};

/// Await multiple futures of the same type concurrently and collect their
/// results in order. A tiny substitute for `futures::join_all` so the
/// workspace needs no external async runtime.
pub async fn join_all<T, F>(futs: Vec<F>) -> Vec<T>
where
    F: std::future::Future<Output = T> + Unpin,
{
    let mut futs: Vec<Option<F>> = futs.into_iter().map(Some).collect();
    let mut results: Vec<Option<T>> = (0..futs.len()).map(|_| None).collect();
    std::future::poll_fn(move |cx| {
        let mut all_done = true;
        for (slot, result) in futs.iter_mut().zip(results.iter_mut()) {
            if let Some(f) = slot {
                match std::pin::Pin::new(f).poll(cx) {
                    std::task::Poll::Ready(v) => {
                        *result = Some(v);
                        *slot = None;
                    }
                    std::task::Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            std::task::Poll::Ready(results.iter_mut().map(|r| r.take().unwrap()).collect())
        } else {
            std::task::Poll::Pending
        }
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_all_collects_in_order() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let ctx = ctx.clone();
                    ctx.clone().spawn(async move {
                        ctx.sleep(SimDuration::from_nanos(100 - i * 10)).await;
                        i
                    })
                })
                .collect();
            join_all(handles).await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![0, 1, 2, 3]);
    }
}
