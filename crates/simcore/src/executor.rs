//! The discrete-event executor.
//!
//! A [`Sim`] owns an event calendar (a time-ordered priority queue) and a set
//! of *processes*: ordinary Rust futures polled by a single-threaded
//! executor whose notion of time is the simulation clock. A process blocks
//! by awaiting [`Ctx::sleep`] or any of the synchronization primitives in
//! [`crate::sync`]; the executor advances the clock to the next scheduled
//! event whenever every process is blocked.
//!
//! Events at equal timestamps are processed in insertion order (a strictly
//! increasing sequence number breaks ties), which makes runs fully
//! deterministic for a fixed seed and spawn order.
//!
//! # Sharded calendars and conservative windows
//!
//! The calendar can be split into *shards* ([`SimConfig::shards`]) —
//! one per topology domain (leaf switch) plus a cross-domain shard 0 —
//! each holding its own small heap. Execution order never changes: the
//! executor always fires the globally smallest `(time, seq)` entry,
//! found through an indexed min-heap over the per-shard heads. Because
//! `seq` is globally unique, the cross-shard merge order
//! `(time, shard_id, seq)` collapses to `(time, seq)` — the exact serial
//! order — so a sharded run is bit-identical to a single-shard run for
//! *any* shard assignment. Sharding is purely a locality optimization:
//! hot heaps shrink from one multi-megabyte structure to cache-resident
//! per-shard ones.
//!
//! On top of that, [`SimConfig::workers`] (default 1) enables a
//! conservative-window worker pool: when the next event opens a new time
//! window `[t, t + lookahead]`, worker threads drain each shard's heap
//! of entries inside the window into a sorted *staged run* in parallel;
//! the (single-threaded) dispatch loop then consumes staged runs with
//! cheap cursor advances instead of heap pops. Window sealing is a pure
//! batching decision — consumption still follows the global
//! `(time, seq)` order across staged runs *and* heaps — so reports and
//! traces are byte-identical for any worker count.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::sync::Arc;

use std::task::{Context, Poll, Wake, Waker};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{SimDuration, SimTime};

/// Dense task handle: the low 32 bits index the task slab, the high 32
/// bits carry the slot's generation at spawn time. Packing both into one
/// word keeps wake queues and calendar entries exactly as small as the
/// old sequential-id scheme while making stale wakes (a wake delivered
/// after the task completed and its slot was reused) recognizably dead:
/// completion bumps the slot generation, so a stale id fails the
/// generation check exactly where the old scheme missed the task map.
pub(crate) type TaskId = u64;

#[inline]
const fn task_slot(id: TaskId) -> u32 {
    id as u32
}

#[inline]
const fn task_gen(id: TaskId) -> u32 {
    (id >> 32) as u32
}

#[inline]
const fn task_id(slot: u32, gen: u32) -> TaskId {
    ((gen as u64) << 32) | slot as u64
}

/// What the calendar fires when an event's timestamp is reached.
enum EventKind {
    /// Wake a process directly by task id (timer expiry). Nothing in
    /// this workspace wraps wakers, so a future polled by task `t` is
    /// always woken via `t`'s own waker — [`Sleep`] exploits that and
    /// skips the `Waker`/queue indirection (no `Arc` traffic, no
    /// mutex) for the most common calendar entry by far.
    WakeTask(TaskId),
    /// Run an arbitrary callback (used by event-driven resources such as
    /// [`crate::resource::SharedBandwidth`]).
    Call(Box<dyn FnOnce()>),
    /// Run a reusable callback. Arming clones an `Rc` instead of boxing a
    /// fresh closure, so a resource that re-arms its provisional "next
    /// completion" timer on every flow-set change (the hottest timer
    /// pattern in the workspace) allocates nothing after the first arm.
    CallRc(Rc<dyn Fn()>),
}

/// A calendar entry. The payload lives in the slot slab so that heap
/// entries stay small and `Copy`, and so an entry can be cancelled in O(1)
/// without digging through the heap: cancellation vacates the slot and
/// bumps its generation, turning the heap entry into a tombstone that is
/// skipped when popped (and swept early if tombstones pile up).
#[derive(Copy, Clone)]
struct Event {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// 4-ary implicit min-heap over calendar entries, keyed by `(at, seq)`.
///
/// Versus `BinaryHeap` this halves the tree depth and lays all four
/// children of a node out contiguously, so a push or pop at a calendar
/// population of hundreds of thousands of entries touches roughly half
/// as many cache lines. The pop *order* is exactly the `(at, seq)` total
/// order — `seq` is unique — so heap arity is invisible to trajectories;
/// only host time changes.
#[derive(Default)]
struct EventHeap {
    v: Vec<Event>,
}

impl EventHeap {
    const D: usize = 4;

    fn len(&self) -> usize {
        self.v.len()
    }

    fn peek(&self) -> Option<&Event> {
        self.v.first()
    }

    fn clear(&mut self) {
        self.v.clear();
    }

    fn push(&mut self, e: Event) {
        self.v.push(e);
        self.sift_up(self.v.len() - 1);
    }

    fn pop(&mut self) -> Option<Event> {
        let n = self.v.len();
        if n == 0 {
            return None;
        }
        self.v.swap(0, n - 1);
        let top = self.v.pop();
        if !self.v.is_empty() {
            self.sift_down(0);
        }
        top
    }

    fn sift_up(&mut self, mut i: usize) {
        let e = self.v[i];
        let key = (e.at, e.seq);
        while i > 0 {
            let parent = (i - 1) / Self::D;
            let p = self.v[parent];
            if (p.at, p.seq) <= key {
                break;
            }
            self.v[i] = p;
            i = parent;
        }
        self.v[i] = e;
    }

    fn sift_down(&mut self, mut i: usize) {
        let e = self.v[i];
        let key = (e.at, e.seq);
        let n = self.v.len();
        loop {
            let first = i * Self::D + 1;
            if first >= n {
                break;
            }
            let last = (first + Self::D).min(n);
            let mut min_j = first;
            let mut min_key = (self.v[first].at, self.v[first].seq);
            for j in first + 1..last {
                let k = (self.v[j].at, self.v[j].seq);
                if k < min_key {
                    min_j = j;
                    min_key = k;
                }
            }
            if key <= min_key {
                break;
            }
            self.v[i] = self.v[min_j];
            i = min_j;
        }
        self.v[i] = e;
    }

    /// Bottom-up heapify (used by tombstone compaction).
    fn from_vec(v: Vec<Event>) -> Self {
        let mut h = EventHeap { v };
        if h.v.len() > 1 {
            let last_parent = (h.v.len() - 2) / Self::D;
            for i in (0..=last_parent).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    fn into_vec(self) -> Vec<Event> {
        self.v
    }
}

/// Head key of an empty shard: sorts after every real `(at, seq)` key
/// (no real entry carries `seq == u64::MAX`).
const NO_EVENT: (SimTime, u64) = (SimTime::MAX, u64::MAX);

/// One calendar shard: a heap of future entries plus an optional
/// *staged run* — entries inside the current conservative window, moved
/// out of the heap in sorted `(at, seq)` order (heap pops are sorted)
/// and consumed through `cursor` with plain increments.
///
/// A shard's head is the smaller of the staged-run head and the heap
/// head; consumption always takes the global minimum across all shard
/// heads, so where an entry sits (heap vs staged run) never affects
/// execution order — staging is batching, not scheduling.
#[derive(Default)]
struct ShardCal {
    heap: EventHeap,
    staged: Vec<Event>,
    cursor: usize,
    /// Events fired from this shard (worker-invariant).
    fired: u64,
    /// Entries that went through a staged window (worker-*variant*:
    /// zero for `workers = 1`; must never enter serialized reports).
    staged_total: u64,
}

impl ShardCal {
    fn head_key(&self) -> (SimTime, u64) {
        let s = self.staged.get(self.cursor).map(|e| (e.at, e.seq));
        let h = self.heap.peek().map(|e| (e.at, e.seq));
        match (s, h) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => NO_EVENT,
        }
    }

    fn peek_head(&self) -> Option<Event> {
        match (self.staged.get(self.cursor), self.heap.peek()) {
            (Some(s), Some(h)) => Some(if (s.at, s.seq) <= (h.at, h.seq) {
                *s
            } else {
                *h
            }),
            (Some(s), None) => Some(*s),
            (None, Some(h)) => Some(*h),
            (None, None) => None,
        }
    }

    fn pop_head(&mut self) -> Option<Event> {
        let take_staged = match (self.staged.get(self.cursor), self.heap.peek()) {
            (Some(s), Some(h)) => (s.at, s.seq) <= (h.at, h.seq),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_staged {
            let e = self.staged[self.cursor];
            self.cursor += 1;
            if self.cursor == self.staged.len() {
                self.staged.clear();
                self.cursor = 0;
            }
            Some(e)
        } else {
            self.heap.pop()
        }
    }

    fn pending_len(&self) -> usize {
        self.heap.len() + (self.staged.len() - self.cursor)
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.staged.clear();
        self.cursor = 0;
        self.fired = 0;
        self.staged_total = 0;
    }
}

/// Move every heap entry at or before `window_end` into the staged run.
/// Pops come off the heap in `(at, seq)` order, so the run stays sorted.
/// Runs on worker threads; touches nothing but this one shard.
fn stage_shard(sc: &mut ShardCal, window_end: SimTime) {
    debug_assert_eq!(sc.cursor, sc.staged.len(), "staging over an unconsumed run");
    sc.staged.clear();
    sc.cursor = 0;
    while let Some(e) = sc.heap.peek() {
        if e.at > window_end {
            break;
        }
        let e = *e;
        sc.heap.pop();
        sc.staged.push(e);
    }
    sc.staged_total += sc.staged.len() as u64;
}

/// Indexed 4-ary min-heap over shard ids, keyed by each shard's head
/// `(at, seq)`. A position map makes the per-event key update (the shard
/// we just popped from got a new head) an O(log₄ shards) sift instead of
/// a lazy push/pop pair.
struct ShardIndex {
    /// Heap of shard ids, min `keys[heap[0]]` at the root.
    heap: Vec<u32>,
    /// shard id → position in `heap`.
    pos: Vec<u32>,
    /// shard id → current head key.
    keys: Vec<(SimTime, u64)>,
}

impl ShardIndex {
    const D: usize = 4;

    fn new(n: usize) -> ShardIndex {
        ShardIndex {
            heap: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            keys: vec![NO_EVENT; n],
        }
    }

    /// Shard with the globally smallest head key, and that key.
    fn min(&self) -> (u32, (SimTime, u64)) {
        let s = self.heap[0];
        (s, self.keys[s as usize])
    }

    fn key(&self, shard: u32) -> (SimTime, u64) {
        self.keys[shard as usize]
    }

    fn set_key(&mut self, shard: u32, key: (SimTime, u64)) {
        let old = self.keys[shard as usize];
        if old == key {
            return;
        }
        self.keys[shard as usize] = key;
        let i = self.pos[shard as usize] as usize;
        if key < old {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let s = self.heap[i];
        let key = self.keys[s as usize];
        while i > 0 {
            let parent = (i - 1) / Self::D;
            let p = self.heap[parent];
            if self.keys[p as usize] <= key {
                break;
            }
            self.heap[i] = p;
            self.pos[p as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = s;
        self.pos[s as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        let s = self.heap[i];
        let key = self.keys[s as usize];
        let n = self.heap.len();
        loop {
            let first = i * Self::D + 1;
            if first >= n {
                break;
            }
            let last = (first + Self::D).min(n);
            let mut min_j = first;
            let mut min_key = self.keys[self.heap[first] as usize];
            for j in first + 1..last {
                let k = self.keys[self.heap[j] as usize];
                if k < min_key {
                    min_j = j;
                    min_key = k;
                }
            }
            if key <= min_key {
                break;
            }
            let c = self.heap[min_j];
            self.heap[i] = c;
            self.pos[c as usize] = i as u32;
            i = min_j;
        }
        self.heap[i] = s;
        self.pos[s as usize] = i as u32;
    }
}

/// Executor construction parameters. [`Sim::new`] is shorthand for the
/// default single-shard, single-worker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// RNG seed; determines every [`Ctx::rng`] stream.
    pub seed: u64,
    /// Calendar shards. 1 (the default) is the classic global calendar;
    /// the cluster layer maps this to one shard per leaf switch plus a
    /// cross-leaf shard 0. Trajectories are identical for any value.
    pub shards: u32,
    /// Worker threads draining conservative windows. 1 (the default)
    /// never spawns a thread; values above 1 engage the window pool when
    /// `shards > 1`. Reports and traces are byte-identical for any
    /// worker count.
    pub workers: usize,
    /// Conservative window width: how far past the next event the
    /// window stagers may reach. Derived from the minimum cross-shard
    /// fabric latency by the cluster layer. Purely a batching knob —
    /// correctness never depends on it.
    pub lookahead: SimDuration,
}

impl SimConfig {
    /// Single-shard, single-worker configuration (what [`Sim::new`]
    /// uses).
    pub fn new(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            shards: 1,
            workers: 1,
            lookahead: SimDuration::from_nanos(0),
        }
    }

    /// Set the shard count (values below 1 are clamped to 1).
    pub fn with_shards(mut self, shards: u32) -> SimConfig {
        self.shards = shards.max(1);
        self
    }

    /// Set the worker count (values below 1 are clamped to 1).
    pub fn with_workers(mut self, workers: usize) -> SimConfig {
        self.workers = workers.max(1);
        self
    }

    /// Set the conservative window width.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> SimConfig {
        self.lookahead = lookahead;
        self
    }
}

/// Per-shard calendar counters. `fired` and `pending` are
/// worker-invariant; `staged` counts window-pool extractions and is
/// worker-*variant* (zero at `workers = 1`) — keep it out of anything
/// that must be byte-identical across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id (0 is the cross-domain shard).
    pub shard: u32,
    /// Events fired from this shard so far.
    pub fired: u64,
    /// Live + tombstoned entries currently held by this shard.
    pub pending: usize,
    /// Entries that passed through a staged window (worker-variant).
    pub staged: u64,
}

/// Live entries below which a new window is not worth a pool handshake.
const WINDOW_STAGE_MIN: usize = 32;

/// A `*mut [ShardCal]` that can cross the pool handshake. Workers claim
/// disjoint shard indices through [`StagePool::next`], so no two threads
/// ever form a `&mut` to the same shard.
#[derive(Clone, Copy)]
struct ShardSlice {
    ptr: *mut ShardCal,
    len: usize,
}

unsafe impl Send for ShardSlice {}

struct StageJob {
    epoch: u64,
    shutdown: bool,
    window_end: SimTime,
    shards: ShardSlice,
    /// Workers that have not yet finished the current epoch.
    active: usize,
}

/// Sealed-window staging pool: persistent scoped worker threads woken
/// once per window through an epoch handshake (no per-window spawns).
/// The coordinator participates in the drain, then blocks until every
/// worker reports done — the barrier that makes the raw-pointer shard
/// claims race-free.
struct StagePool {
    job: Mutex<StageJob>,
    go: Condvar,
    done: Condvar,
    next: std::sync::atomic::AtomicUsize,
    /// Spawned worker threads (excluding the coordinator).
    spawned: usize,
}

impl StagePool {
    fn new(spawned: usize) -> StagePool {
        StagePool {
            job: Mutex::new(StageJob {
                epoch: 0,
                shutdown: false,
                window_end: SimTime::ZERO,
                shards: ShardSlice {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                },
                active: 0,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            next: std::sync::atomic::AtomicUsize::new(0),
            spawned,
        }
    }

    fn worker_loop(&self) {
        let mut seen = 0u64;
        loop {
            let (slice, end) = {
                let mut j = self.job.lock();
                while j.epoch == seen && !j.shutdown {
                    self.go.wait(&mut j);
                }
                if j.shutdown {
                    return;
                }
                seen = j.epoch;
                (j.shards, j.window_end)
            };
            self.drain(slice, end);
            let mut j = self.job.lock();
            j.active -= 1;
            if j.active == 0 {
                drop(j);
                self.done.notify_one();
            }
        }
    }

    fn drain(&self, slice: ShardSlice, end: SimTime) {
        use std::sync::atomic::Ordering;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= slice.len {
                return;
            }
            // SAFETY: `i` was claimed exclusively through the shared
            // atomic counter, and the coordinator blocks in
            // `run_window` until every worker is done, so this `&mut`
            // aliases nothing.
            let sc = unsafe { &mut *slice.ptr.add(i) };
            stage_shard(sc, end);
        }
    }

    /// Publish a window, help drain it, and wait for the pool to finish.
    fn run_window(&self, slice: ShardSlice, end: SimTime) {
        {
            let mut j = self.job.lock();
            j.epoch += 1;
            j.window_end = end;
            j.shards = slice;
            j.active = self.spawned;
            self.next.store(0, std::sync::atomic::Ordering::Relaxed);
            self.go.notify_all();
        }
        self.drain(slice, end);
        let mut j = self.job.lock();
        while j.active > 0 {
            self.done.wait(&mut j);
        }
    }

    fn shutdown(&self) {
        let mut j = self.job.lock();
        j.shutdown = true;
        self.go.notify_all();
    }
}

/// Queue of task ids woken since the last executor dispatch.
///
/// `Waker` must be `Send + Sync`, so the wake path goes through a real
/// mutex even though the simulation itself is single-threaded. The lock is
/// uncontended in practice.
#[derive(Default)]
struct WakeQueue {
    woken: Mutex<Vec<TaskId>>,
    /// Cheap "anything queued?" flag so the dispatch loop can skip the
    /// lock on the (overwhelmingly common) empty check.
    nonempty: std::sync::atomic::AtomicBool,
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.woken.lock().push(self.id);
        self.queue
            .nonempty
            .store(true, std::sync::atomic::Ordering::Release);
    }
}

/// A spawned process: its future plus the waker minted for it at spawn
/// time. Reusing one waker per task keeps the dispatch loop free of
/// per-poll `Arc` allocations.
struct Task {
    fut: Pin<Box<dyn Future<Output = ()>>>,
    waker: Waker,
}

/// Slab slot holding one spawned process. Vacated (and its generation
/// bumped) when the process completes, so wakes carrying the old id are
/// skipped instead of hitting the slot's next tenant.
struct TaskSlot {
    gen: u32,
    /// Calendar shard this task's events land on (set at spawn; purely
    /// a locality hint — never part of the execution order).
    shard: u32,
    state: TaskState,
}

enum TaskState {
    Vacant {
        next_free: u32,
    },
    /// Parked between polls (or queued in `ready`).
    Parked(Task),
    /// Taken out by the dispatch loop for the duration of one poll.
    Polling,
}

/// Slab slot holding the payload of one scheduled calendar entry.
struct Slot {
    /// Bumped every time the slot is disarmed (fired or cancelled), so a
    /// heap entry carrying a stale generation is recognizably dead even if
    /// the slot has since been reused.
    gen: u32,
    state: SlotState,
}

enum SlotState {
    Vacant { next_free: u32 },
    Armed(EventKind),
}

/// Sentinel for "free list empty".
const NO_FREE: u32 = u32::MAX;

/// Tombstones are swept eagerly only once at least this many have piled
/// up; below the floor, lazy deletion on pop is cheaper than a rebuild.
const COMPACT_FLOOR: usize = 64;

/// Snapshot of event-calendar internals, for health checks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarStats {
    /// Live (armed, unexpired) entries in the calendar.
    pub pending: usize,
    /// Cancelled entries whose heap tombstones have not yet been popped or
    /// compacted away. Bounded by `max(pending, compaction floor)`.
    pub tombstones: usize,
    /// Number of tombstone-triggered heap rebuilds so far.
    pub compactions: u64,
    /// Slots currently allocated in the entry slab (high-water mark of
    /// simultaneously scheduled entries).
    pub slab_slots: usize,
}

pub(crate) struct Core {
    now: SimTime,
    seq: u64,
    shards: Vec<ShardCal>,
    index: ShardIndex,
    /// Entries (live + tombstoned) across every shard heap and staged run.
    total_entries: usize,
    /// Shard new events land on: the shard of the task being polled, the
    /// shard the firing event was popped from, or an explicit
    /// [`Ctx::with_shard`] override. 0 outside any of those.
    current_shard: u32,
    lookahead: SimDuration,
    /// End of the currently sealed staging window. Lives on the core —
    /// not the run loop — because deadline-sliced runs (`run_until` in a
    /// loop) can pause mid-window with staged-but-unconsumed entries;
    /// restaging that window from scratch would clobber them.
    window_end: SimTime,
    workers: usize,
    slots: Vec<Slot>,
    free_head: u32,
    tombstones: usize,
    compactions: u64,
    tasks: Vec<TaskSlot>,
    task_free: u32,
    /// Spawned-but-not-completed processes (what `tasks.len()` was when
    /// tasks lived in a map keyed by a never-reused id).
    live_tasks: usize,
    ready: VecDeque<TaskId>,
    /// Task currently being polled; only meaningful during dispatch.
    current: TaskId,
    wakes: Arc<WakeQueue>,
    wake_scratch: Vec<TaskId>,
    seed: u64,
    events_processed: u64,
    tasks_spawned: u64,
}

impl Core {
    fn push_event(&mut self, at: SimTime, kind: EventKind) -> (u32, u32) {
        let slot = if self.free_head != NO_FREE {
            let s = self.free_head;
            let SlotState::Vacant { next_free } = self.slots[s as usize].state else {
                unreachable!("free list points at an armed slot");
            };
            self.free_head = next_free;
            self.slots[s as usize].state = SlotState::Armed(kind);
            s
        } else {
            let s = u32::try_from(self.slots.len()).expect("calendar slab overflow");
            self.slots.push(Slot {
                gen: 0,
                state: SlotState::Armed(kind),
            });
            s
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.seq;
        self.seq += 1;
        let sh = self.current_shard;
        self.shards[sh as usize]
            .heap
            .push(Event { at, seq, slot, gen });
        self.total_entries += 1;
        // The index key mirrors the shard head; a push only moves it when
        // the new entry becomes that head.
        if (at, seq) < self.index.key(sh) {
            self.index.set_key(sh, (at, seq));
        }
        (slot, gen)
    }

    /// Disarm `(slot, gen)` and return its payload (so the caller can drop
    /// it outside the core borrow). No-op `None` if the entry already fired
    /// or was already cancelled. The heap entry becomes a tombstone.
    fn cancel_entry(&mut self, slot: u32, gen: u32) -> Option<EventKind> {
        let s = self.slots.get_mut(slot as usize)?;
        if s.gen != gen || matches!(s.state, SlotState::Vacant { .. }) {
            return None;
        }
        let state = std::mem::replace(
            &mut s.state,
            SlotState::Vacant {
                next_free: self.free_head,
            },
        );
        s.gen = s.gen.wrapping_add(1);
        self.free_head = slot;
        self.tombstones += 1;
        self.maybe_compact();
        match state {
            SlotState::Armed(kind) => Some(kind),
            SlotState::Vacant { .. } => unreachable!(),
        }
    }

    /// Take the payload of a live entry that just popped off the heap.
    fn take_fired(&mut self, slot: u32) -> EventKind {
        let s = &mut self.slots[slot as usize];
        let state = std::mem::replace(
            &mut s.state,
            SlotState::Vacant {
                next_free: self.free_head,
            },
        );
        s.gen = s.gen.wrapping_add(1);
        self.free_head = slot;
        match state {
            SlotState::Armed(kind) => kind,
            SlotState::Vacant { .. } => unreachable!("fired event points at a vacant slot"),
        }
    }

    fn is_stale(&self, e: &Event) -> bool {
        self.slots[e.slot as usize].gen != e.gen
    }

    /// Advance past tombstoned shard heads and return the shard and key
    /// of the globally next *live* entry, or `None` when every shard is
    /// dry. Discarded tombstones neither advance the clock nor count as
    /// processed events.
    fn next_live(&mut self) -> Option<(u32, SimTime)> {
        loop {
            let (sh, key) = self.index.min();
            if key == NO_EVENT {
                return None;
            }
            let e = self.shards[sh as usize]
                .peek_head()
                .expect("index key without a shard head");
            if !self.is_stale(&e) {
                return Some((sh, key.0));
            }
            self.shards[sh as usize].pop_head();
            self.total_entries -= 1;
            self.tombstones -= 1;
            let k = self.shards[sh as usize].head_key();
            self.index.set_key(sh, k);
        }
    }

    /// Pop the head of `sh` — which [`Core::next_live`] just certified
    /// as the globally next live entry — and refresh the index.
    fn pop_live(&mut self, sh: u32) -> Event {
        let sc = &mut self.shards[sh as usize];
        let e = sc.pop_head().expect("pop_live on a dry shard");
        sc.fired += 1;
        let k = sc.head_key();
        self.total_entries -= 1;
        self.index.set_key(sh, k);
        e
    }

    /// Rebuild every shard heap (and filter its staged run) without
    /// tombstones once they outnumber live entries (and exceed the
    /// floor). Keeps wasted heap capacity — and pop-path skip work —
    /// proportional to the live entry count.
    fn maybe_compact(&mut self) {
        let live = self.total_entries - self.tombstones;
        if self.tombstones >= COMPACT_FLOOR && self.tombstones > live {
            let slots = &self.slots;
            let mut total = 0;
            for (sh, sc) in self.shards.iter_mut().enumerate() {
                let mut entries = std::mem::take(&mut sc.heap).into_vec();
                entries.retain(|e| slots[e.slot as usize].gen == e.gen);
                sc.heap = EventHeap::from_vec(entries);
                if sc.cursor > 0 {
                    sc.staged.drain(..sc.cursor);
                    sc.cursor = 0;
                }
                sc.staged.retain(|e| slots[e.slot as usize].gen == e.gen);
                total += sc.heap.len() + sc.staged.len();
                self.index.set_key(sh as u32, sc.head_key());
            }
            self.total_entries = total;
            self.tombstones = 0;
            self.compactions += 1;
        }
    }

    /// Allocate a task slot, returning the packed id. The generation is
    /// whatever the slot carries (0 for fresh slots, bumped per reuse).
    /// `shard` is where the task's future calendar entries will land.
    fn insert_task(&mut self, task: Task, shard: u32) -> TaskId {
        let slot = if self.task_free != NO_FREE {
            let s = self.task_free;
            let TaskState::Vacant { next_free } = self.tasks[s as usize].state else {
                unreachable!("task free list points at an occupied slot");
            };
            self.task_free = next_free;
            self.tasks[s as usize].state = TaskState::Parked(task);
            self.tasks[s as usize].shard = shard;
            s
        } else {
            let s = u32::try_from(self.tasks.len()).expect("task slab overflow");
            self.tasks.push(TaskSlot {
                gen: 0,
                shard,
                state: TaskState::Parked(task),
            });
            s
        };
        self.live_tasks += 1;
        self.tasks_spawned += 1;
        task_id(slot, self.tasks[slot as usize].gen)
    }

    /// Take the task out for polling. `None` for stale ids (the task
    /// completed — possibly long ago, with the slot since reused) and
    /// for duplicate wakes of an id already consumed this dispatch.
    fn take_task(&mut self, id: TaskId) -> Option<Task> {
        let s = self.tasks.get_mut(task_slot(id) as usize)?;
        if s.gen != task_gen(id) {
            return None;
        }
        match std::mem::replace(&mut s.state, TaskState::Polling) {
            TaskState::Parked(t) => Some(t),
            other => {
                s.state = other;
                None
            }
        }
    }

    /// Re-park a task that returned `Pending`.
    fn park_task(&mut self, id: TaskId, task: Task) {
        let s = &mut self.tasks[task_slot(id) as usize];
        debug_assert!(matches!(s.state, TaskState::Polling));
        s.state = TaskState::Parked(task);
    }

    /// Retire a completed task: vacate the slot and bump its generation
    /// so in-flight wakes for this id die at the generation check.
    fn finish_task(&mut self, id: TaskId) {
        let slot = task_slot(id);
        let s = &mut self.tasks[slot as usize];
        debug_assert!(matches!(s.state, TaskState::Polling));
        s.state = TaskState::Vacant {
            next_free: self.task_free,
        };
        s.gen = s.gen.wrapping_add(1);
        self.task_free = slot;
        self.live_tasks -= 1;
    }

    fn calendar_stats(&self) -> CalendarStats {
        CalendarStats {
            pending: self.total_entries - self.tombstones,
            tombstones: self.tombstones,
            compactions: self.compactions,
            slab_slots: self.slots.len(),
        }
    }
}

/// Summary of a completed [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// Number of calendar events processed.
    pub events_processed: u64,
    /// Total number of processes spawned over the run.
    pub tasks_spawned: u64,
    /// Processes still blocked when the calendar ran dry. Non-zero means
    /// the simulation deadlocked (a process awaits something that can no
    /// longer happen).
    pub deadlocked_tasks: usize,
}

impl RunReport {
    /// True if every spawned process ran to completion.
    pub fn is_clean(&self) -> bool {
        self.deadlocked_tasks == 0
    }
}

/// A discrete-event simulation instance.
///
/// ```
/// use simcore::{Sim, SimDuration};
///
/// let sim = Sim::new(42);
/// let ctx = sim.ctx();
/// sim.spawn(async move {
///     ctx.sleep(SimDuration::from_millis(5)).await;
///     assert_eq!(ctx.now().nanos(), 5_000_000);
/// });
/// let report = sim.run();
/// assert!(report.is_clean());
/// assert_eq!(report.end_time.nanos(), 5_000_000);
/// ```
pub struct Sim {
    core: Rc<RefCell<Core>>,
}

impl Sim {
    /// Create a simulation with the given RNG seed. The seed determines
    /// every stream returned by [`Ctx::rng`], so identical programs with
    /// identical seeds produce identical trajectories. Shorthand for
    /// [`Sim::with_config`] with the default single-shard,
    /// single-worker [`SimConfig`].
    pub fn new(seed: u64) -> Self {
        Sim::with_config(SimConfig::new(seed))
    }

    /// Create a simulation from an explicit [`SimConfig`]. Trajectories
    /// depend only on `seed` — shard count, worker count and lookahead
    /// change host time, never the schedule.
    pub fn with_config(cfg: SimConfig) -> Self {
        Sim::with_config_arena(cfg, SimArena::new())
    }

    /// A cheap, clonable handle for use inside processes.
    pub fn ctx(&self) -> Ctx {
        Ctx {
            core: Rc::downgrade(&self.core),
        }
    }

    /// Spawn a root process. Equivalent to `self.ctx().spawn(fut)`.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.ctx().spawn(fut)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Run until the calendar is empty or `deadline` is reached.
    pub fn run_until(&self, deadline: SimTime) -> RunReport {
        self.run_inner(Some(deadline))
    }

    /// Run until every event has fired and every runnable process has been
    /// polled to completion.
    pub fn run(&self) -> RunReport {
        self.run_inner(None)
    }

    /// Snapshot of event-calendar internals (live entries, tombstones,
    /// compactions). Intended for health checks: after any amount of timer
    /// churn, `tombstones` must stay within the compaction bound.
    pub fn calendar_stats(&self) -> CalendarStats {
        self.core.borrow().calendar_stats()
    }

    fn drain_wakes(&self) {
        let mut core = self.core.borrow_mut();
        let core = &mut *core;
        if !core
            .wakes
            .nonempty
            .swap(false, std::sync::atomic::Ordering::Acquire)
        {
            return;
        }
        // Swap the queue out under the lock, refill `ready` outside it, and
        // hand the (drained) buffer back so both vectors keep their
        // capacity: no allocation on the steady-state wake path.
        let mut woken = std::mem::take(&mut core.wake_scratch);
        std::mem::swap(&mut woken, &mut *core.wakes.woken.lock());
        core.ready.extend(woken.drain(..));
        core.wake_scratch = woken;
    }

    fn run_inner(&self, deadline: Option<SimTime>) -> RunReport {
        let (workers, n_shards) = {
            let core = self.core.borrow();
            (core.workers, core.shards.len())
        };
        if workers > 1 && n_shards > 1 {
            // Persistent scoped staging pool. The spawned threads only
            // ever touch the `StagePool` and the raw `ShardSlice`
            // published through it — never `self` — so the `!Send`
            // executor core stays on this thread.
            let pool = StagePool::new((workers.min(n_shards)) - 1);
            std::thread::scope(|s| {
                for _ in 0..pool.spawned {
                    s.spawn(|| pool.worker_loop());
                }
                // Shut the pool down even if the run body panics —
                // otherwise the scope join would wait forever on workers
                // parked at the window condvar.
                struct ShutdownGuard<'a>(&'a StagePool);
                impl Drop for ShutdownGuard<'_> {
                    fn drop(&mut self) {
                        self.0.shutdown();
                    }
                }
                let _guard = ShutdownGuard(&pool);
                self.run_loop(deadline, Some(&pool))
            })
        } else {
            self.run_loop(deadline, None)
        }
    }

    fn run_loop(&self, deadline: Option<SimTime>, pool: Option<&StagePool>) -> RunReport {
        loop {
            // Dispatch every runnable process at the current instant.
            loop {
                self.drain_wakes();
                let (id, mut task) = {
                    let mut core = self.core.borrow_mut();
                    let Some(id) = core.ready.pop_front() else {
                        break;
                    };
                    // A task may be woken multiple times or woken after
                    // completion; in both cases the slab take misses
                    // (duplicate wake this dispatch, or stale generation).
                    match core.take_task(id) {
                        Some(t) => {
                            core.current = id;
                            // Events the task schedules while polled land
                            // on its home shard.
                            core.current_shard = core.tasks[task_slot(id) as usize].shard;
                            (id, t)
                        }
                        None => continue,
                    }
                };
                // The waker was built once at spawn and travels with the
                // future; polling allocates nothing.
                let mut cx = Context::from_waker(&task.waker);
                match task.fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        // `task` (future + waker) drops at scope end,
                        // outside the core borrow.
                        self.core.borrow_mut().finish_task(id);
                    }
                    Poll::Pending => {
                        self.core.borrow_mut().park_task(id, task);
                    }
                }
            }

            // All processes blocked: advance the clock to the next live
            // event across all shard heads. Cancelled entries are skimmed
            // by `next_live` — they neither advance the clock nor count
            // as processed events.
            let ev = {
                let mut core = self.core.borrow_mut();
                let core = &mut *core;
                match core.next_live() {
                    None => None,
                    Some((sh, at)) => {
                        if deadline.is_some_and(|d| at > d) {
                            core.now = deadline.unwrap();
                            None
                        } else {
                            if let Some(pool) = pool {
                                // `at` is the global minimum across shard
                                // heads, so advancing past the sealed
                                // window implies every staged run at or
                                // before it has been fully consumed —
                                // restaging cannot clobber live entries.
                                if at > core.window_end {
                                    // Seal the next window. Only engage the
                                    // pool when there is enough live work to
                                    // amortize the handshake; otherwise
                                    // re-check at the next later instant.
                                    let end = at.window_end(core.lookahead);
                                    if core.total_entries - core.tombstones >= WINDOW_STAGE_MIN {
                                        core.window_end = end;
                                        let slice = ShardSlice {
                                            ptr: core.shards.as_mut_ptr(),
                                            len: core.shards.len(),
                                        };
                                        pool.run_window(slice, end);
                                    } else {
                                        core.window_end = at;
                                    }
                                }
                            }
                            let e = core.pop_live(sh);
                            core.now = e.at;
                            // Callbacks the event runs inherit its shard.
                            core.current_shard = sh;
                            core.events_processed += 1;
                            Some(core.take_fired(e.slot))
                        }
                    }
                }
            };
            match ev {
                Some(kind) => match kind {
                    EventKind::WakeTask(id) => self.core.borrow_mut().ready.push_back(id),
                    // Callbacks run with the core unborrowed so they may
                    // schedule further events or wake tasks.
                    EventKind::Call(f) => f(),
                    EventKind::CallRc(f) => f(),
                },
                None => {
                    // Calendar dry (or deadline passed); if a straggler wake
                    // arrived during the last callback, keep going.
                    self.drain_wakes();
                    if self.core.borrow().ready.is_empty() {
                        break;
                    }
                }
            }
        }
        let core = self.core.borrow();
        RunReport {
            end_time: core.now,
            events_processed: core.events_processed,
            tasks_spawned: core.tasks_spawned,
            deadlocked_tasks: core.live_tasks,
        }
    }
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new(0)
    }
}

/// Recycled executor allocations: the event calendar, slot slab, task
/// slab, ready queue and wake buffers of a finished [`Sim`], emptied but
/// with their capacities kept. Clearing the task slab drops every slot
/// outright, so slot generations restart at zero exactly as in a cold
/// [`Sim::new`].
///
/// A sweep that executes thousands of short runs back to back pays a
/// measurable allocation tax rebuilding these containers from scratch
/// every run; threading one `SimArena` through [`Sim::into_arena`] /
/// [`Sim::with_arena`] makes every run after the first start with
/// warmed capacities. Recycling is *behaviorally invisible*: all
/// counters (time, sequence numbers, task ids, RNG seed derivation)
/// restart from the same state as [`Sim::new`], so a warm run's event
/// trajectory is identical to a cold run's.
///
/// Arenas hold (cleared) task and callback storage, which is not
/// `Send`: keep each arena on the worker thread that uses it.
#[derive(Default)]
pub struct SimArena {
    shards: Vec<ShardCal>,
    slots: Vec<Slot>,
    tasks: Vec<TaskSlot>,
    ready: VecDeque<TaskId>,
    wake_scratch: Vec<TaskId>,
    woken: Vec<TaskId>,
}

impl SimArena {
    /// An empty arena (no pre-warmed capacity); equivalent to starting
    /// from [`Sim::new`] on first use.
    pub fn new() -> SimArena {
        SimArena::default()
    }
}

impl Sim {
    /// Create a simulation seeded with `seed`, reusing the container
    /// capacities of `arena`. Behaviorally identical to [`Sim::new`]:
    /// every counter restarts from zero, so trajectories do not depend
    /// on which (if any) arena a run recycled.
    pub fn with_arena(seed: u64, arena: SimArena) -> Sim {
        Sim::with_config_arena(SimConfig::new(seed), arena)
    }

    /// [`Sim::with_config`] reusing the container capacities of `arena`.
    /// The arena's shard vector is resized to `cfg.shards` (extra shards
    /// are dropped, missing ones start cold), so an arena recycled from
    /// a differently-sharded run is still valid — and still behaviorally
    /// invisible.
    pub fn with_config_arena(cfg: SimConfig, arena: SimArena) -> Sim {
        let SimArena {
            mut shards,
            slots,
            tasks,
            ready,
            wake_scratch,
            woken,
        } = arena;
        let n = cfg.shards.max(1) as usize;
        shards.truncate(n);
        shards.resize_with(n, ShardCal::default);
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                seq: 0,
                index: ShardIndex::new(n),
                shards,
                total_entries: 0,
                current_shard: 0,
                lookahead: cfg.lookahead,
                window_end: SimTime::ZERO,
                workers: cfg.workers.max(1),
                slots,
                free_head: NO_FREE,
                tombstones: 0,
                compactions: 0,
                tasks,
                task_free: NO_FREE,
                live_tasks: 0,
                ready,
                current: 0,
                wake_scratch,
                wakes: Arc::new(WakeQueue {
                    woken: Mutex::new(woken),
                    nonempty: std::sync::atomic::AtomicBool::new(false),
                }),
                seed: cfg.seed,
                events_processed: 0,
                tasks_spawned: 0,
            })),
        }
    }

    /// Per-shard calendar counters. `fired` and `pending` are
    /// worker-invariant; `staged` is not — see [`ShardStats`].
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let core = self.core.borrow();
        core.shards
            .iter()
            .enumerate()
            .map(|(i, sc)| ShardStats {
                shard: i as u32,
                fired: sc.fired,
                pending: sc.pending_len(),
                staged: sc.staged_total,
            })
            .collect()
    }

    /// Tear the simulation down and recover its allocations for reuse
    /// by [`Sim::with_arena`].
    ///
    /// Still-pending tasks and calendar entries are dropped, exactly as
    /// dropping the `Sim` would drop them: the core's strong count is
    /// already zero when their destructors run, so timer/guard `Drop`
    /// impls observe a dead simulation and no-op.
    ///
    /// Panics if anything other than this `Sim` still holds a strong
    /// reference to the executor core (nothing in this workspace does;
    /// processes and resources hold weak [`Ctx`] handles).
    pub fn into_arena(self) -> SimArena {
        let core = Rc::try_unwrap(self.core)
            .unwrap_or_else(|_| panic!("Sim::into_arena: outstanding strong core references"))
            .into_inner();
        let Core {
            mut shards,
            mut slots,
            mut tasks,
            mut ready,
            mut wake_scratch,
            wakes,
            ..
        } = core;
        // Dropping tasks first releases their wakers (and any resources
        // their futures captured); slot payloads may hold callbacks that
        // also capture resources. Both drop with the core already dead.
        tasks.clear();
        slots.clear();
        for sc in &mut shards {
            sc.reset();
        }
        ready.clear();
        wake_scratch.clear();
        let mut woken = std::mem::take(&mut *wakes.woken.lock());
        woken.clear();
        SimArena {
            shards,
            slots,
            tasks,
            ready,
            wake_scratch,
            woken,
        }
    }
}

/// Handle to the simulation, usable from inside processes.
///
/// Holds a weak reference so that processes (which capture `Ctx`) do not
/// keep the executor core alive in a reference cycle. Every method panics
/// if used after the owning [`Sim`] has been dropped.
#[derive(Clone)]
pub struct Ctx {
    core: Weak<RefCell<Core>>,
}

impl Ctx {
    fn core(&self) -> Rc<RefCell<Core>> {
        self.core
            .upgrade()
            .expect("simulation context used after Sim was dropped")
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core().borrow().now
    }

    /// Seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.core().borrow().seed
    }

    /// A deterministic RNG for a named stream. Different streams are
    /// statistically independent; the same `(seed, stream)` pair always
    /// yields the same sequence.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.seed() ^ splitmix64(stream)))
    }

    /// Spawn a process. The returned [`JoinHandle`] can be awaited for the
    /// process's output; dropping it detaches the process. The process
    /// inherits the ambient calendar shard (the shard of the spawning
    /// task or firing event, or shard 0 at the root).
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let shard = self.core().borrow().current_shard;
        self.spawn_on(shard, fut)
    }

    /// [`Ctx::spawn`] pinned to calendar shard `shard`: every event the
    /// process schedules while polled lands on that shard's calendar.
    /// Placement is a locality hint only — it never changes the
    /// schedule. Out-of-range shards fall back to shard 0 (so callers
    /// may pass topology-derived ids unconditionally).
    pub fn spawn_on<T: 'static>(
        &self,
        shard: u32,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let inner: Rc<RefCell<JoinInner<T>>> = Rc::new(RefCell::new(JoinInner {
            value: None,
            waker: None,
            finished: false,
        }));
        let inner2 = inner.clone();
        let wrapped = async move {
            let value = fut.await;
            let mut st = inner2.borrow_mut();
            st.value = Some(value);
            st.finished = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        };
        let core = self.core();
        let mut core = core.borrow_mut();
        // The waker needs the packed id, which needs the slot: insert
        // with a placeholder waker, then swap in the real one. A task is
        // only ever polled through the dispatch loop, so the placeholder
        // is never observed.
        let shard = if (shard as usize) < core.shards.len() {
            shard
        } else {
            0
        };
        let id = core.insert_task(
            Task {
                fut: Box::pin(wrapped),
                waker: Waker::noop().clone(),
            },
            shard,
        );
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            queue: core.wakes.clone(),
        }));
        match &mut core.tasks[task_slot(id) as usize].state {
            TaskState::Parked(t) => t.waker = waker,
            _ => unreachable!("freshly inserted task is parked"),
        }
        core.ready.push_back(id);
        JoinHandle { inner }
    }

    /// Sleep for `d` simulated time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        let deadline = self.now() + d;
        Sleep {
            core: self.core.clone(),
            deadline,
            entry: None,
        }
    }

    /// Sleep until the given instant (no-op if already past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            core: self.core.clone(),
            deadline,
            entry: None,
        }
    }

    /// Yield to other runnable processes at the current instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow {
            core: self.core.clone(),
            polled: false,
        }
    }

    /// Schedule `f` to run after `d` simulated time, outside any process.
    /// Primarily for event-driven resources. The returned handle cancels
    /// the callback in O(1); it may be dropped freely if cancellation is
    /// never needed.
    pub fn call_after(&self, d: SimDuration, f: impl FnOnce() + 'static) -> TimerHandle {
        let core = self.core();
        let mut core = core.borrow_mut();
        let at = core.now + d;
        let (slot, gen) = core.push_event(at, EventKind::Call(Box::new(f)));
        TimerHandle {
            core: self.core.clone(),
            slot,
            gen,
        }
    }

    /// [`Ctx::call_after`] taking a shared, reusable callback: arming
    /// costs one `Rc` clone rather than a fresh closure box. Meant for
    /// resources that re-arm the same logical timer over and over; the
    /// callback reads its parameters out of the resource's own state.
    pub fn call_after_rc(&self, d: SimDuration, f: Rc<dyn Fn()>) -> TimerHandle {
        let core = self.core();
        let mut core = core.borrow_mut();
        let at = core.now + d;
        let (slot, gen) = core.push_event(at, EventKind::CallRc(f));
        TimerHandle {
            core: self.core.clone(),
            slot,
            gen,
        }
    }

    /// Schedule `f` to run at an absolute instant (clamped to now if it
    /// is already past), outside any process. The fault-injection layer
    /// arms its windows with this; see [`Ctx::call_after`] for the
    /// relative-time form and cancellation semantics.
    pub fn call_at(&self, at: SimTime, f: impl FnOnce() + 'static) -> TimerHandle {
        self.call_after(at.since(self.now()), f)
    }

    /// Id of the task currently being polled. Only meaningful from
    /// inside a `Future::poll` running on this executor.
    pub(crate) fn current_task(&self) -> TaskId {
        self.core().borrow().current
    }

    /// Enqueue a wake for `id` through the same queue the task's waker
    /// would use, preserving wake ordering while skipping the `Waker`
    /// clone/wake/drop round trip.
    pub(crate) fn wake_task(&self, id: TaskId) {
        let core = self.core();
        let core = core.borrow();
        core.wakes.woken.lock().push(id);
        core.wakes
            .nonempty
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Snapshot of event-calendar internals. See [`Sim::calendar_stats`].
    pub fn calendar_stats(&self) -> CalendarStats {
        self.core().borrow().calendar_stats()
    }

    /// Run `f` with the ambient calendar shard set to `shard`, restoring
    /// the previous ambient shard afterwards. Events scheduled and tasks
    /// spawned inside `f` land on `shard`. Like [`Ctx::spawn_on`], this
    /// is a locality hint only: it never changes the schedule, and
    /// out-of-range shards fall back to shard 0.
    pub fn with_shard<R>(&self, shard: u32, f: impl FnOnce() -> R) -> R {
        let core = self.core();
        let prev = {
            let mut c = core.borrow_mut();
            let prev = c.current_shard;
            c.current_shard = if (shard as usize) < c.shards.len() {
                shard
            } else {
                0
            };
            prev
        };
        // `f` runs with the core unborrowed so it may schedule freely.
        let out = f();
        core.borrow_mut().current_shard = prev;
        out
    }

    /// The ambient calendar shard new events and processes inherit.
    pub fn shard(&self) -> u32 {
        self.core().borrow().current_shard
    }

    /// Number of calendar shards this simulation was configured with.
    pub fn num_shards(&self) -> u32 {
        self.core().borrow().shards.len() as u32
    }
}

/// Handle to a scheduled [`Ctx::call_after`] callback.
///
/// Cancelling drops the callback immediately and tombstones its calendar
/// entry; an already-fired or already-cancelled handle is a no-op. This is
/// what lets event-driven resources retire a provisional "next completion"
/// event instead of letting it fire as a stale no-op.
#[derive(Clone)]
pub struct TimerHandle {
    core: Weak<RefCell<Core>>,
    slot: u32,
    gen: u32,
}

impl TimerHandle {
    /// Cancel the scheduled callback. Returns `true` if the callback had
    /// not yet fired (i.e. this call actually cancelled it).
    pub fn cancel(&self) -> bool {
        let Some(core) = self.core.upgrade() else {
            return false;
        };
        let cancelled = core.borrow_mut().cancel_entry(self.slot, self.gen);
        // The callback (and anything it captured) drops here, outside the
        // core borrow, so its Drop impls may touch the simulation.
        cancelled.is_some()
    }
}

/// SplitMix64 finalizer: a cheap bijection on `u64` with full avalanche.
/// The executor uses it to derive independent RNG stream seeds; the
/// campaign layer reuses it to derive collision-free per-run seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Future returned by [`Ctx::sleep`].
///
/// Dropping an unexpired `Sleep` (e.g. the losing arm of a
/// [`crate::race`] or [`crate::timeout`]) cancels its calendar entry, so
/// abandoned timers leave at most a tombstone behind instead of a live
/// waker that fires into nothing.
pub struct Sleep {
    core: Weak<RefCell<Core>>,
    deadline: SimTime,
    /// `(slot, gen)` of the registered wake entry, if any. Stays set after
    /// the entry fires; the generation check makes the Drop cancel a no-op
    /// in that case.
    entry: Option<(u32, u32)>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let core = self
            .core
            .upgrade()
            .expect("Sleep polled after Sim was dropped");
        let mut core = core.borrow_mut();
        if core.now >= self.deadline {
            return Poll::Ready(());
        }
        if self.entry.is_none() {
            let deadline = self.deadline;
            let task = core.current;
            let entry = core.push_event(deadline, EventKind::WakeTask(task));
            drop(core);
            self.entry = Some(entry);
        }
        let _ = cx; // woken through the calendar entry, not the waker
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        let Some((slot, gen)) = self.entry.take() else {
            return;
        };
        let Some(core) = self.core.upgrade() else {
            return;
        };
        let cancelled = core.borrow_mut().cancel_entry(slot, gen);
        // Waker drops outside the core borrow.
        drop(cancelled);
    }
}

/// Future returned by [`Ctx::yield_now`].
pub struct YieldNow {
    core: Weak<RefCell<Core>>,
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            return Poll::Ready(());
        }
        self.polled = true;
        let core = self
            .core
            .upgrade()
            .expect("YieldNow polled after Sim was dropped");
        let mut core = core.borrow_mut();
        let now = core.now;
        let task = core.current;
        core.push_event(now, EventKind::WakeTask(task));
        let _ = cx;
        Poll::Pending
    }
}

struct JoinInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Awaitable handle to a spawned process.
pub struct JoinHandle<T> {
    inner: Rc<RefCell<JoinInner<T>>>,
}

impl<T> JoinHandle<T> {
    /// True once the process has completed.
    pub fn is_finished(&self) -> bool {
        self.inner.borrow().finished
    }

    /// Take the result if the process has completed (non-blocking).
    pub fn try_take(&self) -> Option<T> {
        self.inner.borrow_mut().value.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.inner.borrow_mut();
        if let Some(v) = st.value.take() {
            return Poll::Ready(v);
        }
        assert!(
            !st.finished,
            "JoinHandle polled after its value was already taken"
        );
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_finishes_at_time_zero() {
        let sim = Sim::new(0);
        let report = sim.run();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events_processed, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            ctx.sleep(SimDuration::from_micros(7)).await;
            ctx.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().nanos(), 7_000);
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        sim.spawn(async move {
            for _ in 0..10 {
                ctx.sleep(SimDuration::from_nanos(3)).await;
            }
            assert_eq!(ctx.now().nanos(), 30);
        });
        assert!(sim.run().is_clean());
    }

    #[test]
    fn concurrent_processes_interleave_by_time() {
        let sim = Sim::new(0);
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        for (i, delay) in [(1u32, 30u64), (2, 10), (3, 20)] {
            let ctx = sim.ctx();
            let order = order.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(delay)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![2, 3, 1]);
    }

    #[test]
    fn ties_broken_in_spawn_order() {
        let sim = Sim::new(0);
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let ctx = sim.ctx();
            let order = order.clone();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(10)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let ctx2 = ctx.clone();
        let h = sim.spawn(async move {
            let inner = ctx2.spawn(async move { 41 + 1 });
            inner.await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(42));
    }

    #[test]
    fn join_waits_for_sleeping_child() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let c = ctx.clone();
            let child = ctx.spawn(async move {
                c.sleep(SimDuration::from_millis(3)).await;
                c.now()
            });
            child.await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().nanos(), 3_000_000);
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        {
            let ctx = sim.ctx();
            let log = log.clone();
            sim.spawn(async move {
                log.borrow_mut().push("a1");
                ctx.yield_now().await;
                log.borrow_mut().push("a2");
            });
        }
        {
            let log = log.clone();
            sim.spawn(async move {
                log.borrow_mut().push("b1");
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let done = Rc::new(Cell::new(false));
        let done2 = done.clone();
        sim.spawn(async move {
            ctx.sleep(SimDuration::from_secs(100)).await;
            done2.set(true);
        });
        let report = sim.run_until(SimTime::from_nanos(50));
        assert_eq!(report.end_time.nanos(), 50);
        assert!(!done.get());
        assert_eq!(report.deadlocked_tasks, 1);
        // Resuming finishes the run.
        let report = sim.run();
        assert!(done.get());
        assert!(report.is_clean());
        assert_eq!(report.end_time.nanos(), 100_000_000_000);
    }

    #[test]
    fn deadlocked_task_is_reported() {
        let sim = Sim::new(0);
        sim.spawn(async move {
            std::future::pending::<()>().await;
        });
        let report = sim.run();
        assert_eq!(report.deadlocked_tasks, 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn call_after_runs_at_scheduled_time() {
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let hit = Rc::new(Cell::new(0u64));
        let hit2 = hit.clone();
        let ctx2 = ctx.clone();
        ctx.call_after(SimDuration::from_nanos(25), move || {
            hit2.set(ctx2.now().nanos());
        });
        sim.run();
        assert_eq!(hit.get(), 25);
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        use rand::RngExt;
        let sim = Sim::new(7);
        let ctx = sim.ctx();
        let a1: u64 = ctx.rng(1).random();
        let a2: u64 = ctx.rng(1).random();
        let b: u64 = ctx.rng(2).random();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        let sim2 = Sim::new(7);
        let c: u64 = sim2.ctx().rng(1).random();
        assert_eq!(a1, c);
    }

    #[test]
    fn determinism_across_identical_runs() {
        fn run_once() -> (u64, u64) {
            let sim = Sim::new(99);
            for i in 0..20u64 {
                let ctx = sim.ctx();
                sim.spawn(async move {
                    use rand::RngExt;
                    let mut rng = ctx.rng(i);
                    for _ in 0..5 {
                        let d: u64 = rng.random_range(1..1000);
                        ctx.sleep(SimDuration::from_nanos(d)).await;
                    }
                });
            }
            let r = sim.run();
            (r.end_time.nanos(), r.events_processed)
        }
        assert_eq!(run_once(), run_once());
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn clock_is_monotone_and_runs_deterministic(
                delays in proptest::collection::vec(
                    proptest::collection::vec(0u64..10_000, 1..8), 1..12),
                seed in any::<u64>(),
            ) {
                fn run(delays: &[Vec<u64>], seed: u64) -> (u64, u64) {
                    let sim = Sim::new(seed);
                    let monotone = Rc::new(RefCell::new((SimTime::ZERO, true)));
                    for ds in delays {
                        let ctx = sim.ctx();
                        let ds = ds.clone();
                        let mono = monotone.clone();
                        sim.spawn(async move {
                            for d in ds {
                                ctx.sleep(SimDuration::from_nanos(d)).await;
                                let mut m = mono.borrow_mut();
                                if ctx.now() < m.0 {
                                    m.1 = false;
                                }
                                m.0 = ctx.now();
                            }
                        });
                    }
                    let report = sim.run();
                    assert!(monotone.borrow().1, "clock went backwards");
                    (report.end_time.nanos(), report.events_processed)
                }
                let a = run(&delays, seed);
                let b = run(&delays, seed);
                prop_assert_eq!(a, b);
                // The makespan is the longest single-process chain or more.
                let longest: u64 = delays.iter().map(|d| d.iter().sum::<u64>()).max().unwrap();
                prop_assert!(a.0 >= longest);
            }
        }
    }

    #[test]
    fn arena_recycling_preserves_trajectories() {
        // A run on a recycled arena must match a cold run event for
        // event — including when the previous run left pending tasks
        // and armed timers behind (run_until stopping mid-flight).
        fn workload(sim: &Sim) -> (u64, u64, u64) {
            // Trajectory fingerprint: the sum of every observed wake
            // time, which is sensitive to each drawn sleep duration.
            let wake_sum = Rc::new(RefCell::new(0u64));
            for i in 0..50u64 {
                let ctx = sim.ctx();
                let wake_sum = wake_sum.clone();
                sim.spawn(async move {
                    use rand::RngExt;
                    let mut rng = ctx.rng(i);
                    for _ in 0..4 {
                        let d: u64 = rng.random_range(1..500);
                        ctx.sleep(SimDuration::from_nanos(d)).await;
                        *wake_sum.borrow_mut() += ctx.now().nanos();
                    }
                });
            }
            // A never-finishing background task with an armed far-future
            // timer, like the PFS interference processes.
            let ctx = sim.ctx();
            sim.spawn(async move {
                loop {
                    ctx.sleep(SimDuration::from_secs(3600)).await;
                }
            });
            let r = sim.run_until(SimTime::from_nanos(1_000_000));
            let sum = *wake_sum.borrow();
            (r.end_time.nanos(), r.events_processed, sum)
        }

        let cold_sim = Sim::new(77);
        let cold = workload(&cold_sim);
        let mut arena = cold_sim.into_arena();
        for _ in 0..3 {
            let sim = Sim::with_arena(77, arena);
            assert_eq!(workload(&sim), cold);
            arena = sim.into_arena();
        }
        // Different seed on the same arena still diverges (the arena
        // carries no seed state).
        let sim = Sim::with_arena(78, arena);
        assert_ne!(workload(&sim), cold);
    }

    #[test]
    fn many_tasks_scale() {
        let sim = Sim::new(0);
        for i in 0..10_000u64 {
            let ctx = sim.ctx();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_nanos(i % 97)).await;
            });
        }
        let report = sim.run();
        assert!(report.is_clean());
        assert_eq!(report.tasks_spawned, 10_000);
    }

    /// Executor-health check: heavy timer churn (timeouts cancelling
    /// long sleeps every iteration) must keep calendar tombstones within
    /// the compaction bound at every observation point, trigger actual
    /// compactions, and never let a cancelled timer fire and drag the
    /// clock out to its stale deadline.
    #[test]
    fn calendar_tombstones_stay_bounded_under_timer_churn() {
        use crate::combinators::timeout;

        let sim = Sim::new(0);
        for _ in 0..200 {
            let ctx = sim.ctx();
            sim.spawn(async move {
                for _ in 0..30 {
                    // The 1 s sleep always loses and is cancelled on drop,
                    // leaving a far-future tombstone in the calendar.
                    let _ = timeout(
                        &ctx,
                        SimDuration::from_nanos(10),
                        ctx.sleep(SimDuration::from_secs(1)),
                    )
                    .await;
                }
            });
        }
        // Monitor task: the bound must hold mid-run, not just at the end.
        let worst = Rc::new(Cell::new((0usize, 0usize)));
        {
            let ctx = sim.ctx();
            let worst = worst.clone();
            sim.spawn(async move {
                loop {
                    ctx.sleep(SimDuration::from_nanos(7)).await;
                    let st = ctx.calendar_stats();
                    assert!(
                        st.tombstones <= COMPACT_FLOOR.max(st.pending),
                        "tombstones {} exceed bound (pending {})",
                        st.tombstones,
                        st.pending
                    );
                    let (t, _) = worst.get();
                    if st.tombstones > t {
                        worst.set((st.tombstones, st.pending));
                    }
                    if st.pending <= 1 {
                        break; // only this monitor's sleep remains
                    }
                }
            });
        }
        let report = sim.run();
        assert!(report.is_clean());
        let st = sim.calendar_stats();
        assert!(
            st.compactions > 0,
            "6000 cancelled timers should have forced at least one compaction"
        );
        assert_eq!(st.pending, 0);
        assert!(st.tombstones <= COMPACT_FLOOR);
        // 6000 timeouts of 10 ns each; the cancelled 1 s sleeps must not
        // have advanced the clock anywhere near their stale deadlines.
        assert!(
            report.end_time < SimTime::from_nanos(1_000_000),
            "stale timers advanced the clock: ended at {:?}",
            report.end_time
        );
        assert!(worst.get().0 > 0, "monitor never saw churn");
    }

    /// Order-sensitive fingerprint of a cross-shard workload: every wake
    /// folds `(now, task, step)` into a running hash in execution order,
    /// so any reordering — not just a timing change — alters the result.
    fn cross_shard_fingerprint(cfg: SimConfig, n_tasks: u64) -> (u64, u64, u64) {
        let sim = Sim::with_config(cfg);
        let hash = Rc::new(Cell::new(0xfeed_beefu64));
        let shards = sim.ctx().num_shards().max(1) as u64;
        for i in 0..n_tasks {
            let ctx = sim.ctx();
            let hash = hash.clone();
            let shard = (i % shards) as u32;
            ctx.clone().spawn_on(shard, async move {
                use rand::RngExt;
                let mut rng = ctx.rng(i);
                for step in 0..6u64 {
                    let d: u64 = rng.random_range(1..700);
                    ctx.sleep(SimDuration::from_nanos(d)).await;
                    let mixed = splitmix64(ctx.now().nanos() ^ (i << 24) ^ step);
                    hash.set(hash.get().rotate_left(7) ^ mixed);
                }
            });
        }
        let report = sim.run();
        (report.end_time.nanos(), report.events_processed, hash.get())
    }

    /// Shard placement is a locality hint, never an ordering input: the
    /// same workload must replay bit-identically for any shard count.
    #[test]
    fn shard_count_is_trajectory_neutral() {
        let serial = cross_shard_fingerprint(SimConfig::new(42), 64);
        for shards in [2u32, 4, 7, 33] {
            let cfg = SimConfig::new(42)
                .with_shards(shards)
                .with_lookahead(SimDuration::from_nanos(50));
            assert_eq!(
                cross_shard_fingerprint(cfg, 64),
                serial,
                "shards={shards} diverged from the serial calendar"
            );
        }
    }

    /// The staging pool (workers > 1) must be behavior-invisible: the
    /// full execution-order fingerprint is identical for any pool size.
    #[test]
    fn worker_count_is_trajectory_neutral() {
        let base = cross_shard_fingerprint(
            SimConfig::new(7)
                .with_shards(8)
                .with_lookahead(SimDuration::from_nanos(200)),
            96,
        );
        for workers in [2usize, 3, 4] {
            let cfg = SimConfig::new(7)
                .with_shards(8)
                .with_workers(workers)
                .with_lookahead(SimDuration::from_nanos(200));
            assert_eq!(
                cross_shard_fingerprint(cfg, 96),
                base,
                "workers={workers} diverged from the single-worker run"
            );
        }
    }

    /// Ambient-shard bookkeeping: tasks observe the shard they were
    /// spawned on, `with_shard` overrides it lexically, and out-of-range
    /// requests clamp to shard 0 instead of corrupting the calendar.
    #[test]
    fn ambient_shard_follows_spawn_and_with_shard() {
        let sim = Sim::with_config(SimConfig::new(1).with_shards(3));
        let seen = Rc::new(Cell::new((u32::MAX, u32::MAX, u32::MAX)));
        {
            let ctx = sim.ctx();
            let seen = seen.clone();
            ctx.clone().spawn_on(2, async move {
                let at_spawn = ctx.shard();
                ctx.sleep(SimDuration::from_nanos(5)).await;
                let after_sleep = ctx.shard();
                let inside = ctx.with_shard(1, || ctx.shard());
                seen.set((at_spawn, after_sleep, inside));
            });
        }
        // Out-of-range spawn shard clamps to 0.
        let clamped = Rc::new(Cell::new(u32::MAX));
        {
            let ctx = sim.ctx();
            let clamped = clamped.clone();
            ctx.clone().spawn_on(99, async move {
                clamped.set(ctx.shard());
            });
        }
        let report = sim.run();
        assert!(report.is_clean());
        assert_eq!(seen.get(), (2, 2, 1));
        assert_eq!(clamped.get(), 0);
    }

    /// Per-shard accounting: fired counts must sum to the report total
    /// and land on the shards the events were routed to.
    #[test]
    fn shard_stats_account_for_all_events() {
        let cfg = SimConfig::new(3).with_shards(4);
        let sim = Sim::with_config(cfg);
        for i in 0..40u64 {
            let ctx = sim.ctx();
            ctx.clone().spawn_on((i % 4) as u32, async move {
                ctx.sleep(SimDuration::from_nanos(1 + i)).await;
            });
        }
        let report = sim.run();
        let stats = sim.shard_stats();
        assert_eq!(stats.len(), 4);
        let fired: u64 = stats.iter().map(|s| s.fired).sum();
        assert_eq!(fired, report.events_processed);
        for s in &stats {
            assert!(s.fired > 0, "shard {} never fired", s.shard);
            assert_eq!(s.pending, 0);
        }
    }

    #[cfg(test)]
    mod shard_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            // Window-boundary merges preserve the `(time, seq)` total
            // order under arbitrary cross-shard interleavings: any
            // (shard count, worker count, lookahead) triple replays the
            // serial calendar's fingerprint exactly.
            #[test]
            fn merge_preserves_total_order(
                seed in any::<u64>(),
                n_tasks in 1u64..48,
                shards in 1u32..9,
                workers in 1usize..4,
                lookahead in 0u64..2_000,
            ) {
                let serial = cross_shard_fingerprint(SimConfig::new(seed), n_tasks);
                let cfg = SimConfig::new(seed)
                    .with_shards(shards)
                    .with_workers(workers)
                    .with_lookahead(SimDuration::from_nanos(lookahead));
                prop_assert_eq!(cross_shard_fingerprint(cfg, n_tasks), serial);
            }
        }
    }
}
